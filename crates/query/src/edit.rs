//! The edit model: document mutations, their WAL payload codec, and the
//! receipts/reports the engine returns for them.
//!
//! An [`Edit`] addresses nodes by *dotted child-index paths* (`"1.2.1"` =
//! root → second child → first child), not by PBN numbers: paths stay
//! short and human-writable even after minted fractional numbers appear,
//! and they make edit scripts replayable against any structurally equal
//! document. [`Edit::encode`]/[`Edit::decode`] give each edit a compact
//! binary payload carried inside one CRC-framed record of the
//! [`vh_storage::EditWal`]; the engine appends and syncs the frame before
//! acknowledging the edit, so the synced log prefix always reproduces the
//! acknowledged document state ([`crate::engine::Engine::recover`]).
//!
//! Every `match` over [`Edit`] in this crate is exhaustive by policy — no
//! `_ =>` arms — so adding a variant fails compilation at each encode,
//! replay and trace-emission site instead of silently corrupting logs.
//! The `vh-vet` `edit-exhaustive` lint pins this.

use vh_dataguide::EditError;
use vh_obs::QueryTrace;
use vh_storage::RecoveryReport;

// ------------------------------------------------------------- model ---

/// One mutation of a registered document.
///
/// Positions are 0-based; `pos == len` appends. For [`Edit::MoveSubtree`]
/// the position is counted *after* the subtree is detached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Parse `xml` as a single-rooted fragment and insert it as the
    /// `pos`-th child of the node at `parent`.
    InsertSubtree {
        /// URI of the registered document.
        uri: String,
        /// Dotted child-index path of the parent element.
        parent: String,
        /// 0-based insert position among the parent's children.
        pos: usize,
        /// The fragment to insert (one root element).
        xml: String,
    },
    /// Detach and drop the subtree rooted at `target`.
    DeleteSubtree {
        /// URI of the registered document.
        uri: String,
        /// Dotted child-index path of the subtree root (not `"1"`).
        target: String,
    },
    /// Re-home the subtree at `target` as the `pos`-th child of `parent`.
    MoveSubtree {
        /// URI of the registered document.
        uri: String,
        /// Dotted child-index path of the subtree root (not `"1"`).
        target: String,
        /// Dotted child-index path of the destination element.
        parent: String,
        /// 0-based position among the destination's children, counted
        /// after the subtree is detached.
        pos: usize,
    },
    /// Replace the textual content of the node at `target`.
    SetValue {
        /// URI of the registered document.
        uri: String,
        /// Dotted child-index path of a text node or simple element.
        target: String,
        /// The new textual content.
        value: String,
    },
}

impl Edit {
    /// The document this edit targets.
    pub fn uri(&self) -> &str {
        match self {
            Edit::InsertSubtree { uri, .. } => uri,
            Edit::DeleteSubtree { uri, .. } => uri,
            Edit::MoveSubtree { uri, .. } => uri,
            Edit::SetValue { uri, .. } => uri,
        }
    }

    /// Stable lowercase label of the edit kind — the `kind` metadata of
    /// the `apply` span and the `kind` field of [`EditReceipt`].
    pub fn kind(&self) -> &'static str {
        match self {
            Edit::InsertSubtree { .. } => "insert-subtree",
            Edit::DeleteSubtree { .. } => "delete-subtree",
            Edit::MoveSubtree { .. } => "move-subtree",
            Edit::SetValue { .. } => "set-value",
        }
    }
}

// ------------------------------------------------------------- codec ---

/// Payload tag of [`Edit::InsertSubtree`].
const TAG_INSERT: u8 = 1;
/// Payload tag of [`Edit::DeleteSubtree`].
const TAG_DELETE: u8 = 2;
/// Payload tag of [`Edit::MoveSubtree`].
const TAG_MOVE: u8 = 3;
/// Payload tag of [`Edit::SetValue`].
const TAG_SET: u8 = 4;

/// A WAL payload that does not decode back into an [`Edit`].
///
/// The frame around the payload carried a valid CRC, so this is not bit
/// rot but a format mismatch (a frame written by a different version, or
/// a bug). Recovery quarantines the record rather than guessing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditCodecError {
    /// What was malformed.
    pub detail: String,
}

impl std::fmt::Display for EditCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[EDIT_PAYLOAD] undecodable edit payload: {}",
            self.detail
        )
    }
}

impl std::error::Error for EditCodecError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_pos(out: &mut Vec<u8>, pos: usize) {
    out.extend_from_slice(&(pos as u64).to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], EditCodecError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| EditCodecError {
            detail: format!("truncated at byte {} (wanted {n} more)", self.at),
        })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn get_str(&mut self) -> Result<String, EditCodecError> {
        let len = self.take(4)?;
        let len = u32::from_le_bytes([len[0], len[1], len[2], len[3]]) as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| EditCodecError {
            detail: "string field is not UTF-8".into(),
        })
    }

    fn get_pos(&mut self) -> Result<usize, EditCodecError> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        usize::try_from(u64::from_le_bytes(b)).map_err(|_| EditCodecError {
            detail: "position overflows this platform".into(),
        })
    }

    fn finish(self) -> Result<(), EditCodecError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(EditCodecError {
                detail: format!("{} trailing bytes", self.bytes.len() - self.at),
            })
        }
    }
}

impl Edit {
    /// Serializes the edit into its WAL record payload: a tag byte, then
    /// length-prefixed UTF-8 strings and `u64` little-endian positions in
    /// field order.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Edit::InsertSubtree {
                uri,
                parent,
                pos,
                xml,
            } => {
                out.push(TAG_INSERT);
                put_str(&mut out, uri);
                put_str(&mut out, parent);
                put_pos(&mut out, *pos);
                put_str(&mut out, xml);
            }
            Edit::DeleteSubtree { uri, target } => {
                out.push(TAG_DELETE);
                put_str(&mut out, uri);
                put_str(&mut out, target);
            }
            Edit::MoveSubtree {
                uri,
                target,
                parent,
                pos,
            } => {
                out.push(TAG_MOVE);
                put_str(&mut out, uri);
                put_str(&mut out, target);
                put_str(&mut out, parent);
                put_pos(&mut out, *pos);
            }
            Edit::SetValue { uri, target, value } => {
                out.push(TAG_SET);
                put_str(&mut out, uri);
                put_str(&mut out, target);
                put_str(&mut out, value);
            }
        }
        out
    }

    /// Decodes a WAL record payload produced by [`Edit::encode`].
    /// Fully untrusting: truncation, bad UTF-8, unknown tags and trailing
    /// bytes are errors, never panics.
    pub fn decode(payload: &[u8]) -> Result<Edit, EditCodecError> {
        let (&tag, rest) = payload.split_first().ok_or_else(|| EditCodecError {
            detail: "empty payload".into(),
        })?;
        let mut r = Reader { bytes: rest, at: 0 };
        let edit = match tag {
            TAG_INSERT => Edit::InsertSubtree {
                uri: r.get_str()?,
                parent: r.get_str()?,
                pos: r.get_pos()?,
                xml: r.get_str()?,
            },
            TAG_DELETE => Edit::DeleteSubtree {
                uri: r.get_str()?,
                target: r.get_str()?,
            },
            TAG_MOVE => Edit::MoveSubtree {
                uri: r.get_str()?,
                target: r.get_str()?,
                parent: r.get_str()?,
                pos: r.get_pos()?,
            },
            TAG_SET => Edit::SetValue {
                uri: r.get_str()?,
                target: r.get_str()?,
                value: r.get_str()?,
            },
            other => {
                return Err(EditCodecError {
                    detail: format!("unknown edit tag {other:#04x}"),
                })
            }
        };
        r.finish()?;
        Ok(edit)
    }
}

// ---------------------------------------------------------- receipts ---

/// What [`crate::engine::Engine::apply`] returns for one acknowledged
/// edit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EditReceipt {
    /// The edit's sequence number in the write-ahead log. The edit is
    /// durable: its frame was appended and synced before this receipt was
    /// produced.
    pub seq: u64,
    /// URI of the edited document.
    pub uri: String,
    /// The [`Edit::kind`] label.
    pub kind: &'static str,
    /// Nodes inserted, removed, moved or rewritten by this edit.
    pub nodes_touched: u64,
    /// Delta-segment entries merged into the byte arena on account of
    /// this edit (0 when the edit batch is still accumulating).
    pub compacted: usize,
}

/// One WAL record that could not be re-applied during recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayFailure {
    /// Sequence number of the failing record.
    pub seq: u64,
    /// Why it failed (codec mismatch or edit-level rejection).
    pub reason: String,
}

/// What [`crate::engine::Engine::recover`] returns: the frame-level
/// outcome of reading the log plus the edit-level outcome of re-applying
/// it. Replay stops at the first failing record — everything after it
/// stays un-applied rather than diverging from the logged order — so
/// `failed` holds at most one entry.
#[derive(Clone, Debug, Default)]
pub struct EditRecovery {
    /// Torn-tail/corruption outcome of reading the log bytes.
    pub wal: RecoveryReport,
    /// Records re-applied by this recovery.
    pub replayed: u64,
    /// Records skipped because their sequence number was already applied
    /// (idempotent replay).
    pub skipped: u64,
    /// The first record that failed to decode or re-apply, if any.
    pub failed: Vec<ReplayFailure>,
    /// Delta-segment entries merged by the end-of-recovery compaction.
    pub compacted: usize,
    /// The `recover` span tree when tracing was requested.
    pub trace: Option<QueryTrace>,
}

impl EditRecovery {
    /// Whether the log was read intact *and* every record re-applied.
    pub fn is_clean(&self) -> bool {
        self.wal.is_clean() && self.failed.is_empty()
    }

    /// A JSON rendering for CI artifacts and `vpbn recover --dump`.
    pub fn to_json(&self) -> String {
        let failed: Vec<String> = self
            .failed
            .iter()
            .map(|f| {
                format!(
                    "{{\"seq\":{},\"reason\":{}}}",
                    f.seq,
                    json_string(&f.reason)
                )
            })
            .collect();
        format!(
            "{{\"wal\":{},\"replayed\":{},\"skipped\":{},\"compacted\":{},\"failed\":[{}]}}",
            self.wal.to_json(),
            self.replayed,
            self.skipped,
            self.compacted,
            failed.join(",")
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lifts a document-level edit rejection into the query error taxonomy —
/// kept here so `vh_dataguide` stays independent of this crate.
impl From<EditError> for crate::error::QueryError {
    fn from(e: EditError) -> Self {
        crate::error::QueryError::Edit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Edit> {
        vec![
            Edit::InsertSubtree {
                uri: "book.xml".into(),
                parent: "1.2".into(),
                pos: 0,
                xml: "<note>hi</note>".into(),
            },
            Edit::DeleteSubtree {
                uri: "book.xml".into(),
                target: "1.1".into(),
            },
            Edit::MoveSubtree {
                uri: "book.xml".into(),
                target: "1.1".into(),
                parent: "1.2".into(),
                pos: 1,
            },
            Edit::SetValue {
                uri: "book.xml".into(),
                target: "1.2.1".into(),
                value: "Tuples & Trees".into(),
            },
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for e in samples() {
            let bytes = e.encode();
            assert_eq!(Edit::decode(&bytes).unwrap(), e, "{}", e.kind());
        }
    }

    #[test]
    fn kind_and_uri_are_stable() {
        let kinds: Vec<&str> = samples().iter().map(Edit::kind).collect();
        assert_eq!(
            kinds,
            [
                "insert-subtree",
                "delete-subtree",
                "move-subtree",
                "set-value"
            ]
        );
        assert!(samples().iter().all(|e| e.uri() == "book.xml"));
    }

    #[test]
    fn truncated_payloads_error_out() {
        for e in samples() {
            let bytes = e.encode();
            for cut in 0..bytes.len() {
                // Every proper prefix must fail cleanly, never panic.
                assert!(
                    Edit::decode(&bytes[..cut]).is_err(),
                    "{} cut at {cut} decoded",
                    e.kind()
                );
            }
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(Edit::decode(&[]).is_err());
        assert!(Edit::decode(&[0xEE]).is_err());
        let mut bytes = samples()[1].encode();
        bytes.push(0x00);
        let err = Edit::decode(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn non_utf8_strings_are_rejected() {
        let mut bytes = vec![super::TAG_DELETE];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Edit::decode(&bytes).is_err());
    }

    #[test]
    fn recovery_report_renders_json() {
        let rec = EditRecovery {
            replayed: 3,
            skipped: 1,
            failed: vec![ReplayFailure {
                seq: 5,
                reason: "bad \"path\"".into(),
            }],
            ..EditRecovery::default()
        };
        let json = rec.to_json();
        assert!(json.contains("\"replayed\":3"), "{json}");
        assert!(json.contains("\\\"path\\\""), "{json}");
        assert!(!rec.is_clean());
    }
}
