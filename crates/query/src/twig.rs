//! Holistic twig joins (the TwigStack family) over PBN and vPBN streams.
//!
//! Structural joins (see [`crate::sjoin`]) answer one ancestor–descendant
//! edge at a time; *twig* patterns such as
//! `book(title, author(name))` are matched holistically by the TwigStack
//! algorithm: one synchronized pass over the per-pattern-node streams with
//! chained stacks, producing root-to-leaf path solutions that are then
//! merge-joined into full twig matches.
//!
//! The point of carrying this into the reproduction: TwigStack is driven
//! *only* by document order and containment tests on the numbers. Under
//! vPBN both are virtual-space comparisons (`v_cmp`, `vAncestor`), so the
//! identical algorithm evaluates twig patterns **against a virtual
//! hierarchy** without materializing it — the composition claim of §5 at
//! the level of a real query operator.
//!
//! All pattern edges are descendant edges (`//`), the class for which
//! TwigStack is optimal; child edges can be post-filtered by the caller.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vh_core::axes::v_ancestor;
use vh_core::exec::{self, ExecOptions};
use vh_core::order::v_cmp;
use vh_core::VirtualDocument;
use vh_dataguide::TypedDocument;
use vh_obs::TwigCounters;
use vh_pbn::keys;
use vh_xml::NodeId;

// ------------------------------------------------------------ patterns ---

/// A twig pattern: a small tree of name tests joined by descendant edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwigPattern {
    nodes: Vec<TwigNode>,
}

/// One pattern node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwigNode {
    /// Element name this pattern node matches.
    pub test: String,
    /// Parent pattern node (None for the root).
    pub parent: Option<usize>,
    /// Child pattern nodes.
    pub children: Vec<usize>,
}

impl TwigPattern {
    /// Parses the compact syntax `name(child, child(grandchild), …)`;
    /// every edge is a descendant edge.
    ///
    /// ```
    /// use vh_query::twig::TwigPattern;
    /// let p = TwigPattern::parse("book(title, author(name))")?;
    /// assert_eq!(p.len(), 4);
    /// assert_eq!(p.leaves(), vec![1, 3]);
    /// # Ok::<(), vh_query::twig::TwigError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Self, TwigError> {
        let mut p = TwigParser {
            s: input.as_bytes(),
            input,
            pos: 0,
            depth: 0,
            nodes: Vec::new(),
        };
        p.skip_ws();
        let root = p.node(None)?;
        debug_assert_eq!(root, 0);
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(TwigError(format!(
                "trailing input at byte {} of '{input}'",
                p.pos
            )));
        }
        Ok(TwigPattern { nodes: p.nodes })
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the (impossible after parsing) empty pattern.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The pattern nodes; index 0 is the root.
    pub fn nodes(&self) -> &[TwigNode] {
        &self.nodes
    }

    /// Pattern-node indices of the leaves, ascending.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// The root-to-`q` chain of pattern nodes (inclusive).
    pub fn path_to(&self, q: usize) -> Vec<usize> {
        let mut path = vec![q];
        let mut cur = q;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// Twig parsing / evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigError(pub String);

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "twig error: {}", self.0)
    }
}

impl std::error::Error for TwigError {}

struct TwigParser<'a> {
    s: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
    nodes: Vec<TwigNode>,
}

impl<'a> TwigParser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.s.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Recurses once per `(`-nesting level, so depth is capped to keep
    /// pathological patterns off the stack limit.
    fn node(&mut self, parent: Option<usize>) -> Result<usize, TwigError> {
        self.depth += 1;
        if self.depth > crate::xpath::parse::MAX_PARSE_DEPTH {
            return Err(TwigError(format!(
                "pattern nesting exceeds the depth limit of {}",
                crate::xpath::parse::MAX_PARSE_DEPTH
            )));
        }
        let out = self.node_inner(parent);
        self.depth -= 1;
        out
    }

    fn node_inner(&mut self, parent: Option<usize>) -> Result<usize, TwigError> {
        let start = self.pos;
        while self
            .s
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'#'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(TwigError(format!(
                "expected a name at byte {} of '{}'",
                self.pos, self.input
            )));
        }
        let idx = self.nodes.len();
        self.nodes.push(TwigNode {
            test: self.input[start..self.pos].to_owned(),
            parent,
            children: Vec::new(),
        });
        self.skip_ws();
        if self.s.get(self.pos) == Some(&b'(') {
            self.pos += 1;
            loop {
                self.skip_ws();
                let child = self.node(Some(idx))?;
                self.nodes[idx].children.push(child);
                self.skip_ws();
                match self.s.get(self.pos) {
                    Some(b',') => self.pos += 1,
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => {
                        return Err(TwigError(format!(
                            "expected ',' or ')' at byte {} of '{}'",
                            self.pos, self.input
                        )))
                    }
                }
            }
        }
        Ok(idx)
    }
}

// ------------------------------------------------------------- sources ---

/// What TwigStack needs from a document: per-name streams in document
/// order, the order itself, and containment.
pub trait TwigSource {
    /// All elements matching `test`, in document order.
    fn stream(&self, test: &str) -> Vec<NodeId>;
    /// Document-order comparison.
    fn cmp(&self, a: NodeId, b: NodeId) -> Ordering;
    /// True iff `a` is a (proper) ancestor of `b`.
    fn contains(&self, a: NodeId, b: NodeId) -> bool;
    /// First position `i ≥ from` in `stream` (one of this source's
    /// document-ordered streams) where the TwigStack skip loop must stop:
    /// `stream[i]` is at-or-after `target` in document order, or contains
    /// it. Entries before that position start *and end* before `target`,
    /// so no match can involve them and the cursor jumps straight past.
    ///
    /// The default walks linearly; sources whose document order is a byte
    /// comparison on sorted keys override this with binary searches.
    /// Overrides must return exactly the index the default would.
    fn seek(&self, stream: &[NodeId], from: usize, target: NodeId) -> usize {
        let mut i = from;
        while i < stream.len() {
            let h = stream[i];
            if self.cmp(h, target) != Ordering::Less || self.contains(h, target) {
                break;
            }
            i += 1;
        }
        i
    }
}

/// Physical source: plain PBN order and prefix containment.
pub struct PhysicalTwigSource<'a> {
    td: &'a TypedDocument,
    by_name: HashMap<String, Vec<NodeId>>,
    /// Seek-shape counters (gallop steps, probe stops) for traced runs;
    /// `None` keeps the seek hot path untouched.
    obs: Option<Arc<TwigCounters>>,
}

impl<'a> PhysicalTwigSource<'a> {
    /// Builds per-name streams once (the name index of §4.3).
    pub fn new(td: &'a TypedDocument) -> Self {
        Self::with_options(td, &ExecOptions::default())
    }

    /// [`Self::new`] with an execution knob: the document-order pass is
    /// partitioned into contiguous chunks, each building its own per-name
    /// lists, which are then appended **in chunk order** — so every stream
    /// comes out in exactly the document order of the sequential build.
    pub fn with_options(td: &'a TypedDocument, opts: &ExecOptions) -> Self {
        let in_order = td.pbn().in_document_order();
        let partials = exec::par_chunk_map(opts, in_order, |chunk| {
            let mut by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
            for (_, id) in chunk {
                if let Some(name) = td.doc().name(*id) {
                    by_name.entry(name.to_owned()).or_default().push(*id);
                }
            }
            by_name
        });
        let mut by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        for partial in partials {
            // Chunk order = document order, so appending preserves it.
            for (name, mut ids) in partial {
                by_name.entry(name).or_default().append(&mut ids);
            }
        }
        PhysicalTwigSource {
            td,
            by_name,
            obs: None,
        }
    }

    /// Attaches seek-shape counters: subsequent [`TwigSource::seek`]
    /// calls record whether they stopped in the linear probe window and
    /// how many gallop doublings they took.
    pub fn set_obs(&mut self, obs: Arc<TwigCounters>) {
        self.obs = Some(obs);
    }
}

impl<'a> TwigSource for PhysicalTwigSource<'a> {
    fn stream(&self, test: &str) -> Vec<NodeId> {
        self.by_name.get(test).cloned().unwrap_or_default()
    }

    fn cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        // Arena slots are assigned in document order, so doc-order
        // comparison is one u32 compare per side (unassigned ids sort
        // first, matching their empty keys).
        let arena = self.td.pbn().arena();
        arena.slot_of(a).cmp(&arena.slot_of(b))
    }

    fn contains(&self, a: NodeId, b: NodeId) -> bool {
        keys::is_strict_prefix(self.td.pbn().key_of(a), self.td.pbn().key_of(b))
    }

    /// Binary-searched skip with a linear warm-up. Most calls stop within
    /// the first few entries (cursors only move forward), so those stay
    /// O(1); longer jumps gallop exponentially and pay one binary search
    /// logarithmic in the distance actually skipped, never in the stream
    /// length. Physical streams are sorted by encoded key — equivalently
    /// by arena slot — so the first entry at-or-after `target` is one
    /// `partition_point` over slots; the only entries *before* the target
    /// that stop the skip are its proper ancestors, whose keys are exactly
    /// the proper component-prefixes of `target`'s key — each present at
    /// most once (keys are unique), hence one exact binary search per
    /// prefix length, shortest (earliest slot) first.
    fn seek(&self, stream: &[NodeId], from: usize, target: NodeId) -> usize {
        const PROBES: usize = 4;
        let pbn = self.td.pbn();
        let arena = pbn.arena();
        let tkey = pbn.key_of(target);
        let tslot = arena.slot_of(target);
        let tail = &stream[from..];
        let stops =
            |n: NodeId| arena.slot_of(n) >= tslot || keys::is_strict_prefix(pbn.key_of(n), tkey);
        for (i, &n) in tail.iter().take(PROBES).enumerate() {
            if stops(n) {
                if let Some(o) = &self.obs {
                    o.add_probe_stop();
                }
                return from + i;
            }
        }
        if tail.len() <= PROBES {
            return from + tail.len();
        }
        // Gallop past the run of keys before `target`, then binary-search
        // the bracket for the partition point (first slot ≥ target's).
        let mut hi = PROBES;
        let mut jump = PROBES;
        let mut gallops = 0u64;
        while hi < tail.len() && arena.slot_of(tail[hi]) < tslot {
            hi += jump;
            jump *= 2;
            gallops += 1;
        }
        if let Some(o) = &self.obs {
            o.add_gallop_steps(gallops);
        }
        let hi = hi.min(tail.len());
        // Branch-free bisection of the gallop bracket: random probe slots
        // make the comparison a coin flip, so the multiply-by-bool form
        // beats the predicted-branch loop (oracle-tested in vh-core).
        let mut best = PROBES
            + exec::partition_point_branchless(&tail[PROBES..hi], |&n| arena.slot_of(n) < tslot);
        // Ancestors of `target` all sit before the partition point; the
        // shortest prefix present is the earliest stop.
        let mut end = keys::component_boundary(tkey, 1);
        while end < tkey.len() {
            let prefix = &tkey[..end];
            if let Ok(i) = tail[..best].binary_search_by(|&n| pbn.key_of(n).cmp(prefix)) {
                best = i;
                break;
            }
            end += keys::component_len(&tkey[end..]);
        }
        from + best
    }
}

/// Virtual source: virtual document order and `vAncestor` containment.
///
/// Construction materializes a **virtual-order rank column**: all visible
/// nodes sorted once by `v_cmp`, their positions stored in a flat
/// `u32` column indexed by node id. Every document-order comparison
/// during the join — including the per-stream sorts, one per pattern
/// node — is then a single integer compare instead of a component walk
/// over number and level arrays.
pub struct VirtualTwigSource<'a> {
    vd: &'a VirtualDocument<'a>,
    rank: Vec<u32>,
}

/// Rank sentinel for nodes outside the virtual hierarchy (never produced
/// by `stream`, which enumerates visible nodes only).
const NO_RANK: u32 = u32::MAX;

impl<'a> VirtualTwigSource<'a> {
    /// Wraps a virtual document, building the rank column with one global
    /// `v_cmp` sort (amortized over every stream and comparison of the
    /// join; uses the view's own [`ExecOptions`]).
    pub fn new(vd: &'a VirtualDocument<'a>) -> Self {
        let vdg = vd.vdg();
        let vpbn = |n: NodeId| match vd.vpbn_of(n) {
            Some(v) => v,
            None => unreachable!("type-index nodes are visible"),
        };
        let mut visible: Vec<NodeId> = vdg
            .guide()
            .type_ids()
            .flat_map(|vt| vd.nodes_of_vtype(vt).iter().copied())
            .collect();
        exec::par_sort_by(&vd.exec(), &mut visible, |&a, &b| {
            v_cmp(vdg, &vpbn(a), &vpbn(b))
        });
        let mut rank = vec![NO_RANK; vd.typed().doc().len()];
        for (r, id) in visible.iter().enumerate() {
            rank[id.index()] = r as u32;
        }
        VirtualTwigSource { vd, rank }
    }
}

impl<'a> VirtualTwigSource<'a> {
    /// Invariant: `cmp`/`contains` are only called on nodes produced by
    /// `stream`, which enumerates nodes of virtual types — all of which
    /// are visible and therefore have a vPBN.
    fn vpbn(&self, n: NodeId) -> vh_core::vpbn::VPbnRef<'_> {
        match self.vd.vpbn_of(n) {
            Some(v) => v,
            None => unreachable!("twig streams contain only visible nodes"),
        }
    }
}

impl<'a> TwigSource for VirtualTwigSource<'a> {
    fn stream(&self, test: &str) -> Vec<NodeId> {
        let vdg = self.vd.vdg();
        let mut out: Vec<NodeId> = vdg
            .guide()
            .type_ids()
            .filter(|&vt| vdg.guide().name(vt) == test)
            .flat_map(|vt| self.vd.nodes_of_vtype(vt).iter().copied())
            .collect();
        // Rank order *is* virtual document order, so this is an integer
        // sort (and safe to parallelize: ranks never tie).
        exec::par_sort_by(&self.vd.exec(), &mut out, |&a, &b| self.cmp(a, b));
        out
    }

    fn cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        self.rank[a.index()].cmp(&self.rank[b.index()])
    }

    fn contains(&self, a: NodeId, b: NodeId) -> bool {
        v_ancestor(self.vd.vdg(), &self.vpbn(a), &self.vpbn(b))
    }
}

// ------------------------------------------------------------ algorithm ---

/// A full twig match: `assignment[q]` is the document node bound to
/// pattern node `q`.
pub type TwigMatch = Vec<NodeId>;

/// Evaluates a twig pattern holistically. Returns all matches, each an
/// assignment of one document node per pattern node, in no particular
/// order.
pub fn twig_join(source: &dyn TwigSource, pattern: &TwigPattern) -> Vec<TwigMatch> {
    let paths = twig_path_solutions(source, pattern);
    merge_path_solutions(pattern, &paths)
}

/// [`twig_join`] with an execution knob: the per-pattern-node streams are
/// built concurrently (one task per pattern node — stream extraction is
/// the scan-heavy phase), then the synchronized TwigStack pass runs
/// sequentially, so the result is identical to [`twig_join`].
pub fn twig_join_opts(
    source: &(dyn TwigSource + Sync),
    pattern: &TwigPattern,
    opts: &ExecOptions,
) -> Vec<TwigMatch> {
    let streams = build_streams(source, pattern, opts);
    let paths = TwigStack::with_streams(source, pattern, streams).run();
    merge_path_solutions(pattern, &paths)
}

/// [`twig_join_opts`] with operator counters: records issued seeks and
/// cursor advances during the TwigStack pass, plus path-solution and
/// match totals. Identical results to the uncounted variants. To also
/// capture seek shape (probe stops, gallop steps), attach the same
/// counters to the source via [`PhysicalTwigSource::set_obs`].
pub fn twig_join_counted(
    source: &(dyn TwigSource + Sync),
    pattern: &TwigPattern,
    opts: &ExecOptions,
    counters: &TwigCounters,
) -> Vec<TwigMatch> {
    let streams = build_streams(source, pattern, opts);
    let mut stack = TwigStack::with_streams(source, pattern, streams);
    stack.counters = Some(counters);
    let paths = stack.run();
    counters.add_path_solutions(paths.iter().map(|p| p.len() as u64).sum());
    let matches = merge_path_solutions(pattern, &paths);
    counters.add_matches(matches.len() as u64);
    matches
}

/// Phase 1 of TwigStack: computes the root-to-leaf *path solutions* for
/// every leaf of the pattern. `result[leaf_position]` holds node chains in
/// pattern `path_to(leaf)` order.
pub fn twig_path_solutions(
    source: &dyn TwigSource,
    pattern: &TwigPattern,
) -> Vec<Vec<Vec<NodeId>>> {
    TwigStack::new(source, pattern).run()
}

/// Extracts one stream per pattern node, concurrently when `opts` allows.
/// The output vector is indexed by pattern node, so task completion order
/// cannot affect the result.
fn build_streams(
    source: &(dyn TwigSource + Sync),
    pattern: &TwigPattern,
    opts: &ExecOptions,
) -> Vec<Vec<NodeId>> {
    if opts.resolved_threads() <= 1 || pattern.len() <= 1 {
        return pattern
            .nodes()
            .iter()
            .map(|n| source.stream(&n.test))
            .collect();
    }
    let mut slots: Vec<Option<Vec<NodeId>>> = Vec::with_capacity(pattern.len());
    slots.resize_with(pattern.len(), || None);
    rayon::scope(|s| {
        for (slot, node) in slots.iter_mut().zip(pattern.nodes()) {
            s.spawn(move || *slot = Some(source.stream(&node.test)));
        }
    });
    slots
        .into_iter()
        .map(|s| match s {
            Some(s) => s,
            // Invariant: rayon::scope joins every spawned worker, and each
            // worker fills exactly its own slot.
            None => unreachable!("scope joined all stream builders"),
        })
        .collect()
}

struct TwigStack<'s> {
    source: &'s dyn TwigSource,
    pattern: &'s TwigPattern,
    /// Per pattern node: its stream and cursor.
    streams: Vec<Vec<NodeId>>,
    cursor: Vec<usize>,
    /// Per pattern node: stack of (doc node, parent-stack height at push).
    stacks: Vec<Vec<(NodeId, usize)>>,
    /// Leaf index in pattern → position in output.
    leaf_pos: HashMap<usize, usize>,
    out: Vec<Vec<Vec<NodeId>>>,
    /// Operator counters for traced runs (`None` on the plain paths).
    counters: Option<&'s TwigCounters>,
}

impl<'s> TwigStack<'s> {
    fn new(source: &'s dyn TwigSource, pattern: &'s TwigPattern) -> Self {
        let streams: Vec<Vec<NodeId>> = pattern
            .nodes()
            .iter()
            .map(|n| source.stream(&n.test))
            .collect();
        Self::with_streams(source, pattern, streams)
    }

    /// Builds the evaluator over pre-extracted streams (one per pattern
    /// node, in pattern-node order, each in document order).
    fn with_streams(
        source: &'s dyn TwigSource,
        pattern: &'s TwigPattern,
        streams: Vec<Vec<NodeId>>,
    ) -> Self {
        debug_assert_eq!(streams.len(), pattern.len());
        let leaves = pattern.leaves();
        let leaf_pos: HashMap<usize, usize> =
            leaves.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        TwigStack {
            source,
            pattern,
            cursor: vec![0; streams.len()],
            stacks: vec![Vec::new(); streams.len()],
            streams,
            out: vec![Vec::new(); leaves.len()],
            leaf_pos,
            counters: None,
        }
    }

    fn head(&self, q: usize) -> Option<NodeId> {
        self.streams[q].get(self.cursor[q]).copied()
    }

    fn advance(&mut self, q: usize) {
        self.cursor[q] += 1;
    }

    fn exhausted(&self, q: usize) -> bool {
        self.cursor[q] >= self.streams[q].len()
    }

    /// The getNext(q) of TwigStack, returning the pattern node to advance
    /// next — guaranteed to have a stream head — or `None` when the
    /// subtree rooted at `q` is *inert*: no cursor below can make further
    /// progress, so its path solutions are final. Exhausted branches are
    /// skipped rather than halting the pass, because other branches can
    /// still emit path solutions that merge with the finished branch's.
    fn get_next(&mut self, q: usize) -> Option<usize> {
        let children = self.pattern.nodes()[q].children.clone();
        if children.is_empty() {
            return if self.exhausted(q) { None } else { Some(q) };
        }
        let mut max_child_head: Option<NodeId> = None;
        let mut min_child: Option<(usize, NodeId)> = None;
        for &c in &children {
            match self.get_next(c) {
                None => continue, // inert branch
                Some(r) if r != c => return Some(r),
                Some(_) => {
                    // Invariant: get_next(c) == Some(c) means c's stream
                    // is not exhausted, so it has a head.
                    let h = match self.head(c) {
                        Some(h) => h,
                        None => unreachable!("live child has a head"),
                    };
                    if max_child_head.is_none_or(|m| self.source.cmp(h, m) == Ordering::Greater) {
                        max_child_head = Some(h);
                    }
                    if min_child.is_none_or(|(_, m)| self.source.cmp(h, m) == Ordering::Less) {
                        min_child = Some((c, h));
                    }
                }
            }
        }
        // Every child branch is inert: nothing below can progress.
        let q_max = max_child_head?;
        // Skip q candidates that end before the farthest child head: they
        // cannot contain all (remaining) children. `seek` jumps the cursor
        // to the stop position in one call (binary-searched on sources
        // with byte-comparable keys).
        let src = self.source;
        if let Some(c) = self.counters {
            c.add_seek();
        }
        self.cursor[q] = src.seek(&self.streams[q], self.cursor[q], q_max);
        // Invariant: q_max is only Some when at least one child was live,
        // and every live child also updated min_child.
        let (min_c, q_min) = match min_child {
            Some(mc) => mc,
            None => unreachable!("q_max implies a live child"),
        };
        match self.head(q) {
            Some(hq) if self.source.cmp(hq, q_min) == Ordering::Less => Some(q),
            // q exhausted or behind: drain the child (its pushes still see
            // whatever ancestor entries remain stacked).
            _ => Some(min_c),
        }
    }

    /// Pops stack entries that end before `next` starts.
    fn clean_stack(&mut self, q: usize, next: NodeId) {
        while let Some(&(top, _)) = self.stacks[q].last() {
            if self.source.contains(top, next) {
                break;
            }
            self.stacks[q].pop();
        }
    }

    fn run(mut self) -> Vec<Vec<Vec<NodeId>>> {
        let root = 0;
        let mut advanced = 0u64;
        while let Some(q) = self.get_next(root) {
            advanced += 1;
            // Invariant: get_next only returns pattern nodes whose streams
            // still have a head (exhausted branches yield None).
            let hq = match self.head(q) {
                Some(h) => h,
                None => unreachable!("get_next returns nodes with heads"),
            };
            if let Some(p) = self.pattern.nodes()[q].parent {
                self.clean_stack(p, hq);
            }
            let parent_ok = self.pattern.nodes()[q]
                .parent
                .is_none_or(|p| !self.stacks[p].is_empty());
            if parent_ok {
                self.clean_stack(q, hq);
                let parent_height = self.pattern.nodes()[q]
                    .parent
                    .map_or(0, |p| self.stacks[p].len());
                self.stacks[q].push((hq, parent_height));
                if self.pattern.nodes()[q].children.is_empty() {
                    self.emit_paths(q);
                    self.stacks[q].pop();
                }
            }
            self.advance(q);
        }
        if let Some(c) = self.counters {
            c.add_advances(advanced);
        }
        self.out
    }

    /// Emits every root-to-leaf solution encoded by the current stacks for
    /// leaf `q` (its own top entry combined with all compatible ancestor
    /// stack prefixes).
    fn emit_paths(&mut self, leaf: usize) {
        let chain = self.pattern.path_to(leaf);
        let mut paths: Vec<Vec<NodeId>> = Vec::new();
        // Walk from the leaf upward: each entry limits how much of the
        // parent stack is visible (the height recorded at push time).
        // Invariant: `run` pushes onto stacks[leaf] immediately before
        // calling emit_paths, so the stack is never empty here.
        let (leaf_node, mut visible) = match self.stacks[leaf].last() {
            Some(&top) => top,
            None => unreachable!("leaf just pushed"),
        };
        paths.push(vec![leaf_node]);
        for &q in chain.iter().rev().skip(1) {
            let stack = &self.stacks[q];
            let mut extended = Vec::new();
            for path in &paths {
                for (i, &(node, ph)) in stack.iter().enumerate().take(visible) {
                    let _ = i;
                    let mut p = path.clone();
                    p.push(node);
                    extended.push((p, ph));
                }
            }
            // All entries share the same next visibility bound per path;
            // take the maximum parent height among used entries (entries
            // deeper in the stack recorded smaller heights, which only
            // matters for the path that used them — track per path).
            let mut next_paths = Vec::with_capacity(extended.len());
            let mut next_visible = 0;
            for (p, ph) in extended {
                next_visible = next_visible.max(ph);
                next_paths.push(p);
            }
            // Per-path visibility is approximated by the maximum; verify
            // ancestry explicitly to stay exact.
            paths = next_paths;
            visible = next_visible.max(1);
        }
        let pos = self.leaf_pos[&leaf];
        for mut p in paths {
            p.reverse(); // root-first, matching path_to order
                         // Exactness guard: each consecutive pair must nest.
            let ok = p.windows(2).all(|w| self.source.contains(w[0], w[1]));
            if ok {
                self.out[pos].push(p);
            }
        }
    }
}

/// Phase 2: merge per-leaf path solutions into full twig matches by
/// hash-joining on the shared pattern prefixes.
pub fn merge_path_solutions(pattern: &TwigPattern, paths: &[Vec<Vec<NodeId>>]) -> Vec<TwigMatch> {
    let leaves = pattern.leaves();
    debug_assert_eq!(leaves.len(), paths.len());
    // Start with the first leaf's paths as partial assignments.
    let mut partial: Vec<HashMap<usize, NodeId>> = Vec::new();
    if let Some((&first_leaf, rest)) = leaves.split_first() {
        let chain = pattern.path_to(first_leaf);
        for p in &paths[0] {
            partial.push(chain.iter().copied().zip(p.iter().copied()).collect());
        }
        for (li, &leaf) in rest.iter().enumerate() {
            let chain = pattern.path_to(leaf);
            let mut next = Vec::new();
            for assign in &partial {
                for p in &paths[li + 1] {
                    let candidate: HashMap<usize, NodeId> =
                        chain.iter().copied().zip(p.iter().copied()).collect();
                    // Shared pattern nodes must agree.
                    let compatible = candidate
                        .iter()
                        .all(|(q, n)| assign.get(q).is_none_or(|m| m == n));
                    if compatible {
                        let mut merged = assign.clone();
                        merged.extend(candidate);
                        next.push(merged);
                    }
                }
            }
            partial = next;
        }
    }
    partial
        .into_iter()
        .map(|assign| {
            (0..pattern.len())
                // Invariant: merging path solutions over a connected
                // pattern assigns every node before we reach here.
                .map(|q| match assign.get(&q) {
                    Some(&n) => n,
                    None => unreachable!("assignment covers all pattern nodes"),
                })
                .collect()
        })
        .collect()
}

/// Reference implementation for testing: naive recursive enumeration of
/// all twig matches using only `contains`.
pub fn twig_join_naive(source: &dyn TwigSource, pattern: &TwigPattern) -> Vec<TwigMatch> {
    /// All assignments for the pattern subtree rooted at `q` given
    /// `q → node`, as sparse vectors over the whole pattern.
    fn solve(
        source: &dyn TwigSource,
        pattern: &TwigPattern,
        q: usize,
        node: NodeId,
    ) -> Vec<Vec<Option<NodeId>>> {
        let mut base = vec![None; pattern.len()];
        base[q] = Some(node);
        let mut partials = vec![base];
        for &c in &pattern.nodes()[q].children {
            let mut next = Vec::new();
            for cand in source.stream(&pattern.nodes()[c].test) {
                if !source.contains(node, cand) {
                    continue;
                }
                for sub in solve(source, pattern, c, cand) {
                    for p in &partials {
                        let merged: Vec<Option<NodeId>> =
                            p.iter().zip(&sub).map(|(a, b)| a.or(*b)).collect();
                        next.push(merged);
                    }
                }
            }
            partials = next;
        }
        partials
    }

    let mut out = Vec::new();
    for root_cand in source.stream(&pattern.nodes()[0].test) {
        for assign in solve(source, pattern, 0, root_cand) {
            out.push(
                assign
                    .into_iter()
                    // Invariant: solve(0, root) fills one slot per pattern
                    // node — a sparse vector only stays sparse mid-merge.
                    .map(|o| match o {
                        Some(n) => n,
                        None => unreachable!("subtree solutions cover all pattern nodes"),
                    })
                    .collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_xml::builder::paper_figure2;

    fn sorted(mut m: Vec<TwigMatch>) -> Vec<TwigMatch> {
        m.sort();
        m.dedup();
        m
    }

    #[test]
    fn pattern_parsing() {
        let p = TwigPattern::parse("book(title, author(name))").must();
        assert_eq!(p.len(), 4);
        assert_eq!(p.nodes()[0].test, "book");
        assert_eq!(p.nodes()[0].children, vec![1, 2]);
        assert_eq!(p.nodes()[2].children, vec![3]);
        assert_eq!(p.leaves(), vec![1, 3]);
        assert_eq!(p.path_to(3), vec![0, 2, 3]);
        assert!(TwigPattern::parse("a(b").is_err());
        assert!(TwigPattern::parse("a)b").is_err());
        assert!(TwigPattern::parse("(a)").is_err());
    }

    #[test]
    fn physical_twig_on_figure2() {
        let td = TypedDocument::analyze(paper_figure2());
        let src = PhysicalTwigSource::new(&td);
        let p = TwigPattern::parse("book(title, author(name))").must();
        let matches = twig_join(&src, &p);
        // One match per book: (book, its title, its author, its name).
        assert_eq!(matches.len(), 2);
        for m in &matches {
            assert!(src.contains(m[0], m[1]));
            assert!(src.contains(m[0], m[2]));
            assert!(src.contains(m[2], m[3]));
        }
    }

    #[test]
    fn physical_twig_matches_naive() {
        let td = TypedDocument::analyze(vh_workload_books(25, 3));
        let src = PhysicalTwigSource::new(&td);
        for pat in [
            "book(title)",
            "book(author(name))",
            "book(title, author)",
            "book(title, author(name), publisher(location))",
            "data(book(author))",
        ] {
            let p = TwigPattern::parse(pat).must();
            let fast = sorted(twig_join(&src, &p));
            let slow = sorted(twig_join_naive(&src, &p));
            assert_eq!(fast, slow, "pattern {pat}");
        }
    }

    #[test]
    fn virtual_twig_matches_naive() {
        let td = TypedDocument::analyze(vh_workload_books(15, 3));
        for spec in [
            "title { author { name } }",
            "location { title author { name } }",
        ] {
            let vd = VirtualDocument::open(&td, spec).must();
            let src = VirtualTwigSource::new(&vd);
            for pat in ["title(author)", "title(author(name))"] {
                let p = TwigPattern::parse(pat).must();
                if src.stream(&p.nodes()[0].test).is_empty() {
                    continue;
                }
                let fast = sorted(twig_join(&src, &p));
                let slow = sorted(twig_join_naive(&src, &p));
                assert_eq!(fast, slow, "spec {spec} pattern {pat}");
            }
        }
    }

    #[test]
    fn virtual_twig_crosses_the_transformation() {
        // In Sam's view, title//name holds although physically title and
        // name are in disjoint subtrees.
        let td = TypedDocument::analyze(paper_figure2());
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let src = VirtualTwigSource::new(&vd);
        let p = TwigPattern::parse("title(name)").must();
        let matches = twig_join(&src, &p);
        assert_eq!(matches.len(), 2);
        // Physically those same pairs do NOT nest.
        let phys = PhysicalTwigSource::new(&td);
        for m in &matches {
            assert!(!phys.contains(m[0], m[1]));
        }
    }

    #[test]
    fn counted_twig_join_matches_and_counts() {
        let td = TypedDocument::analyze(vh_workload_books(25, 3));
        let src = PhysicalTwigSource::new(&td);
        let opts = ExecOptions::default();
        for pat in ["book(title)", "book(title, author(name))"] {
            let p = TwigPattern::parse(pat).must();
            let plain = twig_join_opts(&src, &p, &opts);
            let counters = TwigCounters::default();
            let counted = twig_join_counted(&src, &p, &opts, &counters);
            assert_eq!(
                sorted(plain),
                sorted(counted.clone()),
                "counting must not change the matches of {pat}"
            );
            let s = counters.snapshot();
            assert!(s.seeks > 0, "{pat} issued seeks");
            assert!(s.advances > 0, "{pat} advanced its streams");
            assert!(s.path_solutions > 0, "{pat} produced path solutions");
            assert_eq!(s.matches, counted.len() as u64, "{pat}");
        }
    }

    #[test]
    fn parallel_twig_join_matches_sequential() {
        let td = TypedDocument::analyze(vh_workload_books(30, 3));
        let phys = PhysicalTwigSource::new(&td);
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let virt = VirtualTwigSource::new(&vd);
        for pat in [
            "book(title, author(name))",
            "data(book(author))",
            "title(author(name))",
        ] {
            let p = TwigPattern::parse(pat).must();
            for threads in [2, 4] {
                let opts = ExecOptions {
                    threads,
                    cache: true,
                    par_threshold: 1,
                };
                // Parallel stream build in the source AND in the join.
                let phys_par = PhysicalTwigSource::with_options(&td, &opts);
                assert_eq!(
                    twig_join_opts(&phys_par, &p, &opts),
                    twig_join(&phys, &p),
                    "physical {pat} t={threads}"
                );
                assert_eq!(
                    twig_join_opts(&virt, &p, &opts),
                    twig_join(&virt, &p),
                    "virtual {pat} t={threads}"
                );
            }
        }
    }

    #[test]
    fn rank_column_orders_exactly_like_v_cmp() {
        let td = TypedDocument::analyze(vh_workload_books(20, 3));
        let vd = VirtualDocument::open(&td, "title { author { name } }").must();
        let src = VirtualTwigSource::new(&vd);
        let nodes: Vec<NodeId> = ["title", "author", "name"]
            .iter()
            .flat_map(|n| src.stream(n))
            .collect();
        for &a in &nodes {
            for &b in &nodes {
                let by_rank = src.cmp(a, b);
                let by_vcmp = v_cmp(vd.vdg(), &src.vpbn(a), &src.vpbn(b));
                assert_eq!(by_rank, by_vcmp, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn physical_seek_matches_the_linear_default() {
        // The binary-searched override must return exactly the index the
        // documented linear walk would, for every (stream, target, from).
        let td = TypedDocument::analyze(vh_workload_books(25, 3));
        let src = PhysicalTwigSource::new(&td);
        let names = ["data", "book", "title", "author", "name", "publisher"];
        let targets: Vec<NodeId> = names.iter().flat_map(|n| src.stream(n)).collect();
        for name in names {
            let stream = src.stream(name);
            for &t in &targets {
                for from in [0, stream.len() / 3, stream.len() / 2, stream.len()] {
                    let fast = src.seek(&stream, from, t);
                    let mut slow = from;
                    while slow < stream.len() {
                        let h = stream[slow];
                        if src.cmp(h, t) != Ordering::Less || src.contains(h, t) {
                            break;
                        }
                        slow += 1;
                    }
                    assert_eq!(fast, slow, "{name} from {from}");
                }
            }
        }
    }

    #[test]
    fn empty_streams_yield_no_matches() {
        let td = TypedDocument::analyze(paper_figure2());
        let src = PhysicalTwigSource::new(&td);
        let p = TwigPattern::parse("book(nosuch)").must();
        assert!(twig_join(&src, &p).is_empty());
        let p = TwigPattern::parse("nosuch").must();
        assert!(twig_join(&src, &p).is_empty());
    }

    #[test]
    fn single_node_pattern_is_a_scan() {
        let td = TypedDocument::analyze(paper_figure2());
        let src = PhysicalTwigSource::new(&td);
        let p = TwigPattern::parse("author").must();
        assert_eq!(twig_join(&src, &p).len(), 2);
    }

    fn vh_workload_books(n: usize, authors: usize) -> vh_xml::Document {
        // Local mini-generator to avoid a dev-dependency cycle with
        // vh-workload: same shape as the books corpus.
        use vh_xml::ElementBuilder;
        let mut data = ElementBuilder::new("data");
        for i in 0..n {
            let mut book = ElementBuilder::new("book")
                .child(ElementBuilder::new("title").text(format!("T{i}")));
            for a in 0..(i % authors) + 1 {
                book = book.child(
                    ElementBuilder::new("author")
                        .child(ElementBuilder::new("name").text(format!("N{i}x{a}"))),
                );
            }
            book = book.child(
                ElementBuilder::new("publisher").child(ElementBuilder::new("location").text("L")),
            );
            data = data.child(book);
        }
        data.into_document("books.xml")
    }
}
