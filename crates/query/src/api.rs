//! The blessed public surface of the query engine, in one flat module.
//!
//! Downstream code (the CLI, `examples/`, integration tests) should
//! import from here instead of picking symbols out of the individual
//! submodules: this module is the compatibility contract, and it
//! resolves the historical naming asymmetries in one place —
//! [`PhysicalDoc::with_document`] / [`PhysicalDoc::with_store`] are the
//! symmetric constructor pair, [`Engine::run`] with a [`QueryRequest`]
//! (built from a typed [`QueryKind`], directly or via
//! [`QueryRequest::builder`]) is the one evaluation entry point, and
//! [`query_document`] is the single-document convenience. The pre-v1
//! `eval*` wrappers compile only under the off-by-default `legacy-api`
//! cargo feature.
//!
//! ```
//! use vh_query::api::{Engine, QueryRequest};
//!
//! let mut engine = Engine::new();
//! engine.register_xml("a.xml", "<a><b/></a>").unwrap();
//! let out = engine
//!     .run(&QueryRequest::flwr(r#"for $b in doc("a.xml")//b return <hit/>"#))
//!     .unwrap();
//! assert_eq!(out.stats.result_nodes, 1);
//! ```

pub use crate::doc::{PhysicalDoc, QueryDoc, VirtualDoc};
pub use crate::edit::{Edit, EditReceipt, EditRecovery, ReplayFailure};
pub use crate::engine::{
    query_document, Engine, EngineSnapshot, Explain, QueryKind, QueryOutcome, QueryRequest,
    QueryRequestBuilder,
};
pub use crate::error::{Limits, QueryError, ResourceKind};
pub use crate::flwr::ast::FlwrQuery;
pub use crate::flwr::parse::parse_flwr;
pub use crate::sjoin::{virtual_structural_join, virtual_structural_join_counted};
pub use crate::twig::{twig_join, twig_join_counted, TwigPattern};
pub use crate::xpath::{eval_xpath, parse_xpath, XPath};
pub use vh_core::{ExecOptions, VirtualDocument};
pub use vh_obs::{CacheOutcome, QueryCounters, QueryStats, QueryTrace, ViewProvenance};
pub use vh_storage::{BufferStats, StorageStats};
