//! Parser for the FLWR subset.
//!
//! Clause structure is recognized at the character level (keywords at
//! bracket/quote depth zero); path expressions and predicates inside
//! clauses are delegated to the XPath parser.

use crate::error::ResourceKind;
use crate::flwr::ast::{Clause, Construct, FlwrQuery, OrderKey, Origin, Source};
use crate::flwr::eval::FlwrError;
use crate::xpath::ast::XPath;
use crate::xpath::parse::{parse_expr, parse_xpath, MAX_PARSE_DEPTH};

/// Parses a FLWR query.
pub fn parse_flwr(input: &str) -> Result<FlwrQuery, FlwrError> {
    let mut p = P {
        s: input,
        pos: 0,
        depth: 0,
    };
    let mut clauses = Vec::new();
    loop {
        p.skip_ws();
        if p.eat_keyword("for") {
            let var = p.var()?;
            p.skip_ws();
            if !p.eat_keyword("in") {
                return Err(p.err("expected 'in' after the for-variable"));
            }
            let src = p.source()?;
            clauses.push(Clause::For(var, src));
        } else if p.eat_keyword("let") {
            let var = p.var()?;
            p.skip_ws();
            if !p.eat(":=") {
                return Err(p.err("expected ':=' after the let-variable"));
            }
            let src = p.source()?;
            clauses.push(Clause::Let(var, src));
        } else if p.eat_keyword("where") {
            let text = p.take_until_keyword();
            let e = parse_expr(text.trim()).map_err(FlwrError::from)?;
            clauses.push(Clause::Where(e));
        } else if p.eat_keyword("order") {
            p.skip_ws();
            if !p.eat_keyword("by") {
                return Err(p.err("expected 'by' after 'order'"));
            }
            let text = p.take_until_keyword().trim().to_owned();
            clauses.push(Clause::OrderBy(parse_order_keys(&text)?));
        } else if p.eat_keyword("return") {
            if clauses.is_empty() {
                return Err(p.err("a query needs at least one for/let clause"));
            }
            let ret = p.constructs()?;
            p.skip_ws();
            if p.pos != p.s.len() {
                return Err(p.err("unexpected input after the return clause"));
            }
            return Ok(FlwrQuery { clauses, ret });
        } else {
            return Err(p.err("expected 'for', 'let', 'where' or 'return'"));
        }
    }
}

struct P<'a> {
    s: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: &str) -> FlwrError {
        FlwrError::Parse(format!("{msg} (at byte {})", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.s[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.s[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    /// Eats a keyword followed by a non-name character.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        let rest = &self.s[self.pos..];
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn var(&mut self) -> Result<String, FlwrError> {
        self.skip_ws();
        if !self.eat("$") {
            return Err(self.err("expected '$variable'"));
        }
        let start = self.pos;
        while self.s[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("empty variable name"));
        }
        Ok(self.s[start..self.pos].to_owned())
    }

    /// Consumes text up to the next top-level clause keyword
    /// (`for`/`let`/`where`/`return`), respecting quotes and brackets.
    fn take_until_keyword(&mut self) -> &'a str {
        let bytes = self.s.as_bytes();
        let start = self.pos;
        let mut depth = 0i32;
        let mut i = self.pos;
        let mut quote: Option<u8> = None;
        while i < bytes.len() {
            let c = bytes[i];
            if let Some(q) = quote {
                if c == q {
                    quote = None;
                }
                i += 1;
                continue;
            }
            match c {
                b'"' | b'\'' => {
                    quote = Some(c);
                    i += 1;
                }
                b'(' | b'[' | b'{' => {
                    depth += 1;
                    i += 1;
                }
                b')' | b']' | b'}' => {
                    depth -= 1;
                    i += 1;
                }
                _ if depth == 0 => {
                    // Keyword at a word boundary?
                    let prev_ok =
                        i == start || bytes[i - 1].is_ascii_whitespace() || bytes[i - 1] == b')';
                    if prev_ok {
                        for kw in ["for", "let", "where", "order", "return"] {
                            if self.s[i..].starts_with(kw) {
                                let after = self.s[i + kw.len()..].chars().next();
                                if after.is_none_or(|ch| !ch.is_alphanumeric() && ch != '_')
                                    && i > start
                                {
                                    self.pos = i;
                                    return self.s[start..i].trim_end();
                                }
                            }
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.pos = bytes.len();
        self.s[start..].trim_end()
    }

    fn source(&mut self) -> Result<Source, FlwrError> {
        self.skip_ws();
        let text = self.take_until_keyword().trim();
        parse_source_text(text).map_err(|m| FlwrError::Parse(format!("{m} in source '{text}'")))
    }

    /// Parses the return clause: one or more constructors / embeds.
    fn constructs(&mut self) -> Result<Vec<Construct>, FlwrError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.s[self.pos..].chars().next() {
                Some('<') => out.push(self.element()?),
                Some('{') => out.push(self.embed()?),
                _ => break,
            }
        }
        if out.is_empty() {
            return Err(self.err("expected a constructor after 'return'"));
        }
        Ok(out)
    }

    fn element(&mut self) -> Result<Construct, FlwrError> {
        // element() recurses once per nested constructor level.
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(FlwrError::ResourceExhausted {
                resource: ResourceKind::Depth,
                limit: MAX_PARSE_DEPTH as u64,
            });
        }
        let out = self.element_inner();
        self.depth -= 1;
        out
    }

    fn element_inner(&mut self) -> Result<Construct, FlwrError> {
        let opened = self.eat("<");
        debug_assert!(opened, "element() is entered at a '<'");
        let name = self.tag_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            if self.eat("/>") {
                return Ok(Construct::Element {
                    name,
                    attributes,
                    content: Vec::new(),
                });
            }
            if self.eat(">") {
                break;
            }
            // attribute="literal"
            let aname = self.tag_name()?;
            self.skip_ws();
            if !self.eat("=") {
                return Err(self.err("expected '=' in constructed attribute"));
            }
            self.skip_ws();
            let quote = if self.eat("\"") {
                '"'
            } else if self.eat("'") {
                '\''
            } else {
                return Err(self.err("expected quoted attribute value"));
            };
            let start = self.pos;
            while self.pos < self.s.len() && !self.s[self.pos..].starts_with(quote) {
                self.pos += 1;
            }
            let value = self.s[start..self.pos].to_owned();
            self.pos += 1; // closing quote
            attributes.push((aname, value));
        }
        // Content.
        let mut content = Vec::new();
        loop {
            if self.s[self.pos..].starts_with("</") {
                self.pos += 2;
                let end = self.tag_name()?;
                if end != name {
                    return Err(self.err(&format!(
                        "mismatched constructor end tag </{end}> (expected </{name}>)"
                    )));
                }
                self.skip_ws();
                if !self.eat(">") {
                    return Err(self.err("expected '>' in end tag"));
                }
                return Ok(Construct::Element {
                    name,
                    attributes,
                    content,
                });
            }
            match self.s[self.pos..].chars().next() {
                Some('<') => content.push(self.element()?),
                Some('{') => content.push(self.embed()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.s[self.pos..].chars().next() {
                        if c == '<' || c == '{' {
                            break;
                        }
                        self.pos += c.len_utf8();
                    }
                    let text = &self.s[start..self.pos];
                    // Whitespace-only runs inside constructors are layout.
                    if !text.trim().is_empty() {
                        out_text(&mut content, text);
                    }
                }
                None => return Err(self.err("unterminated element constructor")),
            }
        }
    }

    fn embed(&mut self) -> Result<Construct, FlwrError> {
        let opened = self.eat("{");
        debug_assert!(opened, "embed() is entered at a brace");
        // Find the matching close brace, respecting nesting and quotes.
        let bytes = self.s.as_bytes();
        let start = self.pos;
        let mut depth = 1;
        let mut quote: Option<u8> = None;
        let mut i = self.pos;
        while i < bytes.len() {
            let c = bytes[i];
            if let Some(q) = quote {
                if c == q {
                    quote = None;
                }
            } else {
                match c {
                    b'"' | b'\'' => quote = Some(c),
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            let inner = &self.s[start..i];
                            self.pos = i + 1;
                            let e = parse_expr(inner.trim()).map_err(FlwrError::from)?;
                            return Ok(Construct::Embed(e));
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        Err(self.err("unterminated '{' in constructor"))
    }

    fn tag_name(&mut self) -> Result<String, FlwrError> {
        let start = self.pos;
        while self.s[self.pos..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.s[start..self.pos].to_owned())
    }
}

fn out_text(content: &mut Vec<Construct>, text: &str) {
    content.push(Construct::Text(text.to_owned()));
}

/// Parses the comma-separated keys of an `order by` clause; each key may
/// end with `ascending` (default) or `descending`.
fn parse_order_keys(text: &str) -> Result<Vec<OrderKey>, FlwrError> {
    let mut keys = Vec::new();
    for part in split_top_level_commas(text) {
        let part = part.trim();
        if part.is_empty() {
            return Err(FlwrError::Parse("empty order-by key".into()));
        }
        let (expr_text, descending) = if let Some(stripped) = part.strip_suffix("descending") {
            (stripped.trim_end(), true)
        } else if let Some(stripped) = part.strip_suffix("ascending") {
            (stripped.trim_end(), false)
        } else {
            (part, false)
        };
        let expr = parse_expr(expr_text).map_err(FlwrError::from)?;
        keys.push(OrderKey { expr, descending });
    }
    if keys.is_empty() {
        return Err(FlwrError::Parse("order by needs at least one key".into()));
    }
    Ok(keys)
}

/// Splits on commas outside parentheses/brackets/quotes.
fn split_top_level_commas(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    let mut start = 0;
    for (i, &c) in bytes.iter().enumerate() {
        if let Some(q) = quote {
            if c == q {
                quote = None;
            }
            continue;
        }
        match c {
            b'"' | b'\'' => quote = Some(c),
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Parses a source: `doc("u")path?`, `virtualDoc("u","spec")path?`, or
/// `$var path?`.
fn parse_source_text(text: &str) -> Result<Source, String> {
    if let Some(rest) = text.strip_prefix("doc(") {
        let (uri, rest) = string_arg(rest)?;
        let rest = rest
            .trim_start()
            .strip_prefix(')')
            .ok_or("expected ')' after doc(...)")?;
        return Ok(Source {
            origin: Origin::Doc(uri),
            path: parse_trailing_path(rest)?,
        });
    }
    if let Some(rest) = text.strip_prefix("virtualDoc(") {
        let (uri, rest) = string_arg(rest)?;
        let rest = rest
            .trim_start()
            .strip_prefix(',')
            .ok_or("expected ',' between virtualDoc arguments")?;
        let (spec, rest) = string_arg(rest)?;
        let rest = rest
            .trim_start()
            .strip_prefix(')')
            .ok_or("expected ')' after virtualDoc(...)")?;
        return Ok(Source {
            origin: Origin::VirtualDoc(uri, spec),
            path: parse_trailing_path(rest)?,
        });
    }
    if text.starts_with('$') {
        // Whole thing is a var-rooted path. parse_xpath yields a root var
        // for every input starting with '$', so the else branch can only
        // mean the path failed to bind one — report it, don't assume.
        let path = parse_xpath(text).map_err(|e| e.to_string())?;
        let Some(var) = path.root_var.clone() else {
            return Err("a '$var' source must be a variable-rooted path".to_owned());
        };
        return Ok(Source {
            origin: Origin::Var(var),
            path,
        });
    }
    Err("a source must start with doc(, virtualDoc( or $var".to_owned())
}

/// Parses a quoted string argument, returning (value, rest-after-quote).
fn string_arg(s: &str) -> Result<(String, &str), String> {
    let s = s.trim_start();
    let quote = s
        .chars()
        .next()
        .filter(|&c| c == '"' || c == '\'')
        .ok_or("expected a string literal")?;
    let rest = &s[1..];
    let end = rest.find(quote).ok_or("unterminated string literal")?;
    Ok((rest[..end].to_owned(), &rest[end + 1..]))
}

fn parse_trailing_path(rest: &str) -> Result<XPath, String> {
    let rest = rest.trim();
    if rest.is_empty() {
        return Ok(XPath {
            absolute: true,
            root_var: None,
            steps: Vec::new(),
        });
    }
    parse_xpath(rest).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use crate::xpath::ast::Expr;

    #[test]
    fn parses_sams_query() {
        // Figure 1, in our constructor syntax.
        let q = parse_flwr(
            r#"for $t in doc("book.xml")//book/title
               let $a := $t/../author
               return <result><title>{$t/text()}</title>{$a}</result>"#,
        )
        .must();
        assert_eq!(q.clauses.len(), 2);
        let Clause::For(v, src) = &q.clauses[0] else {
            panic!("expected for clause");
        };
        assert_eq!(v, "t");
        assert_eq!(src.origin, Origin::Doc("book.xml".into()));
        assert_eq!(src.path.steps.len(), 3);
        let Clause::Let(v, src) = &q.clauses[1] else {
            panic!("expected let clause");
        };
        assert_eq!(v, "a");
        assert_eq!(src.origin, Origin::Var("t".into()));
        assert_eq!(q.ret.len(), 1);
    }

    #[test]
    fn parses_rhondas_virtualdoc_query() {
        // Figure 6.
        let q = parse_flwr(
            r#"for $t in virtualDoc("x.xml", "title { author { name } }")//title
               return <result><title>{$t/text()}</title>
                              <count>{count($t/author)}</count></result>"#,
        )
        .must();
        let Clause::For(_, src) = &q.clauses[0] else {
            panic!();
        };
        assert_eq!(
            src.origin,
            Origin::VirtualDoc("x.xml".into(), "title { author { name } }".into())
        );
        // //title after the call.
        assert_eq!(src.path.steps.len(), 2);
        let Construct::Element { name, content, .. } = &q.ret[0] else {
            panic!();
        };
        assert_eq!(name, "result");
        assert_eq!(content.len(), 2);
    }

    #[test]
    fn parses_where_clauses() {
        let q = parse_flwr(
            r#"for $b in doc("u")//book
               where count($b/author) >= 1 and $b/title = 'X'
               return <hit>{$b/title/text()}</hit>"#,
        )
        .must();
        assert!(matches!(&q.clauses[1], Clause::Where(Expr::And(..))));
    }

    #[test]
    fn parses_attributes_and_self_closing() {
        let q = parse_flwr(
            r#"for $b in doc("u")//book
               return <row kind="book"><sep/>{$b}</row>"#,
        )
        .must();
        let Construct::Element {
            attributes,
            content,
            ..
        } = &q.ret[0]
        else {
            panic!();
        };
        assert_eq!(attributes, &[("kind".to_owned(), "book".to_owned())]);
        assert!(matches!(
            content[0],
            Construct::Element { ref name, .. } if name == "sep"
        ));
    }

    #[test]
    fn bare_doc_source_means_the_root() {
        let q = parse_flwr(r#"for $d in doc("u") return <r>{$d}</r>"#).must();
        let Clause::For(_, src) = &q.clauses[0] else {
            panic!();
        };
        assert!(src.path.steps.is_empty());
        assert!(src.path.absolute);
    }

    #[test]
    fn keywords_inside_strings_do_not_split_clauses() {
        let q = parse_flwr(
            r#"for $b in doc("u")//book[title = 'for return']
               return <r>{$b/title/text()}</r>"#,
        )
        .must();
        assert_eq!(q.clauses.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_flwr("return <x/>").is_err());
        assert!(parse_flwr("for $t doc(\"u\") return <x/>").is_err());
        assert!(parse_flwr(r#"for $t in doc("u") return <a><b></a></b>"#).is_err());
        assert!(parse_flwr(r#"for $t in doc("u") return <a>{unclosed</a>"#).is_err());
        assert!(parse_flwr(r#"for $t in frob("u") return <a/>"#).is_err());
    }

    #[test]
    fn deeply_nested_constructors_are_rejected() {
        let n = MAX_PARSE_DEPTH * 2;
        let q = format!(
            r#"for $t in doc("u") return {}x{}"#,
            "<a>".repeat(n),
            "</a>".repeat(n)
        );
        let e = parse_flwr(&q).unwrap_err();
        assert!(matches!(e, FlwrError::ResourceExhausted { .. }), "{e}");
    }
}
