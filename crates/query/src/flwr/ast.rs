//! FLWR abstract syntax.

use crate::xpath::ast::{Expr, XPath};

/// A parsed FLWR query.
#[derive(Clone, Debug, PartialEq)]
pub struct FlwrQuery {
    /// The for/let/where clauses, in order.
    pub clauses: Vec<Clause>,
    /// The return constructor(s), one per binding tuple.
    pub ret: Vec<Construct>,
}

/// One clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Clause {
    /// `for $v in source` — iterates the source node set.
    For(String, Source),
    /// `let $v := source` — binds the whole node set.
    Let(String, Source),
    /// `where expr` — filters binding tuples.
    Where(Expr),
    /// `order by key [descending], …` — sorts the tuple stream.
    OrderBy(Vec<OrderKey>),
}

/// One ordering key of an `order by` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// The key expression, evaluated per tuple.
    pub expr: Expr,
    /// True for `descending`.
    pub descending: bool,
}

/// A node-set source.
#[derive(Clone, Debug, PartialEq)]
pub struct Source {
    /// Where the navigation starts.
    pub origin: Origin,
    /// The path applied from the origin (may be empty for bare `$v`).
    pub path: XPath,
}

/// The origin of a source.
#[derive(Clone, Debug, PartialEq)]
pub enum Origin {
    /// `doc("uri")` — the physical document.
    Doc(String),
    /// `virtualDoc("uri", "vDataGuide")` — the paper's virtual view.
    VirtualDoc(String, String),
    /// `$var` — a previously bound variable.
    Var(String),
}

/// Return-clause content.
#[derive(Clone, Debug, PartialEq)]
pub enum Construct {
    /// `<name> … </name>` with nested content. Attributes on constructed
    /// elements are written as (name, value) literals.
    Element {
        /// Tag name.
        name: String,
        /// Literal attributes.
        attributes: Vec<(String, String)>,
        /// Child content in order.
        content: Vec<Construct>,
    },
    /// Literal text.
    Text(String),
    /// `{ expr }` — an embedded expression; node results are deep-copied
    /// (following the *virtual* hierarchy when the source is virtual),
    /// other values become text.
    Embed(Expr),
}
