//! FLWR evaluation over a [`QueryDoc`].
//!
//! Clauses build a stream of binding tuples; the return clause constructs
//! one result fragment per tuple into a fresh output document rooted at
//! `<results>`. Node values embedded with `{ … }` are deep-copied through
//! the [`QueryDoc`] interface, so a virtual source copies the *virtual*
//! subtree — this is how the engine produces the transformed values of §6
//! without materializing the whole view.

use crate::doc::QueryDoc;
use crate::error::{Limits, ResourceKind};
use crate::flwr::ast::{Clause, Construct, FlwrQuery, OrderKey, Origin, Source};
use crate::xpath::ast::Expr;
use crate::xpath::eval::{eval_xpath_with_vars_limited, XValue};
use crate::xpath::parse::XPathError;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use vh_xml::{Document, NodeId, NodeKind};

// The error type lives in [`crate::error`]; the historical name is
// re-exported here for callers of the FLWR module.
pub use crate::error::FlwrError;

/// Name of the output wrapper element.
pub const RESULTS_ROOT: &str = "results";

/// The documents a query runs against. Index 0 is the *primary* document
/// (the first `doc()`/`virtualDoc()` origin); every origin in the query
/// maps to one entry. Bindings remember which document their nodes belong
/// to, so cross-document pipelines (`for $a in doc("x") … for $b in
/// doc("y") …`) work — each expression must still confine itself to one
/// document (its variables decide which; variable-free expressions use
/// the primary).
pub struct DocSet<'a> {
    docs: Vec<&'a dyn QueryDoc>,
    by_origin: HashMap<(String, Option<String>), usize>,
}

impl<'a> DocSet<'a> {
    /// A single-document set; every origin resolves to it.
    pub fn single(doc: &'a dyn QueryDoc) -> Self {
        DocSet {
            docs: vec![doc],
            by_origin: HashMap::new(),
        }
    }

    /// Builds a set from `(uri, spec, doc)` triples; the first entry is
    /// the primary document.
    pub fn new(entries: Vec<(String, Option<String>, &'a dyn QueryDoc)>) -> Self {
        let mut docs = Vec::with_capacity(entries.len());
        let mut by_origin = HashMap::new();
        for (uri, spec, doc) in entries {
            by_origin.insert((uri, spec), docs.len());
            docs.push(doc);
        }
        DocSet { docs, by_origin }
    }

    fn index_of(&self, origin: &Origin) -> Result<usize, FlwrError> {
        if self.docs.len() == 1 {
            return Ok(0);
        }
        let key = match origin {
            Origin::Doc(u) => (u.clone(), None),
            Origin::VirtualDoc(u, s) => (u.clone(), Some(s.clone())),
            Origin::Var(_) => unreachable!("var origins resolve through bindings"),
        };
        self.by_origin
            .get(&key)
            .copied()
            .ok_or(FlwrError::UnknownDocument(key.0))
    }

    fn doc(&self, idx: usize) -> &'a dyn QueryDoc {
        self.docs[idx]
    }
}

/// A binding: the owning document plus the bound nodes.
type Binding = (usize, Vec<NodeId>);
type Tuple = HashMap<String, Binding>;

/// Evaluates a parsed query against a single document.
pub fn eval_flwr(q: &FlwrQuery, doc: &dyn QueryDoc) -> Result<Document, FlwrError> {
    eval_flwr_multi(q, &DocSet::single(doc))
}

/// [`eval_flwr`] with explicit resource limits.
pub fn eval_flwr_limited(
    q: &FlwrQuery,
    doc: &dyn QueryDoc,
    limits: Limits,
) -> Result<Document, FlwrError> {
    eval_flwr_multi_limited(q, &DocSet::single(doc), limits)
}

/// Evaluates a parsed query against a document set, producing the result
/// sequence as a document rooted at [`RESULTS_ROOT`].
pub fn eval_flwr_multi(q: &FlwrQuery, docs: &DocSet<'_>) -> Result<Document, FlwrError> {
    eval_flwr_multi_limited(q, docs, Limits::default())
}

/// [`eval_flwr_multi`] with explicit resource limits: the tuple stream is
/// capped at `limits.max_result`, the wall-clock budget is checked between
/// tuples, and every embedded path/expression evaluation runs under the
/// same limits.
pub fn eval_flwr_multi_limited(
    q: &FlwrQuery,
    docs: &DocSet<'_>,
    limits: Limits,
) -> Result<Document, FlwrError> {
    let deadline = limits
        .time_budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let check_time = || -> Result<(), FlwrError> {
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(FlwrError::ResourceExhausted {
                    resource: ResourceKind::Time,
                    limit: limits.time_budget_ms.unwrap_or(0),
                });
            }
        }
        Ok(())
    };
    let check_tuples = |len: usize| -> Result<(), FlwrError> {
        if len > limits.max_result {
            return Err(FlwrError::ResourceExhausted {
                resource: ResourceKind::Cardinality,
                limit: limits.max_result as u64,
            });
        }
        Ok(())
    };
    let mut tuples: Vec<Tuple> = vec![HashMap::new()];
    for clause in &q.clauses {
        check_time()?;
        match clause {
            Clause::For(var, src) => {
                let mut next = Vec::new();
                for t in &tuples {
                    check_time()?;
                    let (idx, nodes) = eval_source(docs, src, t, limits)?;
                    for n in nodes {
                        let mut t2 = t.clone();
                        t2.insert(var.clone(), (idx, vec![n]));
                        next.push(t2);
                    }
                    check_tuples(next.len())?;
                }
                tuples = next;
            }
            Clause::Let(var, src) => {
                for t in &mut tuples {
                    check_time()?;
                    let (idx, nodes) = eval_source(docs, src, t, limits)?;
                    t.insert(var.clone(), (idx, nodes));
                }
            }
            Clause::Where(e) => {
                let mut kept = Vec::with_capacity(tuples.len());
                for t in tuples {
                    check_time()?;
                    if eval_tuple_expr(docs, e, &t, limits)?.truthy() {
                        kept.push(t);
                    }
                }
                tuples = kept;
            }
            Clause::OrderBy(keys) => {
                tuples = order_tuples(docs, tuples, keys, limits)?;
            }
        }
    }
    // Construct results.
    let mut out = Document::new("results");
    let root = out.create_root(RESULTS_ROOT);
    for t in &tuples {
        check_time()?;
        for c in &q.ret {
            construct(docs, c, t, &mut out, root, limits)?;
        }
    }
    Ok(out)
}

/// Variables referenced (as path roots) anywhere in an expression.
fn vars_in_expr(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Path(p) => vars_in_path(p, out),
        Expr::Union(paths) => paths.iter().for_each(|p| vars_in_path(p, out)),
        Expr::Compare(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Arith(l, _, r) => {
            vars_in_expr(l, out);
            vars_in_expr(r, out);
        }
        Expr::Neg(inner) => vars_in_expr(inner, out),
        Expr::Call(_, args) => args.iter().for_each(|a| vars_in_expr(a, out)),
        Expr::Literal(_) | Expr::Number(_) => {}
    }
}

fn vars_in_path(p: &crate::xpath::ast::XPath, out: &mut Vec<String>) {
    if let Some(v) = &p.root_var {
        out.push(v.clone());
    }
    for s in &p.steps {
        for pred in &s.predicates {
            vars_in_expr(pred, out);
        }
    }
}

/// The single document an expression runs against: `Ok(Some(idx))` when
/// all its variables agree (or it has none — the primary), `Ok(None)` when
/// it genuinely spans documents and must be decomposed.
fn expr_doc_index(docs: &DocSet<'_>, e: &Expr, t: &Tuple) -> Result<Option<usize>, FlwrError> {
    let _ = docs;
    let mut vars = Vec::new();
    vars_in_expr(e, &mut vars);
    let mut idx: Option<usize> = None;
    for v in vars {
        if let Some((d, _)) = t.get(&v) {
            match idx {
                None => idx = Some(*d),
                Some(existing) if existing == *d => {}
                Some(_) => return Ok(None),
            }
        }
    }
    Ok(Some(idx.unwrap_or(0)))
}

/// Evaluates an expression in the context of a binding tuple.
///
/// Single-document expressions get full XPath semantics against their
/// document. Expressions spanning documents (`$a/x = $b/y` joins) are
/// decomposed: each side evaluates against its own document, node sets are
/// *lifted* to their string values, and the combination happens at the
/// value level (existential comparison semantics preserved).
fn eval_tuple_expr(
    docs: &DocSet<'_>,
    e: &Expr,
    t: &Tuple,
    limits: Limits,
) -> Result<XValue, FlwrError> {
    if let Some(idx) = expr_doc_index(docs, e, t)? {
        let resolver = |name: &str| {
            t.get(name)
                .filter(|(d, _)| *d == idx)
                .map(|(_, ns)| ns.clone())
        };
        return Ok(crate::xpath::eval::eval_expr_with_vars_limited(
            docs.doc(idx),
            e,
            &resolver,
            limits,
        )?);
    }
    // Cross-document: decompose by operator.
    use crate::xpath::ast::ArithOp;
    use crate::xpath::eval::{compare_values, value_to_number, value_to_string};
    match e {
        Expr::And(l, r) => Ok(XValue::Bool(
            eval_tuple_expr(docs, l, t, limits)?.truthy()
                && eval_tuple_expr(docs, r, t, limits)?.truthy(),
        )),
        Expr::Or(l, r) => Ok(XValue::Bool(
            eval_tuple_expr(docs, l, t, limits)?.truthy()
                || eval_tuple_expr(docs, r, t, limits)?.truthy(),
        )),
        Expr::Compare(l, op, r) => {
            let lv = lift(docs, l, t, limits)?;
            let rv = lift(docs, r, t, limits)?;
            Ok(XValue::Bool(compare_values(&lv, *op, &rv)))
        }
        Expr::Arith(l, op, r) => {
            let a = value_to_number(&lift(docs, l, t, limits)?);
            let b = value_to_number(&lift(docs, r, t, limits)?);
            Ok(XValue::Num(match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => a / b,
                ArithOp::Mod => a % b,
            }))
        }
        Expr::Neg(inner) => Ok(XValue::Num(-value_to_number(&lift(
            docs, inner, t, limits,
        )?))),
        Expr::Call(name, args) => match name.as_str() {
            "concat" => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&value_to_string(&lift(docs, a, t, limits)?));
                }
                Ok(XValue::Str(out))
            }
            "contains" | "starts-with" if args.len() == 2 => {
                let hay = value_to_string(&lift(docs, &args[0], t, limits)?);
                let needle = value_to_string(&lift(docs, &args[1], t, limits)?);
                Ok(XValue::Bool(if name == "contains" {
                    hay.contains(&needle)
                } else {
                    hay.starts_with(&needle)
                }))
            }
            "not" if args.len() == 1 => Ok(XValue::Bool(
                !eval_tuple_expr(docs, &args[0], t, limits)?.truthy(),
            )),
            other => Err(FlwrError::Unsupported(format!(
                "{other}() cannot span documents; bind intermediate values with let"
            ))),
        },
        other => Err(FlwrError::Unsupported(format!(
            "expression spans documents and cannot be decomposed: {other:?}"
        ))),
    }
}

/// Evaluates a sub-expression and lifts node sets to their string values
/// (each against its own document), so cross-document combination can
/// proceed at the value level.
fn lift(docs: &DocSet<'_>, e: &Expr, t: &Tuple, limits: Limits) -> Result<XValue, FlwrError> {
    let idx = expr_doc_index(docs, e, t)?.ok_or_else(|| {
        FlwrError::Unsupported(
            "operand of a cross-document expression itself spans documents".into(),
        )
    })?;
    let resolver = |name: &str| {
        t.get(name)
            .filter(|(d, _)| *d == idx)
            .map(|(_, ns)| ns.clone())
    };
    let v = crate::xpath::eval::eval_expr_with_vars_limited(docs.doc(idx), e, &resolver, limits)?;
    Ok(match v {
        XValue::Nodes(ns) => {
            XValue::Attrs(ns.iter().map(|&n| docs.doc(idx).string_value(n)).collect())
        }
        other => other,
    })
}
/// One comparable order-by key value: numeric when the value parses as a
/// number, falling back to string comparison otherwise (mirrors XPath's
/// untyped-data behaviour).
#[derive(Debug, PartialEq)]
enum KeyValue {
    Num(f64),
    Str(String),
}

impl KeyValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (KeyValue::Num(a), KeyValue::Num(b)) => {
                a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
            }
            (KeyValue::Str(a), KeyValue::Str(b)) => a.cmp(b),
            // Mixed: numbers sort before strings, deterministically.
            (KeyValue::Num(_), KeyValue::Str(_)) => std::cmp::Ordering::Less,
            (KeyValue::Str(_), KeyValue::Num(_)) => std::cmp::Ordering::Greater,
        }
    }
}

/// Sorts the tuple stream by the order-by keys (stable, so earlier keys
/// dominate and input order breaks remaining ties).
fn order_tuples(
    docs: &DocSet<'_>,
    tuples: Vec<Tuple>,
    keys: &[OrderKey],
    limits: Limits,
) -> Result<Vec<Tuple>, FlwrError> {
    let mut decorated: Vec<(Vec<KeyValue>, Tuple)> = Vec::with_capacity(tuples.len());
    for t in tuples {
        let mut kv = Vec::with_capacity(keys.len());
        for k in keys {
            let idx = expr_doc_index(docs, &k.expr, &t)?.unwrap_or(0);
            let v = eval_tuple_expr(docs, &k.expr, &t, limits)?;
            let s = match &v {
                XValue::Nodes(ns) => ns
                    .first()
                    .map(|&n| docs.doc(idx).string_value(n))
                    .unwrap_or_default(),
                XValue::Attrs(a) => a.first().cloned().unwrap_or_default(),
                XValue::Str(s) => s.clone(),
                XValue::Num(n) => n.to_string(),
                XValue::Bool(b) => b.to_string(),
            };
            kv.push(match s.trim().parse::<f64>() {
                Ok(n) => KeyValue::Num(n),
                Err(_) => KeyValue::Str(s),
            });
        }
        decorated.push((kv, t));
    }
    decorated.sort_by(|(a, _), (b, _)| {
        for (i, k) in keys.iter().enumerate() {
            let ord = a[i].cmp(&b[i]);
            let ord = if k.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(decorated.into_iter().map(|(_, t)| t).collect())
}

fn eval_source(
    docs: &DocSet<'_>,
    src: &Source,
    bindings: &Tuple,
    limits: Limits,
) -> Result<(usize, Vec<NodeId>), FlwrError> {
    let idx = match &src.origin {
        Origin::Var(v) => {
            bindings
                .get(v)
                .ok_or_else(|| FlwrError::XPath(XPathError::msg(format!("unbound variable ${v}"))))?
                .0
        }
        other => docs.index_of(other)?,
    };
    let doc = docs.doc(idx);
    if matches!(src.origin, Origin::Doc(_) | Origin::VirtualDoc(..)) && src.path.steps.is_empty() {
        return Ok((idx, doc.roots()));
    }
    let resolver = |name: &str| {
        bindings
            .get(name)
            .filter(|(d, _)| *d == idx)
            .map(|(_, ns)| ns.clone())
    };
    let v = eval_xpath_with_vars_limited(doc, &src.path, None, &resolver, limits)?;
    match v {
        XValue::Nodes(ns) => Ok((idx, ns)),
        other => Err(FlwrError::Unsupported(format!(
            "source did not evaluate to nodes: {other:?}"
        ))),
    }
}

fn construct(
    docs: &DocSet<'_>,
    c: &Construct,
    bindings: &Tuple,
    out: &mut Document,
    parent: NodeId,
    limits: Limits,
) -> Result<(), FlwrError> {
    match c {
        Construct::Element {
            name,
            attributes,
            content,
        } => {
            let id = out.append_element(parent, name.clone());
            for (an, av) in attributes {
                out.set_attribute(id, an.clone(), av.clone());
            }
            for child in content {
                construct(docs, child, bindings, out, id, limits)?;
            }
        }
        Construct::Text(t) => {
            out.append_text(parent, t.clone());
        }
        Construct::Embed(e) => {
            let idx = expr_doc_index(docs, e, bindings)?.unwrap_or(0);
            let v = eval_tuple_expr(docs, e, bindings, limits)?;
            match v {
                XValue::Nodes(ns) => {
                    for n in ns {
                        copy_node(docs.doc(idx), n, out, parent);
                    }
                }
                XValue::Attrs(a) => {
                    if !a.is_empty() {
                        out.append_text(parent, a.join(" "));
                    }
                }
                XValue::Str(s) => {
                    if !s.is_empty() {
                        out.append_text(parent, s);
                    }
                }
                XValue::Num(n) => {
                    let s = if n.fract() == 0.0 && n.is_finite() {
                        format!("{}", n as i64)
                    } else {
                        format!("{n}")
                    };
                    out.append_text(parent, s);
                }
                XValue::Bool(b) => {
                    out.append_text(parent, b.to_string());
                }
            }
        }
    }
    Ok(())
}

/// Deep-copies `src` (with the hierarchy the [`QueryDoc`] exposes — the
/// virtual one for virtual sources) under `parent` in `out`.
pub(crate) fn copy_node(doc: &dyn QueryDoc, src: NodeId, out: &mut Document, parent: NodeId) {
    match doc.kind(src) {
        NodeKind::Element { name, .. } => {
            let id = out.append_element(parent, name.clone());
            for (an, av) in doc.attributes(src) {
                out.set_attribute(id, an, av);
            }
            for c in doc.children(src) {
                copy_node(doc, c, out, id);
            }
        }
        NodeKind::Text(t) => {
            out.append_text(parent, t.clone());
        }
        NodeKind::Comment(t) => {
            out.append_comment(parent, t.clone());
        }
        NodeKind::ProcessingInstruction { target, data } => {
            out.append_pi(parent, target.clone(), data.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::PhysicalDoc;
    use crate::flwr::parse::parse_flwr;
    use crate::testutil::Must;
    use vh_dataguide::TypedDocument;
    use vh_xml::builder::paper_figure2;
    use vh_xml::{serialize, SerializeOptions};

    fn run(query: &str) -> String {
        let td = TypedDocument::analyze(paper_figure2());
        let doc = PhysicalDoc::new(&td);
        let q = parse_flwr(query).must();
        let out = eval_flwr(&q, &doc).must();
        serialize(&out, SerializeOptions::compact())
    }

    #[test]
    fn sams_query_produces_figure3() {
        // Figure 1 (result element named per the paper's output shape).
        let got = run(r#"
            for $t in doc("book.xml")//book/title
            let $a := $t/../author
            return <title>{$t/text()}{$a}</title>
        "#);
        assert_eq!(
            got,
            "<results>\
             <title>X<author><name>C</name></author></title>\
             <title>Y<author><name>D</name></author></title>\
             </results>"
        );
    }

    #[test]
    fn where_filters_tuples() {
        let got = run(r#"
            for $b in doc("book.xml")//book
            where $b/title = 'Y'
            return <hit>{$b/publisher/location/text()}</hit>
        "#);
        assert_eq!(got, "<results><hit>M</hit></results>");
    }

    #[test]
    fn count_embeds_as_text() {
        let got = run(r#"
            for $b in doc("book.xml")//book
            return <c>{count($b/author)}</c>
        "#);
        assert_eq!(got, "<results><c>1</c><c>1</c></results>");
    }

    #[test]
    fn nested_constructors_and_literal_text() {
        let got = run(r#"
            for $b in doc("book.xml")/data/book[1]
            return <r kind="x">n: <n>{$b/title/text()}</n></r>
        "#);
        assert_eq!(got, "<results><r kind=\"x\">n: <n>X</n></r></results>");
    }

    #[test]
    fn let_binds_node_sets() {
        let got = run(r#"
            for $d in doc("book.xml")
            let $titles := $d/book/title
            return <all>{count($titles)}</all>
        "#);
        assert_eq!(got, "<results><all>2</all></results>");
    }

    #[test]
    fn order_by_sorts_tuples() {
        let got = run(r#"
            for $b in doc("book.xml")//book
            order by $b/title descending
            return <t>{$b/title/text()}</t>
        "#);
        assert_eq!(got, "<results><t>Y</t><t>X</t></results>");
        let got = run(r#"
            for $b in doc("book.xml")//book
            order by $b/publisher/location
            return <t>{$b/publisher/location/text()}</t>
        "#);
        assert_eq!(got, "<results><t>M</t><t>W</t></results>");
    }

    #[test]
    fn order_by_numeric_keys() {
        let td = TypedDocument::parse(
            "n.xml",
            "<s><i><p>9</p></i><i><p>100</p></i><i><p>25</p></i></s>",
        )
        .must();
        let doc = PhysicalDoc::new(&td);
        let q = parse_flwr(
            r#"for $i in doc("n.xml")//i
               order by $i/p
               return <p>{$i/p/text()}</p>"#,
        )
        .must();
        let out = eval_flwr(&q, &doc).must();
        assert_eq!(
            serialize(&out, SerializeOptions::compact()),
            "<results><p>9</p><p>25</p><p>100</p></results>",
            "numeric, not lexicographic, ordering"
        );
    }

    #[test]
    fn multiple_for_clauses_build_the_product() {
        let got = run(r#"
            for $a in doc("book.xml")//book
            for $b in doc("book.xml")//book
            where $a/title != $b/title
            return <pair>{$a/title/text()}{$b/title/text()}</pair>
        "#);
        assert_eq!(got, "<results><pair>XY</pair><pair>YX</pair></results>");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let td = TypedDocument::analyze(paper_figure2());
        let doc = PhysicalDoc::new(&td);
        let q = parse_flwr(r#"for $t in doc("u")//title return <x>{$missing}</x>"#).must();
        assert!(eval_flwr(&q, &doc).is_err());
    }

    #[test]
    fn tuple_stream_cardinality_is_capped() {
        let td = TypedDocument::analyze(paper_figure2());
        let doc = PhysicalDoc::new(&td);
        // Two nested for-clauses build a 2×2 product.
        let q = parse_flwr(
            r#"for $a in doc("u")//book
               for $b in doc("u")//book
               return <p>pair</p>"#,
        )
        .must();
        let tight = Limits {
            max_result: 3,
            ..Limits::default()
        };
        let e = eval_flwr_limited(&q, &doc, tight).unwrap_err();
        assert!(
            matches!(
                e,
                FlwrError::ResourceExhausted {
                    resource: ResourceKind::Cardinality,
                    ..
                }
            ),
            "{e}"
        );
        assert_eq!(e.code(), "QUERY_RESOURCE");
        assert!(eval_flwr_limited(&q, &doc, Limits::default()).is_ok());
    }
}
