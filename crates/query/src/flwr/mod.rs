//! A FLWR (for/let/where/return) subset of XQuery with element
//! constructors, `doc(...)` and the paper's **`virtualDoc(...)`**.
//!
//! This is enough to express every query in the paper verbatim (modulo
//! whitespace): Sam's transformation (Figure 1), Rhonda's nested query
//! (Figure 4), and the `virtualDoc` formulation (Figure 6):
//!
//! ```text
//! for $t in virtualDoc("x.xml", "title { author { name } }")//title
//! return <result> <title>{$t/text()}</title>
//!                 <count>{count($t/author)}</count> </result>
//! ```
//!
//! Supported grammar:
//!
//! ```text
//! query  ::= clause+ 'return' constructor
//! clause ::= 'for' $var 'in' source
//!          | 'let' $var ':=' source
//!          | 'where' expr
//! source ::= 'doc(' str ')' path?
//!          | 'virtualDoc(' str ',' str ')' path?
//!          | $var path?
//! constructor ::= '<'name'>' ( text | constructor | '{' expr '}' )* '</'name'>'
//! ```
//!
//! Queries may reference several documents/views (each bound variable
//! remembers its origin); a single *expression* must confine itself to one
//! document — its variables decide which.

pub mod ast;
pub mod eval;
pub mod parse;

pub use ast::{Clause, Construct, FlwrQuery, Origin, Source};
pub use eval::{eval_flwr, eval_flwr_multi, DocSet, FlwrError};
pub use parse::parse_flwr;
