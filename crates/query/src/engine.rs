//! The [`Engine`]: a document registry with one-call query evaluation.
//!
//! This is the component a user of the paper's system would interact with:
//! register documents once (they are analyzed — PBN numbers, DataGuide,
//! type map), then run FLWR queries whose sources name them through
//! `doc("uri")` or `virtualDoc("uri", "vDataGuide")`. `virtualDoc` views
//! are compiled on first use and served from the sharded
//! [`ExecCache`] — vDataGuide expansions, Algorithm-1 level maps,
//! scan-range prefix tables and per-type node indexes are each cached per
//! `(uri, guide fingerprint, specification)` — so Algorithm 1 runs once
//! per view, not once per query, and a warm open does no per-node work.
//! The engine is `Sync`: reads ([`Engine::run`]) can run from many
//! threads against one registry.
//!
//! # The request API
//!
//! [`Engine::run`] is the single entry point: it takes a [`QueryRequest`]
//! (FLWR text, a pre-parsed query, or an XPath over a physical or virtual
//! view, plus per-request limits/exec/trace overrides) and returns a
//! [`QueryOutcome`] carrying the result document, per-query
//! [`QueryStats`], and — when tracing was requested — a [`QueryTrace`]
//! span tree with per-stage timings, per-view cache provenance, axis
//! range selections (type-index and arena slot brackets) and operator
//! counts. [`Engine::explain`] forces tracing on and wraps the result in
//! an [`Explain`] with text/JSON renderings; [`Engine::snapshot`] and
//! [`Engine::metrics_text`] expose the cumulative counters. The legacy
//! `eval*` wrappers over `run` compile only under the off-by-default
//! `legacy-api` cargo feature — v1 of the API is [`QueryRequest`] in,
//! [`QueryOutcome`] out.

use crate::doc::{PhysicalDoc, QueryDoc, VirtualDoc};
use crate::edit::{Edit, EditReceipt, EditRecovery, ReplayFailure};
use crate::error::Limits;
use crate::flwr::ast::{Clause, FlwrQuery, Origin};
use crate::flwr::eval::{copy_node, eval_flwr_multi_limited, DocSet, FlwrError, RESULTS_ROOT};
use crate::flwr::parse::parse_flwr;
use crate::xpath::ast::XPath;
use crate::xpath::eval::eval_xpath_limited;
use crate::xpath::parse::parse_xpath;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vh_core::cache::{
    guide_fingerprint, Artifact, CacheStats, MaintenancePolicy, ShardedLru, Stamped, ViewDelta,
    ViewKey,
};
use vh_core::levels::LevelMap;
use vh_core::range::PrefixTables;
use vh_core::{ExecCache, ExecOptions, TypeIndex, VDataGuide, VirtualDocument};
use vh_dataguide::{resolve_path, TypedDocument};
use vh_obs::{
    AxisCounters, CacheOutcome, PromWriter, QueryCounterCells, QueryCounters, QueryStats,
    QueryTrace, Span, TraceBuilder, ViewProvenance,
};
use vh_pbn::EncodedPbn;
use vh_storage::buffer::BufferStats;
use vh_storage::stats::StorageStats;
use vh_storage::store::StoredDocument;
use vh_storage::{replay, EditWal, StorageError};
use vh_xml::{Document, NodeId};

// --------------------------------------------------------- request API ---

/// What a [`QueryRequest`] asks the engine to evaluate — the typed query
/// classes of the frozen v1 API. One of these (not four optional fields)
/// is the request's payload, so in-process callers and the `vh-serve`
/// wire protocol share one request shape: each wire query verb maps onto
/// exactly one `QueryKind` constructor.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// FLWR query text, parsed by the engine.
    Flwr(String),
    /// An already-parsed FLWR query (skips the parse stage).
    Parsed(FlwrQuery),
    /// An XPath over one registered document — physical when `spec` is
    /// `None`, over the virtual view compiled from `spec` otherwise.
    Path {
        /// The registered document's URI.
        uri: String,
        /// The vDataGuide transform spec of the virtual view, or `None`
        /// to navigate the physical document.
        spec: Option<String>,
        /// The XPath to evaluate.
        path: String,
    },
}

impl QueryKind {
    /// The stable label stamped on traces and metrics for this class.
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Flwr(_) => "flwr",
            QueryKind::Parsed(_) => "flwr-parsed",
            QueryKind::Path { spec: None, .. } => "path",
            QueryKind::Path { spec: Some(_), .. } => "virtual-path",
        }
    }
}

/// One query for [`Engine::run`]: what to evaluate plus per-request
/// overrides of the engine's limits and execution options, and whether
/// to collect a [`QueryTrace`].
///
/// Built with [`QueryRequest::flwr`] / [`QueryRequest::parsed`] /
/// [`QueryRequest::path`] / [`QueryRequest::virtual_path`] and the
/// `with_*` builder methods.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    kind: QueryKind,
    limits: Option<Limits>,
    exec: Option<ExecOptions>,
    trace: bool,
}

impl QueryRequest {
    /// A request evaluating `kind` with the engine's default limits,
    /// execution options and tracing off.
    pub fn new(kind: QueryKind) -> Self {
        QueryRequest {
            kind,
            limits: None,
            exec: None,
            trace: false,
        }
    }

    /// Starts a [`QueryRequestBuilder`] for `kind` — the explicit-struct
    /// spelling of the `with_*` chain, for callers (like the wire
    /// protocol's request decoder) that assemble options incrementally.
    pub fn builder(kind: QueryKind) -> QueryRequestBuilder {
        QueryRequestBuilder {
            request: Self::new(kind),
        }
    }

    /// A FLWR query from source text.
    pub fn flwr(query: impl Into<String>) -> Self {
        Self::new(QueryKind::Flwr(query.into()))
    }

    /// An already-parsed FLWR query (the parse stage is skipped).
    pub fn parsed(query: FlwrQuery) -> Self {
        Self::new(QueryKind::Parsed(query))
    }

    /// An XPath over the physical document registered at `uri`.
    pub fn path(uri: impl Into<String>, path: impl Into<String>) -> Self {
        Self::new(QueryKind::Path {
            uri: uri.into(),
            spec: None,
            path: path.into(),
        })
    }

    /// An XPath over the virtual view `spec` of the document at `uri`.
    pub fn virtual_path(
        uri: impl Into<String>,
        spec: impl Into<String>,
        path: impl Into<String>,
    ) -> Self {
        Self::new(QueryKind::Path {
            uri: uri.into(),
            spec: Some(spec.into()),
            path: path.into(),
        })
    }

    /// The typed query class this request evaluates.
    pub fn kind(&self) -> &QueryKind {
        &self.kind
    }

    /// Overrides the engine's resource limits for this request.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Overrides the engine's execution options for this request.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Turns span/counter collection on or off (off by default).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Whether this request collects a trace.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }
}

/// Incremental constructor for a [`QueryRequest`], started by
/// [`QueryRequest::builder`]. Every setter has a `with_*` twin on the
/// request itself; the builder exists for call sites that thread options
/// through conditionals before sealing the request with
/// [`QueryRequestBuilder::build`].
#[derive(Clone, Debug)]
pub struct QueryRequestBuilder {
    request: QueryRequest,
}

impl QueryRequestBuilder {
    /// Overrides the engine's resource limits for this request.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.request.limits = Some(limits);
        self
    }

    /// Overrides the engine's execution options for this request.
    pub fn exec(mut self, exec: ExecOptions) -> Self {
        self.request.exec = Some(exec);
        self
    }

    /// Turns span/counter collection on or off (off by default).
    pub fn trace(mut self, trace: bool) -> Self {
        self.request.trace = trace;
        self
    }

    /// Seals the builder into the finished request.
    pub fn build(self) -> QueryRequest {
        self.request
    }
}

/// What [`Engine::run`] returns: the result document, per-query
/// statistics, and the span tree when tracing was requested.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The result document — rooted at `<results>` for FLWR queries, and
    /// holding copies of the selected nodes for path requests.
    pub document: Document,
    /// For path requests, the selected node ids in the *source* document
    /// (`None` for FLWR queries, whose results are constructed nodes).
    pub nodes: Option<Vec<NodeId>>,
    /// Stage timings, result size, cache provenance and operator counts.
    pub stats: QueryStats,
    /// The span tree; `Some` exactly when the request enabled tracing.
    pub trace: Option<QueryTrace>,
}

impl QueryOutcome {
    /// The result document serialized compactly.
    pub fn to_string_compact(&self) -> String {
        vh_xml::serialize(&self.document, vh_xml::SerializeOptions::compact())
    }
}

/// The rendered plan of one traced query: [`Engine::explain`] output.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The statistics of the explaining run.
    pub stats: QueryStats,
    /// The full span tree of the explaining run.
    pub trace: QueryTrace,
}

impl Explain {
    /// Human-readable span tree (the CLI's `--explain` output).
    pub fn text(&self) -> String {
        self.trace.render_text()
    }

    /// The trace as JSON (round-trips through
    /// [`QueryTrace::from_json`]).
    pub fn json(&self) -> String {
        self.trace.to_json()
    }
}

/// One engine-wide statistics snapshot: compiled-view cache counters,
/// storage and buffer-pool counters aggregated over the attached stores,
/// and cumulative query counters. Returned by [`Engine::snapshot`].
#[derive(Clone, Debug, Default)]
pub struct EngineSnapshot {
    /// Hit/miss/eviction counters of the compiled-view cache.
    pub cache: CacheStats,
    /// Storage sizes and access counters, merged over attached stores.
    pub storage: StorageStats,
    /// Buffer-pool counters, merged over attached stores with pools.
    pub buffers: BufferStats,
    /// Cumulative query counters since the engine was created.
    pub queries: QueryCounters,
}

// --------------------------------------------------------------- engine ---

/// Default number of delta-segment entries a document may accumulate
/// during an [`Engine::apply_all`] batch or WAL replay before it is
/// compacted mid-stream.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 1024;

/// A registry of analyzed documents plus the query entry points.
pub struct Engine {
    docs: HashMap<String, TypedDocument>,
    /// DataGuide fingerprint per registered URI — part of every view's
    /// cache key, so re-registered content can never serve stale views.
    guide_hash: HashMap<String, u64>,
    /// Compiled-view artifacts shared across queries (and threads).
    cache: Arc<ExecCache>,
    /// Execution options stamped onto every view this engine opens.
    exec: ExecOptions,
    /// Resource limits applied to every query this engine evaluates.
    limits: Limits,
    /// Cumulative query counters (a few relaxed adds per query).
    counters: QueryCounterCells,
    /// Page stores attached for storage-stats reporting (see
    /// [`Engine::attach_store`]); queries never read through them.
    stores: HashMap<String, StoredDocument>,
    /// The engine-wide write-ahead edit log. An edit is acknowledged only
    /// after its frame is appended *and synced* here, so the synced
    /// prefix always reproduces the acknowledged document state.
    wal: EditWal,
    /// Highest WAL sequence number already applied to the registry —
    /// [`Engine::recover`] skips records at or below it (idempotent
    /// replay).
    applied_seq: u64,
    /// Delta-segment entries a document may accumulate mid-batch before
    /// being compacted (see [`Engine::set_compact_threshold`]).
    compact_threshold: usize,
    /// Per-URI document generation, bumped whenever a structural edit
    /// batch commits (or a URI is re-registered / hard-compacted). Cached
    /// entries carry the generation they reflect ([`Stamped`]); a lookup
    /// whose entry generation disagrees recomputes, so correctness never
    /// depends on delta routing having reached every entry.
    doc_gen: HashMap<String, u64>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            docs: HashMap::new(),
            guide_hash: HashMap::new(),
            cache: Arc::default(),
            exec: ExecOptions::default(),
            limits: Limits::default(),
            counters: QueryCounterCells::new(),
            stores: HashMap::new(),
            wal: EditWal::new(),
            applied_seq: 0,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            doc_gen: HashMap::new(),
        }
    }
}

impl Engine {
    /// Creates an empty engine with [`Limits::default`] guards.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Creates an empty engine with explicit resource limits.
    pub fn with_limits(limits: Limits) -> Self {
        Engine {
            limits,
            ..Engine::default()
        }
    }

    /// Replaces the resource limits applied to subsequent queries.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// The resource limits currently in force.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Replaces the execution options (threads, caching) applied to every
    /// view opened by subsequent queries.
    pub fn set_exec_options(&mut self, exec: ExecOptions) {
        self.exec = exec;
    }

    /// The execution options currently in force.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Parses and registers an XML string under its URI.
    pub fn register_xml(&mut self, uri: &str, xml: &str) -> Result<(), vh_xml::ParseError> {
        let td = TypedDocument::parse(uri, xml)?;
        self.install(uri.to_owned(), td);
        Ok(())
    }

    /// Registers an already-built document under its URI, invalidating any
    /// cached views of a previous document at that URI.
    pub fn register(&mut self, doc: Document) {
        let uri = doc.uri().to_owned();
        let td = TypedDocument::analyze(doc);
        self.install(uri, td);
    }

    /// Stores an analyzed document, evicting all cached views of the URI
    /// and recording the new guide fingerprint. Re-registration is not an
    /// edit — there is no delta to route — so the generation is bumped and
    /// the cache hard-evicted.
    fn install(&mut self, uri: String, td: TypedDocument) {
        self.cache.invalidate_uri(&uri);
        self.stores.remove(&uri);
        *self.doc_gen.entry(uri.clone()).or_insert(0) += 1;
        self.guide_hash
            .insert(uri.clone(), guide_fingerprint(td.guide()));
        self.docs.insert(uri, td);
    }

    /// The analyzed document registered under `uri`.
    pub fn document(&self, uri: &str) -> Option<&TypedDocument> {
        self.docs.get(uri)
    }

    /// Builds (or returns the existing) page store for the document at
    /// `uri`, so [`Engine::snapshot`] can report storage sizes and access
    /// counters for it. Queries evaluate against the in-memory analyzed
    /// document either way.
    pub fn attach_store(&mut self, uri: &str) -> Result<&StoredDocument, FlwrError> {
        let td = self
            .docs
            .get(uri)
            .ok_or_else(|| FlwrError::UnknownDocument(uri.to_owned()))?;
        Ok(self
            .stores
            .entry(uri.to_owned())
            .or_insert_with(|| StoredDocument::build(td.clone())))
    }

    // ----------------------------------------------------------- edits ---

    /// Applies one [`Edit`] to its registered document.
    ///
    /// The mutation runs in memory first (validation and application are
    /// one step — the document layer rejects bad paths, positions and
    /// cyclic moves before changing anything), then the edit's frame is
    /// appended **and synced** to the write-ahead log, and only then is
    /// the receipt produced. A crash at any point loses at most the one
    /// unacknowledged edit: [`Engine::recover`] rebuilds exactly the
    /// acknowledged state from the base documents plus the synced log.
    ///
    /// Sibling numbers are minted *between* their neighbours
    /// ([`vh_pbn::KeyGen`]), so no existing node is ever renumbered; the
    /// byte arena absorbs the edit via an immediate bounded compaction so
    /// concurrent readers ([`Engine::run`] takes `&self`) always see a
    /// fresh arena.
    pub fn apply(&mut self, edit: Edit) -> Result<EditReceipt, FlwrError> {
        self.apply_traced(edit, false).map(|(receipt, _)| receipt)
    }

    /// [`Engine::apply`] with an optional `apply` span tree (metadata:
    /// edit kind and URI; children: the `compact` span when the delta
    /// segment is drained).
    pub fn apply_traced(
        &mut self,
        edit: Edit,
        traced: bool,
    ) -> Result<(EditReceipt, Option<QueryTrace>), FlwrError> {
        let mut trace = if traced {
            TraceBuilder::enabled("apply")
        } else {
            TraceBuilder::disabled()
        };
        trace.meta("kind", edit.kind());
        trace.meta("uri", edit.uri());
        let old_fp = self.fingerprint_of(edit.uri());
        let nodes_touched = match self.apply_inner(&edit, &mut trace) {
            Ok(n) => n,
            Err(e) => {
                self.counters.record_edit_failure();
                return Err(e);
            }
        };
        let seq = self.log_edit(&edit);
        trace.count("wal.seq", seq);
        let compacted = self.drain_delta(edit.uri(), &mut trace);
        self.route_uri_delta(edit.uri(), old_fp, &mut trace);
        Ok((
            EditReceipt {
                seq,
                uri: edit.uri().to_owned(),
                kind: edit.kind(),
                nodes_touched,
                compacted,
            },
            trace.finish(),
        ))
    }

    /// Applies a batch of edits in order. Unlike repeated
    /// [`Engine::apply`] calls, the delta segment of each document is
    /// allowed to accumulate up to the compaction threshold between
    /// edits and is drained once per document at the end of the batch —
    /// the receipts' `compacted` fields report only mid-batch threshold
    /// compactions. Stops at the first rejected edit; everything before
    /// it is applied and durable.
    pub fn apply_all(&mut self, edits: Vec<Edit>) -> Result<Vec<EditReceipt>, FlwrError> {
        let mut trace = TraceBuilder::disabled();
        let mut receipts = Vec::with_capacity(edits.len());
        // One `(uri, pre-batch fingerprint)` per touched document: the whole
        // batch is routed to the cache as a single merged delta at the end
        // (or on the error path), never per edit.
        let mut touched: Vec<(String, u64)> = Vec::new();
        for edit in edits {
            let old_fp = self.fingerprint_of(edit.uri());
            let nodes_touched = match self.apply_inner(&edit, &mut trace) {
                Ok(n) => n,
                Err(e) => {
                    self.counters.record_edit_failure();
                    self.drain_touched(&touched, &mut trace);
                    return Err(e);
                }
            };
            let seq = self.log_edit(&edit);
            if !touched.iter().any(|(u, _)| u == edit.uri()) {
                touched.push((edit.uri().to_owned(), old_fp));
            }
            let compacted = if self.delta_of(edit.uri()) >= self.compact_threshold {
                self.drain_delta(edit.uri(), &mut trace)
            } else {
                0
            };
            receipts.push(EditReceipt {
                seq,
                uri: edit.uri().to_owned(),
                kind: edit.kind(),
                nodes_touched,
                compacted,
            });
        }
        self.drain_touched(&touched, &mut trace);
        Ok(receipts)
    }

    /// Rebuilds the acknowledged document state from a write-ahead log.
    ///
    /// `bytes` is the persisted log (torn tails and corrupt frames are
    /// quarantined by [`vh_storage::replay`], never applied). Records
    /// whose sequence number was already applied in this engine are
    /// skipped, so replay is idempotent; the remainder are re-applied in
    /// order against the registered base documents. Replay stops at the
    /// first record that fails to decode or re-apply — the failure is
    /// reported, never papered over — and the engine adopts the readable
    /// log prefix as its own, so subsequent edits append after it.
    ///
    /// Only log-level corruption of the header is an `Err`; everything
    /// else is reported in the returned [`EditRecovery`].
    pub fn recover(&mut self, bytes: &[u8]) -> Result<EditRecovery, StorageError> {
        self.recover_traced(bytes, false)
    }

    /// [`Engine::recover`] with an optional `recover` span tree.
    pub fn recover_traced(
        &mut self,
        bytes: &[u8],
        traced: bool,
    ) -> Result<EditRecovery, StorageError> {
        let mut trace = if traced {
            TraceBuilder::enabled("recover")
        } else {
            TraceBuilder::disabled()
        };
        let (wal, report) = EditWal::from_bytes(bytes.to_vec())?;
        // The adopted log is the validated clean prefix, so this second
        // pass cannot fail or quarantine further.
        let (records, _) = replay(wal.as_bytes())?;
        let mut rec = EditRecovery {
            wal: report,
            ..EditRecovery::default()
        };
        let mut touched: Vec<(String, u64)> = Vec::new();
        for r in &records {
            if r.seq <= self.applied_seq {
                rec.skipped += 1;
                continue;
            }
            let edit = match Edit::decode(&r.payload) {
                Ok(e) => e,
                Err(e) => {
                    rec.failed.push(ReplayFailure {
                        seq: r.seq,
                        reason: e.to_string(),
                    });
                    break;
                }
            };
            let old_fp = self.fingerprint_of(edit.uri());
            match self.apply_inner(&edit, &mut trace) {
                Ok(_) => {
                    self.applied_seq = r.seq;
                    rec.replayed += 1;
                    self.counters.record_edit(true);
                    if !touched.iter().any(|(u, _)| u == edit.uri()) {
                        touched.push((edit.uri().to_owned(), old_fp));
                    }
                    // Bound the delta segment during long replays.
                    if self.delta_of(edit.uri()) >= self.compact_threshold {
                        rec.compacted += self.drain_delta(edit.uri(), &mut trace);
                    }
                }
                Err(e) => {
                    rec.failed.push(ReplayFailure {
                        seq: r.seq,
                        reason: e.to_string(),
                    });
                    break;
                }
            }
        }
        for (uri, old_fp) in &touched {
            rec.compacted += self.drain_delta(uri, &mut trace);
            self.route_uri_delta(uri, *old_fp, &mut trace);
        }
        self.wal = wal;
        trace.count("recover.replayed", rec.replayed);
        trace.count("recover.skipped", rec.skipped);
        rec.trace = trace.finish();
        Ok(rec)
    }

    /// Explicitly merges every document's outstanding delta segment into
    /// its byte arena. Returns the total number of entries merged. After
    /// single [`Engine::apply`] calls this is a no-op (they drain
    /// eagerly); it exists as the bounded explicit compactor for embedders
    /// driving [`Engine::apply_all`] batches or long replays.
    ///
    /// Unlike the modeled drains inside `apply`/`apply_all`/`recover`
    /// (which route a [`ViewDelta`] to the cache), an explicit compaction
    /// the engine did not schedule takes the maintenance **hard
    /// fallback**: any URI it actually compacts has its edit journal
    /// discarded and its cached views evicted (counted as fallback
    /// evictions), and its generation bumped.
    pub fn compact(&mut self) -> usize {
        let uris: Vec<String> = self.docs.keys().cloned().collect();
        let mut trace = TraceBuilder::disabled();
        let mut merged = 0;
        for uri in uris {
            let m = self.drain_delta(&uri, &mut trace);
            if m > 0 {
                if let Some(td) = self.docs.get_mut(&uri) {
                    td.take_delta();
                }
                self.cache.fallback_invalidate_uri(&uri);
                *self.doc_gen.entry(uri).or_insert(0) += 1;
            }
            merged += m;
        }
        merged
    }

    /// Replaces the cache's maintain-vs-recompute cost model (a tuning
    /// and testing hook). No-op while the cache is shared with another
    /// engine or an in-flight reader.
    pub fn set_maintenance_policy(&mut self, policy: MaintenancePolicy) {
        if let Some(c) = Arc::get_mut(&mut self.cache) {
            c.set_policy(policy);
        }
    }

    /// Replaces the mid-batch compaction threshold (clamped to ≥ 1).
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.compact_threshold = threshold.max(1);
    }

    /// The mid-batch compaction threshold currently in force.
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// The engine's write-ahead edit log as bytes — what `vpbn edit`
    /// persists after a batch. Includes only synced frames plus any
    /// staged-but-unsynced tail (none, between [`Engine::apply`] calls).
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.as_bytes()
    }

    /// Highest WAL sequence number applied to this registry.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Validates and applies one edit to its document, then refreshes the
    /// URI's guide fingerprint (the guide may have grown). Cached views
    /// are **not** evicted here: the edit's journal is routed to the cache
    /// as a [`ViewDelta`] once the batch commits
    /// ([`Engine::route_uri_delta`]). Returns the number of nodes touched.
    /// Does **not** log or compact.
    fn apply_inner(&mut self, edit: &Edit, trace: &mut TraceBuilder) -> Result<u64, FlwrError> {
        let uri = edit.uri();
        let td = self
            .docs
            .get_mut(uri)
            .ok_or_else(|| FlwrError::UnknownDocument(uri.to_owned()))?;
        let nodes_touched = match edit {
            Edit::InsertSubtree {
                parent, pos, xml, ..
            } => {
                let parent = resolve_path(td.doc(), parent)?;
                let root = td.insert_fragment(parent, *pos, xml)?;
                td.doc().descendants_or_self(root).count() as u64
            }
            Edit::DeleteSubtree { target, .. } => {
                let target = resolve_path(td.doc(), target)?;
                td.delete_subtree(target)? as u64
            }
            Edit::MoveSubtree {
                target,
                parent,
                pos,
                ..
            } => {
                let t = resolve_path(td.doc(), target)?;
                let p = resolve_path(td.doc(), parent)?;
                td.move_subtree(t, p, *pos)?;
                td.doc().descendants_or_self(t).count() as u64
            }
            Edit::SetValue { target, value, .. } => {
                let t = resolve_path(td.doc(), target)?;
                td.set_value(t, value)?;
                1
            }
        };
        trace.count("edit.nodes_touched", nodes_touched);
        let fp = guide_fingerprint(td.guide());
        self.stores.remove(uri);
        self.guide_hash.insert(uri.to_owned(), fp);
        Ok(nodes_touched)
    }

    /// Makes an applied edit durable: encodes, appends and syncs its WAL
    /// frame, advances the applied sequence and counts it. Returns the
    /// edit's sequence number.
    fn log_edit(&mut self, edit: &Edit) -> u64 {
        let payload = edit.encode();
        let seq = self.wal.append(&payload);
        self.wal.sync();
        self.applied_seq = seq;
        self.counters.record_edit(false);
        seq
    }

    /// Merges `uri`'s delta segment into its byte arena under a `compact`
    /// span. Returns the number of entries merged (0 when already
    /// compact). No cached artifact addresses arena slots directly, so a
    /// modeled drain does not evict; the batch's journal is routed through
    /// [`Engine::route_uri_delta`] afterwards.
    fn drain_delta(&mut self, uri: &str, trace: &mut TraceBuilder) -> usize {
        let Some(td) = self.docs.get_mut(uri) else {
            return 0;
        };
        if td.delta_len() == 0 {
            return 0;
        }
        trace.begin("compact");
        trace.meta("uri", uri);
        let merged = td.compact();
        trace.count("compact.merged", merged as u64);
        trace.end();
        self.counters.record_compaction();
        merged
    }

    /// Drains and routes every URI in `touched` (end-of-batch cleanup,
    /// also taken on the error path so the partially applied prefix is
    /// consistent with the cache).
    fn drain_touched(&mut self, touched: &[(String, u64)], trace: &mut TraceBuilder) {
        for (uri, old_fp) in touched {
            self.drain_delta(uri, trace);
            self.route_uri_delta(uri, *old_fp, trace);
        }
    }

    /// Outstanding delta-segment length of `uri` (0 for unknown URIs).
    fn delta_of(&self, uri: &str) -> usize {
        self.docs.get(uri).map_or(0, TypedDocument::delta_len)
    }

    /// The recorded guide fingerprint of `uri` (0 for unknown URIs — the
    /// only callers follow up with an operation that fails on them).
    fn fingerprint_of(&self, uri: &str) -> u64 {
        self.guide_hash.get(uri).copied().unwrap_or(0)
    }

    /// The current document generation of `uri`.
    fn gen_of(&self, uri: &str) -> u64 {
        self.doc_gen.get(uri).copied().unwrap_or(0)
    }

    /// Drains `uri`'s edit journal into one [`ViewDelta`] and routes it to
    /// the URI's cached views: maintainable artifacts survive the edit
    /// batch (re-keyed and restamped), the rest are dropped for recompute.
    /// Value-only batches (no structural touches, no new types) route
    /// nothing — no cached artifact depends on text content.
    fn route_uri_delta(&mut self, uri: &str, old_fp: u64, trace: &mut TraceBuilder) {
        let Some(td) = self.docs.get_mut(uri) else {
            return;
        };
        let d = td.take_delta();
        let new_fp = self.guide_hash.get(uri).copied().unwrap_or(old_fp);
        if d.is_empty() && old_fp == new_fp {
            return;
        }
        let gen = {
            let g = self.doc_gen.entry(uri.to_owned()).or_insert(0);
            *g += 1;
            *g
        };
        let td = &self.docs[uri];
        // Byte-key bounds over every touch's number at touch time, and the
        // post-drain arena slot bracket of the touches still alive.
        let mut key_range: Option<(Vec<u8>, Vec<u8>)> = None;
        let mut slot_range: Option<(usize, usize)> = None;
        for t in &d.touched {
            let key = EncodedPbn::encode(&t.pbn).as_bytes().to_vec();
            key_range = Some(match key_range.take() {
                None => (key.clone(), key),
                Some((lo, hi)) => (lo.min(key.clone()), hi.max(key)),
            });
            if let Some(slot) = td.pbn().arena().slot_of(t.id) {
                slot_range = Some(match slot_range.take() {
                    None => (slot, slot),
                    Some((lo, hi)) => (lo.min(slot), hi.max(slot)),
                });
            }
        }
        let delta = ViewDelta {
            uri: uri.to_owned(),
            old_fp,
            new_fp,
            gen,
            new_types: d.new_types,
            touched: d.touched,
            key_range,
            slot_range,
            overflowed: d.overflowed,
        };
        let out = self.cache.route_delta(&delta, td);
        trace.count("cache.maintained", out.maintained);
        trace.count("cache.recomputed", out.recomputed);
        trace.count("cache.fallback_evictions", out.fallback_evictions);
    }

    // ------------------------------------------------------------- run ---

    /// Evaluates one [`QueryRequest`] end to end. This is the blessed
    /// entry point; every legacy `eval*` method wraps it.
    pub fn run(&self, req: &QueryRequest) -> Result<QueryOutcome, FlwrError> {
        let mut trace = if req.trace {
            TraceBuilder::enabled("query")
        } else {
            TraceBuilder::disabled()
        };
        match self.run_inner(req, &mut trace) {
            Ok((document, nodes, stats)) => {
                self.counters.record_query(&stats, req.trace);
                Ok(QueryOutcome {
                    document,
                    nodes,
                    stats,
                    trace: trace.finish(),
                })
            }
            Err(e) => {
                self.counters.record_failure();
                Err(e)
            }
        }
    }

    /// Runs a request with tracing forced on and returns the rendered
    /// plan: stage spans, per-view cache provenance, chosen axis ranges
    /// (type-index and arena slot brackets) and operator counts.
    pub fn explain(&self, req: &QueryRequest) -> Result<Explain, FlwrError> {
        let traced = req.clone().with_trace(true);
        let out = self.run(&traced)?;
        // Invariant: tracing was forced on, so the outcome carries a
        // trace; the fallback is unreachable.
        let trace = out.trace.unwrap_or_default();
        Ok(Explain {
            stats: out.stats,
            trace,
        })
    }

    /// The stages shared by every request kind: parse → plan (resolve and
    /// open every source view, recording cache provenance) → exec.
    fn run_inner(
        &self,
        req: &QueryRequest,
        trace: &mut TraceBuilder,
    ) -> Result<(Document, Option<Vec<NodeId>>, QueryStats), FlwrError> {
        let t0 = Instant::now();
        let limits = req.limits.unwrap_or(self.limits);
        let exec = req.exec.unwrap_or(self.exec);
        let mut stats = QueryStats::default();
        trace.meta("kind", req.kind.label());

        // ----- parse -----
        trace.begin("parse");
        let tp = Instant::now();
        let mut flwr: Option<&FlwrQuery> = None;
        let parsed_flwr;
        let mut xpath: Option<XPath> = None;
        match &req.kind {
            QueryKind::Flwr(text) => {
                parsed_flwr = Some(parse_flwr(text)?);
                flwr = parsed_flwr.as_ref();
            }
            QueryKind::Parsed(q) => {
                trace.meta("cached", "pre-parsed");
                flwr = Some(q);
            }
            QueryKind::Path { path, .. } => {
                xpath = Some(parse_xpath(path)?);
            }
        }
        stats.parse_ns = elapsed_ns(tp);
        trace.end();

        // ----- plan: resolve origins, open views -----
        trace.begin("plan");
        let tplan = Instant::now();
        let origins: Vec<(String, Option<String>)> = match (&req.kind, flwr) {
            (QueryKind::Path { uri, spec, .. }, _) => vec![(uri.clone(), spec.clone())],
            (_, Some(q)) => flwr_origins(q)?,
            // Invariant: non-path kinds always parsed a FLWR query above.
            (_, None) => unreachable!("path requests carry an xpath"),
        };
        let axis = if trace.is_enabled() {
            Some(Arc::new(AxisCounters::new()))
        } else {
            None
        };
        let mut vdocs: Vec<Option<VirtualDocument<'_>>> = Vec::with_capacity(origins.len());
        let mut phys: Vec<Option<PhysicalDoc<'_>>> = Vec::with_capacity(origins.len());
        for (uri, spec) in &origins {
            match spec {
                Some(s) => {
                    let mut vd = self.open_view(uri, s, exec, trace, &mut stats.views)?;
                    if let Some(ax) = &axis {
                        vd.set_obs(Arc::clone(ax));
                    }
                    vdocs.push(Some(vd));
                    phys.push(None);
                }
                None => {
                    let td = self
                        .docs
                        .get(uri)
                        .ok_or_else(|| FlwrError::UnknownDocument(uri.clone()))?;
                    if trace.is_enabled() {
                        let mut s = Span::named("document");
                        s.meta.push(("uri".to_owned(), uri.clone()));
                        trace.child(s);
                    }
                    vdocs.push(None);
                    phys.push(Some(PhysicalDoc::new(td)));
                }
            }
        }
        stats.plan_ns = elapsed_ns(tplan);
        trace.end();

        // ----- exec -----
        trace.begin("exec");
        let te = Instant::now();
        let virt: Vec<Option<VirtualDoc<'_>>> = vdocs
            .iter()
            .map(|o| o.as_ref().map(VirtualDoc::new))
            .collect();
        let (document, nodes) = if let Some(p) = &xpath {
            // Invariant: path requests planned exactly one origin above.
            let doc: &dyn QueryDoc = match (&virt[0], &phys[0]) {
                (Some(v), _) => v,
                (None, Some(p)) => p,
                (None, None) => unreachable!("the single origin was opened"),
            };
            let ids = eval_xpath_limited(doc, p, limits)?;
            let mut out = Document::new("results");
            let root = out.create_root(RESULTS_ROOT);
            for &n in &ids {
                copy_node(doc, n, &mut out, root);
            }
            (out, Some(ids))
        } else {
            let mut entries: Vec<(String, Option<String>, &dyn QueryDoc)> =
                Vec::with_capacity(origins.len());
            for (i, (uri, spec)) in origins.iter().enumerate() {
                // Invariant: the plan loop pushed exactly one of
                // virt/phys per origin.
                let doc: &dyn QueryDoc = match (&virt[i], &phys[i]) {
                    (Some(v), _) => v,
                    (None, Some(p)) => p,
                    (None, None) => unreachable!("every origin is virtual or physical"),
                };
                entries.push((uri.clone(), spec.clone(), doc));
            }
            // Invariant: non-path kinds always carry a FLWR query.
            let q = match flwr {
                Some(q) => q,
                None => unreachable!("checked above"),
            };
            let out = eval_flwr_multi_limited(q, &DocSet::new(entries), limits)?;
            (out, None)
        };
        stats.exec_ns = elapsed_ns(te);
        stats.result_nodes = match &nodes {
            Some(ids) => ids.len() as u64,
            None => document
                .root()
                .map_or(0, |r| document.children(r).len() as u64),
        };
        if let Some(ax) = &axis {
            stats.axis = ax.snapshot();
        }
        if trace.is_enabled() {
            // Operator counters are always named, even at zero, so
            // EXPLAIN output has a stable vocabulary.
            trace.count("axis.range_scans", stats.axis.range_scans);
            trace.count("axis.slots_scanned", stats.axis.slots_scanned);
            trace.count("axis.exact_regions", stats.axis.exact_regions);
            trace.count("axis.filter_checks", stats.axis.filter_checks);
            trace.count("twig.seeks", stats.twig.seeks);
            trace.count("twig.gallop_steps", stats.twig.gallop_steps);
            trace.count("sjoin.comparisons", stats.sjoin.comparisons);
            trace.count("sjoin.containment_tests", stats.sjoin.containment_tests);
            trace.count("result.nodes", stats.result_nodes);
            for r in &stats.axis.ranges {
                let mut s = Span::named("arena-range-selection");
                s.meta.push(("context".to_owned(), r.context.clone()));
                s.meta.push(("target".to_owned(), r.target.clone()));
                s.meta.push(("pinned".to_owned(), r.pinned.to_string()));
                s.meta.push(("exact".to_owned(), r.exact.to_string()));
                s.meta.push((
                    "index".to_owned(),
                    format!("[{},{})", r.index_start, r.index_end),
                ));
                s.meta.push((
                    "arena".to_owned(),
                    format!("[{},{})", r.arena_start, r.arena_end),
                ));
                trace.child(s);
            }
        }
        trace.end();
        stats.total_ns = elapsed_ns(t0);
        Ok((document, nodes, stats))
    }

    /// Opens the virtual view `spec` of `uri`, going through the
    /// compiled-view cache when `exec` allows, recording one child span
    /// per artifact and its cache provenance.
    fn open_view<'a>(
        &'a self,
        uri: &str,
        spec: &str,
        exec: ExecOptions,
        trace: &mut TraceBuilder,
        views: &mut Vec<ViewProvenance>,
    ) -> Result<VirtualDocument<'a>, FlwrError> {
        let td = self
            .docs
            .get(uri)
            .ok_or_else(|| FlwrError::UnknownDocument(uri.to_owned()))?;
        // Invariant: `install` records a fingerprint for every registered
        // URI; recompute defensively if a future path skips it.
        let fp = self
            .guide_hash
            .get(uri)
            .copied()
            .unwrap_or_else(|| guide_fingerprint(td.guide()));
        trace.begin("view");
        trace.meta("uri", uri);
        trace.meta("spec", spec);
        let mut prov = ViewProvenance {
            uri: uri.to_owned(),
            spec: spec.to_owned(),
            ..ViewProvenance::default()
        };
        let mut vd = if exec.cache {
            let gen = self.gen_of(uri);
            let key = ViewKey::new(uri, fp, spec);
            trace.begin("guide-expansion");
            let (vdg, outcome) = cached_artifact(
                &self.cache,
                &self.cache.expansions,
                &key,
                gen,
                Artifact::Expansions,
                || VDataGuide::compile(spec, td.guide()).map(Arc::new),
            )?;
            prov.expansion = outcome;
            trace.meta("cache", prov.expansion.label());
            trace.end();

            trace.begin("level-map");
            let (levels, outcome) = cached_artifact(
                &self.cache,
                &self.cache.levels,
                &key,
                gen,
                Artifact::Levels,
                || Ok::<_, FlwrError>(Arc::new(LevelMap::build(&vdg, td.guide()))),
            )?;
            prov.levels = outcome;
            trace.meta("cache", prov.levels.label());
            trace.end();

            trace.begin("prefix-tables");
            let (tables, outcome) = cached_artifact(
                &self.cache,
                &self.cache.tables,
                &key,
                gen,
                Artifact::Tables,
                || Ok::<_, FlwrError>(Arc::new(PrefixTables::build(&vdg, &levels, td.guide()))),
            )?;
            prov.tables = outcome;
            trace.meta("cache", prov.tables.label());
            trace.end();

            trace.begin("type-index");
            let (index, outcome) = cached_artifact(
                &self.cache,
                &self.cache.indexes,
                &key,
                gen,
                Artifact::Indexes,
                || Ok::<_, FlwrError>(Arc::new(TypeIndex::build(td, &vdg))),
            )?;
            prov.indexes = outcome;
            trace.meta("cache", prov.indexes.label());
            trace.end();

            let mut vd =
                VirtualDocument::with_cached_parts(td, (*vdg).clone(), (*levels).clone(), index);
            vd.set_prefix_tables(tables);
            vd
        } else {
            // Cache bypassed: every artifact is computed fresh
            // (`ViewProvenance::default()` already says `Bypassed`).
            trace.begin("guide-expansion");
            trace.meta("cache", CacheOutcome::Bypassed.label());
            let vdg = VDataGuide::compile(spec, td.guide())?;
            trace.end();
            trace.begin("level-map");
            trace.meta("cache", CacheOutcome::Bypassed.label());
            let levels = LevelMap::build(&vdg, td.guide());
            trace.end();
            VirtualDocument::with_parts(td, vdg, levels)
        };
        vd.set_exec(exec);
        views.push(prov);
        trace.end(); // view
        Ok(vd)
    }

    /// Opens a virtual document for direct navigation, using (and filling)
    /// the compiled-view cache unless caching is disabled in the
    /// execution options. The returned view carries the engine's
    /// [`ExecOptions`].
    pub fn virtual_doc<'a>(
        &'a self,
        uri: &str,
        spec: &str,
    ) -> Result<VirtualDocument<'a>, FlwrError> {
        let mut trace = TraceBuilder::disabled();
        let mut views = Vec::new();
        self.open_view(uri, spec, self.exec, &mut trace, &mut views)
    }

    // --------------------------------------------------- statistics -----

    /// One consolidated statistics snapshot: compiled-view cache
    /// counters, storage/buffer counters merged over the attached
    /// stores, and cumulative query counters.
    ///
    /// The whole composite is read under a stable cache maintenance
    /// epoch (the same generation stamp `Stamped` entries carry): if an
    /// `apply` batch routes its delta while the snapshot is being
    /// assembled, the read retries, so the returned stats can never mix
    /// pre-batch cache state with post-batch counters.
    pub fn snapshot(&self) -> EngineSnapshot {
        loop {
            let epoch = self.cache.epoch();
            if epoch % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut storage = StorageStats::default();
            let mut buffers = BufferStats::default();
            for store in self.stores.values() {
                storage.merge(&store.stats());
                if let Some(b) = store.buffer_stats() {
                    buffers.merge(&b);
                }
            }
            let snap = EngineSnapshot {
                cache: self.cache.stats(),
                storage,
                buffers,
                queries: self.counters.snapshot(),
            };
            if self.cache.epoch() == epoch {
                return snap;
            }
        }
    }

    /// The cumulative engine counters as a Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        let snap = self.snapshot();
        let mut w = PromWriter::new();
        w.counter("vpbn_queries_total", "Queries attempted.");
        w.sample("vpbn_queries_total", &[], snap.queries.queries);
        w.counter(
            "vpbn_query_failures_total",
            "Queries that returned an error.",
        );
        w.sample("vpbn_query_failures_total", &[], snap.queries.failures);
        w.counter("vpbn_queries_traced_total", "Queries run with tracing on.");
        w.sample("vpbn_queries_traced_total", &[], snap.queries.traced);
        w.counter(
            "vpbn_query_stage_ns_total",
            "Cumulative nanoseconds per query stage.",
        );
        w.sample(
            "vpbn_query_stage_ns_total",
            &[("stage", "parse")],
            snap.queries.parse_ns,
        );
        w.sample(
            "vpbn_query_stage_ns_total",
            &[("stage", "plan")],
            snap.queries.plan_ns,
        );
        w.sample(
            "vpbn_query_stage_ns_total",
            &[("stage", "exec")],
            snap.queries.exec_ns,
        );
        w.sample(
            "vpbn_query_stage_ns_total",
            &[("stage", "total")],
            snap.queries.total_ns,
        );
        w.counter(
            "vpbn_query_result_nodes_total",
            "Result nodes produced across all queries.",
        );
        w.sample(
            "vpbn_query_result_nodes_total",
            &[],
            snap.queries.result_nodes,
        );
        w.counter("vpbn_edits_total", "Edits applied successfully.");
        w.sample("vpbn_edits_total", &[], snap.queries.edits);
        w.counter("vpbn_edit_failures_total", "Edits rejected with an error.");
        w.sample("vpbn_edit_failures_total", &[], snap.queries.edit_failures);
        w.counter(
            "vpbn_replayed_edits_total",
            "Edits re-applied from the write-ahead log by recovery.",
        );
        w.sample(
            "vpbn_replayed_edits_total",
            &[],
            snap.queries.replayed_edits,
        );
        w.counter(
            "vpbn_compactions_total",
            "Delta-segment compactions (automatic and explicit).",
        );
        w.sample("vpbn_compactions_total", &[], snap.queries.compactions);
        let artifacts = [
            ("expansions", &snap.cache.expansions),
            ("levels", &snap.cache.levels),
            ("tables", &snap.cache.tables),
            ("indexes", &snap.cache.indexes),
        ];
        // One family at a time: the exposition format wants every sample
        // of a metric grouped directly under its HELP/TYPE lines.
        w.counter("vpbn_cache_hits_total", "Compiled-view cache hits.");
        for (artifact, c) in artifacts {
            w.sample("vpbn_cache_hits_total", &[("artifact", artifact)], c.hits);
        }
        w.counter("vpbn_cache_misses_total", "Compiled-view cache misses.");
        for (artifact, c) in artifacts {
            w.sample(
                "vpbn_cache_misses_total",
                &[("artifact", artifact)],
                c.misses,
            );
        }
        w.gauge("vpbn_cache_entries", "Live compiled-view cache entries.");
        for (artifact, c) in artifacts {
            w.sample(
                "vpbn_cache_entries",
                &[("artifact", artifact)],
                c.entries as u64,
            );
        }
        w.counter(
            "vh_cache_maintained_total",
            "Cached view artifacts kept alive across an edit batch by delta maintenance.",
        );
        w.sample("vh_cache_maintained_total", &[], snap.cache.maintained);
        w.counter(
            "vh_cache_recomputed_total",
            "Cached view artifacts an edit delta invalidated for recompute.",
        );
        w.sample("vh_cache_recomputed_total", &[], snap.cache.recomputed);
        w.counter(
            "vh_cache_fallback_evictions_total",
            "Cache entries dropped by the maintenance hard fallback (overflowed journal, \
             explicit compaction, or the cost model).",
        );
        w.sample(
            "vh_cache_fallback_evictions_total",
            &[],
            snap.cache.fallback_evictions,
        );
        w.gauge(
            "vpbn_storage_resident_bytes",
            "Resident bytes across attached stores.",
        );
        w.sample(
            "vpbn_storage_resident_bytes",
            &[],
            snap.storage.total_bytes() as u64,
        );
        w.counter("vpbn_storage_pages_read_total", "Pages read.");
        w.sample(
            "vpbn_storage_pages_read_total",
            &[],
            snap.storage.pages_read,
        );
        w.counter("vpbn_storage_read_retries_total", "Page read retries.");
        w.sample(
            "vpbn_storage_read_retries_total",
            &[],
            snap.storage.read_retries,
        );
        w.counter(
            "vpbn_storage_checksum_failures_total",
            "Pages delivered with a CRC mismatch.",
        );
        w.sample(
            "vpbn_storage_checksum_failures_total",
            &[],
            snap.storage.checksum_failures,
        );
        w.counter("vpbn_buffer_hits_total", "Buffer-pool hits.");
        w.sample("vpbn_buffer_hits_total", &[], snap.buffers.hits);
        w.counter("vpbn_buffer_misses_total", "Buffer-pool misses.");
        w.sample("vpbn_buffer_misses_total", &[], snap.buffers.misses);
        w.finish()
    }

    /// Hit/miss/eviction counters of the compiled-view cache.
    ///
    /// Deprecated: prefer [`Engine::snapshot`], which reports these
    /// alongside storage, buffer and query counters. Compiled only with
    /// the off-by-default `legacy-api` feature.
    #[cfg(feature = "legacy-api")]
    #[doc(hidden)]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of compiled views currently cached (expansion entries).
    ///
    /// Deprecated: prefer [`Engine::snapshot`]
    /// (`snapshot().cache.expansions.entries`). Compiled only with the
    /// off-by-default `legacy-api` feature.
    #[cfg(feature = "legacy-api")]
    #[doc(hidden)]
    pub fn cached_views(&self) -> usize {
        self.cache.expansions.len()
    }

    // ------------------------------------------------ legacy wrappers ---
    // The pre-v1 entry points, kept only behind the off-by-default
    // `legacy-api` cargo feature. New code goes through `Engine::run`.

    /// Evaluates a FLWR query, returning the result document (rooted at
    /// `<results>`).
    ///
    /// Deprecated: prefer [`Engine::run`] with [`QueryRequest::flwr`],
    /// which also returns per-query statistics.
    #[cfg(feature = "legacy-api")]
    pub fn eval(&self, query: &str) -> Result<Document, FlwrError> {
        Ok(self.run(&QueryRequest::flwr(query))?.document)
    }

    /// Evaluates an already-parsed FLWR query. Queries may draw from any
    /// number of registered documents and virtual views; the first
    /// `doc()`/`virtualDoc()` origin is the primary document for
    /// variable-free expressions.
    ///
    /// Deprecated: prefer [`Engine::run`] with [`QueryRequest::parsed`].
    #[cfg(feature = "legacy-api")]
    pub fn eval_parsed(&self, q: &FlwrQuery) -> Result<Document, FlwrError> {
        Ok(self.run(&QueryRequest::parsed(q.clone()))?.document)
    }

    /// Evaluates an XPath over the physical document registered at `uri`.
    ///
    /// Deprecated: prefer [`Engine::run`] with [`QueryRequest::path`].
    #[cfg(feature = "legacy-api")]
    pub fn eval_path(&self, uri: &str, path: &str) -> Result<Vec<NodeId>, FlwrError> {
        Ok(self
            .run(&QueryRequest::path(uri, path))?
            .nodes
            .unwrap_or_default())
    }

    /// Evaluates an XPath over a virtual view of the document at `uri`.
    ///
    /// Deprecated: prefer [`Engine::run`] with
    /// [`QueryRequest::virtual_path`].
    #[cfg(feature = "legacy-api")]
    pub fn eval_virtual_path(
        &self,
        uri: &str,
        spec: &str,
        path: &str,
    ) -> Result<Vec<NodeId>, FlwrError> {
        Ok(self
            .run(&QueryRequest::virtual_path(uri, spec, path))?
            .nodes
            .unwrap_or_default())
    }

    /// Convenience: the result of `eval` serialized compactly.
    ///
    /// Deprecated: prefer [`Engine::run`] +
    /// [`QueryOutcome::to_string_compact`].
    #[cfg(feature = "legacy-api")]
    pub fn eval_to_string(&self, query: &str) -> Result<String, FlwrError> {
        Ok(self.run(&QueryRequest::flwr(query))?.to_string_compact())
    }
}

/// Distinct `doc()`/`virtualDoc()` origins of a FLWR query, in clause
/// order.
fn flwr_origins(q: &FlwrQuery) -> Result<Vec<(String, Option<String>)>, FlwrError> {
    let mut origins: Vec<(String, Option<String>)> = Vec::new();
    for c in &q.clauses {
        let origin = match c {
            Clause::For(_, s) | Clause::Let(_, s) => &s.origin,
            Clause::Where(_) | Clause::OrderBy(_) => continue,
        };
        let key = match origin {
            Origin::Doc(uri) => (uri.clone(), None),
            Origin::VirtualDoc(uri, spec) => (uri.clone(), Some(spec.clone())),
            Origin::Var(_) => continue,
        };
        if !origins.contains(&key) {
            origins.push(key);
        }
    }
    if origins.is_empty() {
        return Err(FlwrError::Unsupported(
            "query has no doc()/virtualDoc() source".into(),
        ));
    }
    Ok(origins)
}

/// Looks up one compiled-view artifact in its cache map. A present entry
/// is served only when its generation stamp matches the document's
/// current generation — the second staleness guard behind the fingerprint
/// in the key — and reports whether delta maintenance (vs. a fresh
/// compute) last produced it. A miss (or a stale entry, dropped) computes
/// via `build`, feeding the observed rebuild time into the cache's
/// maintain-vs-recompute cost model.
fn cached_artifact<T, E>(
    cache: &ExecCache,
    map: &ShardedLru<ViewKey, Stamped<Arc<T>>>,
    key: &ViewKey,
    gen: u64,
    artifact: Artifact,
    build: impl FnOnce() -> Result<Arc<T>, E>,
) -> Result<(Arc<T>, CacheOutcome), E> {
    match map.get(key) {
        Some(s) if s.gen == gen => {
            let outcome = if s.maintained {
                CacheOutcome::Maintained
            } else {
                CacheOutcome::Hit
            };
            return Ok((s.value, outcome));
        }
        Some(_) => {
            // An edit committed without routing this entry; never serve it.
            map.remove(key);
        }
        None => {}
    }
    let t0 = Instant::now();
    let value = build()?;
    cache.note_rebuild(artifact, elapsed_ns(t0));
    map.insert(key.clone(), Stamped::fresh(gen, value.clone()));
    Ok((value, CacheOutcome::Computed))
}

/// Nanoseconds since `t`, saturating into `u64`.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs a query through a transient engine holding a single document —
/// a convenience used by examples and tests.
pub fn query_document(doc: Document, query: &str) -> Result<Document, FlwrError> {
    let mut e = Engine::new();
    e.register(doc);
    Ok(e.run(&QueryRequest::flwr(query))?.document)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_xml::builder::paper_figure2;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register(paper_figure2());
        e
    }

    /// `run()`-backed spellings of the retired `eval*` wrappers: the
    /// tests keep their shorthand while exercising only the v1
    /// `QueryRequest` surface, so they compile with `legacy-api` on or
    /// off. (With the feature on, the inherent wrappers shadow these —
    /// both roads reach `Engine::run`.)
    #[cfg_attr(feature = "legacy-api", allow(dead_code))]
    trait RunExt {
        fn eval(&self, query: &str) -> Result<Document, FlwrError>;
        fn eval_to_string(&self, query: &str) -> Result<String, FlwrError>;
        fn eval_path(&self, uri: &str, path: &str) -> Result<Vec<NodeId>, FlwrError>;
        fn eval_virtual_path(
            &self,
            uri: &str,
            spec: &str,
            path: &str,
        ) -> Result<Vec<NodeId>, FlwrError>;
        fn cached_views(&self) -> usize;
    }

    #[cfg_attr(feature = "legacy-api", allow(dead_code))]
    impl RunExt for Engine {
        fn eval(&self, query: &str) -> Result<Document, FlwrError> {
            Ok(self.run(&QueryRequest::flwr(query))?.document)
        }
        fn eval_to_string(&self, query: &str) -> Result<String, FlwrError> {
            Ok(self.run(&QueryRequest::flwr(query))?.to_string_compact())
        }
        fn eval_path(&self, uri: &str, path: &str) -> Result<Vec<NodeId>, FlwrError> {
            Ok(self
                .run(&QueryRequest::path(uri, path))?
                .nodes
                .unwrap_or_default())
        }
        fn eval_virtual_path(
            &self,
            uri: &str,
            spec: &str,
            path: &str,
        ) -> Result<Vec<NodeId>, FlwrError> {
            Ok(self
                .run(&QueryRequest::virtual_path(uri, spec, path))?
                .nodes
                .unwrap_or_default())
        }
        fn cached_views(&self) -> usize {
            self.snapshot().cache.expansions.entries
        }
    }

    #[test]
    fn builder_and_with_chain_agree() {
        let req = QueryRequest::builder(QueryKind::Path {
            uri: "book.xml".into(),
            spec: Some("title { author { name } }".into()),
            path: "//title".into(),
        })
        .limits(Limits::default())
        .exec(ExecOptions::default())
        .trace(true)
        .build();
        let chained =
            QueryRequest::virtual_path("book.xml", "title { author { name } }", "//title")
                .with_limits(Limits::default())
                .with_exec(ExecOptions::default())
                .with_trace(true);
        assert_eq!(req, chained);
        assert_eq!(req.kind().label(), "virtual-path");
        assert!(req.trace_enabled());
    }

    const RHONDA: &str = r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
           return <result><title>{$t/text()}</title>
                          <count>{count($t/author)}</count></result>"#;

    #[test]
    fn rhondas_figure6_query_end_to_end() {
        // The headline query of the paper: Rhonda's count over Sam's
        // virtual transformation, via virtualDoc.
        let e = engine();
        let got = e.eval_to_string(RHONDA).must();
        assert_eq!(
            got,
            "<results>\
             <result><title>X</title><count>1</count></result>\
             <result><title>Y</title><count>1</count></result>\
             </results>"
        );
    }

    #[test]
    fn rhondas_nested_pipeline_matches_virtualdoc() {
        // Figure 4's alternative: materialize Sam's output, re-register it,
        // run Rhonda's query on the materialized document. Both roads must
        // agree.
        let mut e = engine();
        // Sam's query (Figure 1).
        let sam = e
            .eval(
                r#"for $t in doc("book.xml")//book/title
                   let $a := $t/../author
                   return <title>{$t/text()}{$a}</title>"#,
            )
            .must();
        e.register(sam); // registered under uri "results"
        let nested = e
            .eval_to_string(
                r#"for $t in doc("results")//title
                   return <result><title>{$t/text()}</title>
                                  <count>{count($t/author)}</count></result>"#,
            )
            .must();
        let virtual_ = e.eval_to_string(RHONDA).must();
        assert_eq!(nested, virtual_);
    }

    #[test]
    fn physical_and_virtual_path_evaluation() {
        let e = engine();
        assert_eq!(e.eval_path("book.xml", "//book").must().len(), 2);
        assert_eq!(
            e.eval_virtual_path("book.xml", "title { author { name } }", "//title/author")
                .must()
                .len(),
            2
        );
    }

    #[test]
    fn unknown_documents_are_reported() {
        let e = engine();
        assert!(matches!(
            e.eval(r#"for $t in doc("nope.xml")//x return <y/>"#),
            Err(FlwrError::UnknownDocument(_))
        ));
        assert!(e.eval_path("nope", "//x").is_err());
    }

    #[test]
    fn cross_document_joins_work() {
        let mut e = engine();
        e.register_xml(
            "prices.xml",
            "<prices><p t='X'>10</p><p t='Y'>25</p></prices>",
        )
        .must();
        // Join books with their prices by title: a genuine two-document
        // pipeline. Each expression stays within one document.
        let got = e
            .eval_to_string(
                r#"for $b in doc("book.xml")//book
                   for $p in doc("prices.xml")//p
                   where $b/title = $p/@t
                   return <row><t>{$b/title/text()}</t><c>{$p/text()}</c></row>"#,
            )
            .must();
        assert_eq!(
            got,
            "<results><row><t>X</t><c>10</c></row><row><t>Y</t><c>25</c></row></results>"
        );
    }

    #[test]
    fn physical_and_virtual_views_mix_in_one_query() {
        let e = engine();
        // $t ranges over the virtual view, $b over the physical document;
        // the join key crosses the two.
        let got = e
            .eval_to_string(
                r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   for $b in doc("book.xml")//book
                   where $b/title = $t/text()
                   return <m><v>{count($t/author)}</v><p>{count($b/author)}</p></m>"#,
            )
            .must();
        assert_eq!(
            got,
            "<results><m><v>1</v><p>1</p></m><m><v>1</v><p>1</p></m></results>"
        );
    }

    #[test]
    fn cross_document_value_functions_decompose() {
        let mut e = engine();
        e.register_xml("other.xml", "<o><x>1</x></o>").must();
        // concat() across documents works via value-level decomposition.
        let got = e
            .eval_to_string(
                r#"for $a in doc("book.xml")//book
                   for $b in doc("other.xml")//o
                   return <x>{concat($a/title, $b/x)}</x>"#,
            )
            .must();
        assert_eq!(got, "<results><x>X1</x><x>Y1</x></results>");
        // A node-set function over a cross-document union cannot be
        // decomposed: clean error, not a panic.
        let err = e.eval(
            r#"for $a in doc("book.xml")//book
               for $b in doc("other.xml")//o
               return <x>{count($a/title | $b/x)}</x>"#,
        );
        assert!(matches!(err, Err(FlwrError::Unsupported(_))), "{err:?}");
    }

    #[test]
    fn compiled_views_are_cached_and_invalidated() {
        let mut e = engine();
        assert_eq!(e.cached_views(), 0);
        let q = r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   return <t>{$t/text()}</t>"#;
        let first = e.eval_to_string(q).must();
        assert_eq!(e.cached_views(), 1);
        let second = e.eval_to_string(q).must();
        assert_eq!(first, second);
        assert_eq!(e.cached_views(), 1, "second run hits the cache");
        // Another spec adds an entry.
        e.eval_virtual_path("book.xml", "data { ** }", "//book")
            .must();
        assert_eq!(e.cached_views(), 2);
        // Re-registering the document invalidates its views.
        e.register(paper_figure2());
        assert_eq!(e.cached_views(), 0);
    }

    #[test]
    fn engine_limits_bound_queries() {
        let mut e = engine();
        e.set_limits(Limits {
            max_result: 1,
            ..Limits::default()
        });
        let q = r#"for $b in doc("book.xml")//book return <t>x</t>"#;
        let err = e.eval(q);
        assert!(
            matches!(err, Err(FlwrError::ResourceExhausted { .. })),
            "{err:?}"
        );
        e.set_limits(Limits::default());
        assert!(e.eval(q).is_ok());
    }

    #[test]
    fn query_document_convenience() {
        let out = query_document(
            paper_figure2(),
            r#"for $b in doc("book.xml")//book return <t>{$b/title/text()}</t>"#,
        )
        .must();
        assert_eq!(
            vh_xml::serialize(&out, vh_xml::SerializeOptions::compact()),
            "<results><t>X</t><t>Y</t></results>"
        );
    }

    // ---------------------------------------------- request API tests ---

    #[test]
    fn run_without_trace_returns_stats_but_no_trace() {
        let e = engine();
        let out = e.run(&QueryRequest::flwr(RHONDA)).must();
        assert!(out.trace.is_none());
        assert_eq!(out.stats.result_nodes, 2);
        assert!(out.stats.stage_ns() <= out.stats.total_ns);
        assert_eq!(out.stats.views.len(), 1);
        assert_eq!(out.stats.views[0].uri, "book.xml");
        // Untraced queries do not pay for axis counters.
        assert_eq!(out.stats.axis.range_scans, 0);
    }

    #[test]
    fn traced_run_collects_spans_and_counters() {
        let e = engine();
        let out = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        let trace = out.trace.must();
        assert_eq!(trace.root.name, "query");
        for stage in ["parse", "plan", "exec", "view", "guide-expansion"] {
            assert!(trace.root.find(stage).is_some(), "missing span {stage}");
        }
        let exec = trace.root.find("exec").must();
        assert!(exec.counter("axis.range_scans").must() > 0);
        assert!(exec.find("arena-range-selection").is_some());
        assert!(out.stats.axis.range_scans > 0);
        assert!(!out.stats.axis.ranges.is_empty());
        let r = &out.stats.axis.ranges[0];
        assert!(r.index_end >= r.index_start);
        assert!(r.arena_end >= r.arena_start);
    }

    #[test]
    fn provenance_goes_computed_then_hit() {
        let e = engine();
        let cold = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        let v = &cold.stats.views[0];
        assert_eq!(v.expansion, CacheOutcome::Computed);
        assert_eq!(v.indexes, CacheOutcome::Computed);
        let warm = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        let v = &warm.stats.views[0];
        assert_eq!(v.expansion, CacheOutcome::Hit);
        assert_eq!(v.levels, CacheOutcome::Hit);
        assert_eq!(v.tables, CacheOutcome::Hit);
        assert_eq!(v.indexes, CacheOutcome::Hit);
    }

    #[test]
    fn cache_bypass_reports_bypassed_provenance() {
        let e = engine();
        let req = QueryRequest::flwr(RHONDA)
            .with_trace(true)
            .with_exec(ExecOptions {
                cache: false,
                ..ExecOptions::default()
            });
        let out = e.run(&req).must();
        assert_eq!(out.stats.views[0].expansion, CacheOutcome::Bypassed);
        assert_eq!(e.cached_views(), 0, "bypass must not fill the cache");
    }

    #[test]
    fn path_requests_fill_nodes_and_document() {
        let e = engine();
        let out = e.run(&QueryRequest::path("book.xml", "//book")).must();
        assert_eq!(out.nodes.as_ref().must().len(), 2);
        assert_eq!(out.stats.result_nodes, 2);
        let s = out.to_string_compact();
        assert!(s.starts_with("<results><book>"), "{s}");
        let out = e
            .run(&QueryRequest::virtual_path(
                "book.xml",
                "title { author { name } }",
                "//title/author",
            ))
            .must();
        assert_eq!(out.nodes.as_ref().must().len(), 2);
        assert!(out.to_string_compact().contains("<author>"));
    }

    #[test]
    fn per_request_limits_override_engine_limits() {
        let e = engine();
        let req = QueryRequest::flwr(r#"for $b in doc("book.xml")//book return <t>x</t>"#)
            .with_limits(Limits {
                max_result: 1,
                ..Limits::default()
            });
        assert!(matches!(
            e.run(&req),
            Err(FlwrError::ResourceExhausted { .. })
        ));
        // The engine's own limits were not touched.
        assert!(e
            .eval(r#"for $b in doc("book.xml")//book return <t>x</t>"#)
            .is_ok());
    }

    #[test]
    fn parsed_requests_skip_the_parser() {
        let e = engine();
        let q = crate::flwr::parse::parse_flwr(RHONDA).must();
        let out = e.run(&QueryRequest::parsed(q).with_trace(true)).must();
        let trace = out.trace.must();
        assert_eq!(
            trace.root.find("parse").must().meta_value("cached"),
            Some("pre-parsed")
        );
    }

    #[test]
    fn explain_renders_text_and_json() {
        let e = engine();
        let ex = e.explain(&QueryRequest::flwr(RHONDA)).must();
        let text = ex.text();
        for needle in [
            "parse",
            "guide-expansion",
            "arena-range-selection",
            "arena=[",
            "twig.seeks",
            "sjoin.comparisons",
            "cache=",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The JSON exporter round-trips the same trace.
        let back = QueryTrace::from_json(&ex.json()).must();
        assert_eq!(back, ex.trace);
    }

    #[test]
    fn snapshot_and_metrics_cover_all_sections() {
        let mut e = engine();
        e.run(&QueryRequest::flwr(RHONDA)).must();
        let _ = e.run(&QueryRequest::flwr("not a query"));
        e.attach_store("book.xml").must();
        let snap = e.snapshot();
        assert_eq!(snap.queries.queries, 2);
        assert_eq!(snap.queries.failures, 1);
        assert!(snap.queries.total_ns > 0);
        assert!(snap.cache.expansions.entries > 0);
        assert!(snap.storage.total_bytes() > 0);
        let text = e.metrics_text();
        for needle in [
            "vpbn_queries_total 2",
            "vpbn_query_failures_total 1",
            "vpbn_query_stage_ns_total{stage=\"exec\"}",
            "vpbn_cache_hits_total{artifact=\"expansions\"}",
            "vh_cache_maintained_total 0",
            "vh_cache_recomputed_total 0",
            "vh_cache_fallback_evictions_total 0",
            "vpbn_storage_resident_bytes",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(e.attach_store("nope.xml").is_err());
    }

    #[test]
    fn failed_requests_leave_no_partial_outcome() {
        let e = engine();
        assert!(e
            .run(&QueryRequest::flwr("for $x in").with_trace(true))
            .is_err());
        assert!(e.run(&QueryRequest::path("book.xml", "//[")).is_err());
        let snap = e.snapshot();
        assert_eq!(snap.queries.failures, 2);
    }

    // ----------------------------------------------------------- edits ---

    /// The registered document at `uri`, serialized compactly — the
    /// equality oracle for edit and recovery tests.
    fn doc_text(e: &Engine, uri: &str) -> String {
        vh_xml::serialize(
            e.document(uri).must().doc(),
            vh_xml::SerializeOptions::compact(),
        )
    }

    fn insert_book(title: &str, pos: usize) -> Edit {
        Edit::InsertSubtree {
            uri: "book.xml".into(),
            parent: "1".into(),
            pos,
            xml: format!("<book><title>{title}</title><author><name>Q</name></author></book>"),
        }
    }

    #[test]
    fn applied_edits_are_queryable_and_acknowledged_in_order() {
        let mut e = engine();
        let r1 = e.apply(insert_book("Z", 2)).must();
        assert_eq!(r1.seq, 1);
        assert_eq!(r1.kind, "insert-subtree");
        assert_eq!(r1.nodes_touched, 6); // book+title+text+author+name+text
        assert!(r1.compacted > 0, "single applies drain the delta eagerly");
        let r2 = e
            .apply(Edit::SetValue {
                uri: "book.xml".into(),
                target: "1.3.1".into(),
                value: "Z2".into(),
            })
            .must();
        assert_eq!(r2.seq, 2);
        assert_eq!(e.applied_seq(), 2);
        // Physical, virtual and twig paths all see the new state.
        assert_eq!(e.eval_path("book.xml", "//book").must().len(), 3);
        let got = e.eval_to_string(RHONDA).must();
        assert!(got.contains("<title>Z2</title>"), "{got}");
        let snap = e.snapshot();
        assert_eq!(snap.queries.edits, 2);
        assert_eq!(snap.queries.edit_failures, 0);
        // The insert drained its delta; the in-place text rewrite touched
        // no numbering, so it had nothing to compact.
        assert_eq!(snap.queries.compactions, 1);
        assert_eq!(r2.compacted, 0);
    }

    #[test]
    fn edits_invalidate_cached_views() {
        let mut e = engine();
        // Warm every view artifact, then edit, then re-run: the cached
        // artifacts were built pre-edit and must not serve the second run.
        let before = e.eval_to_string(RHONDA).must();
        assert_eq!(before.matches("<result>").count(), 2);
        e.apply(insert_book("W", 0)).must();
        let after = e.eval_to_string(RHONDA).must();
        assert_eq!(after.matches("<result>").count(), 3);
        assert!(after.contains("<title>W</title>"), "{after}");
    }

    /// A policy under which splicing is estimated free, so acceptance is
    /// deterministic: the default policy's verdict on a two-book document
    /// hinges on the observed rebuild time, which machine noise can push
    /// either side of the splice estimate. The rejection side is pinned
    /// by `cost_model_rejection_counts_a_fallback_eviction`; the real
    /// crossover is priced by `exp_update` (UPD-d).
    fn free_splice() -> vh_core::cache::MaintenancePolicy {
        vh_core::cache::MaintenancePolicy {
            clone_node_ns: 0,
            splice_op_ns: 0,
            ..Default::default()
        }
    }

    #[test]
    fn edit_deltas_maintain_cached_views() {
        let mut e = engine();
        e.set_maintenance_policy(free_splice());
        // Warm every artifact, then insert a book whose types are all
        // already interned: the whole view must survive via maintenance.
        e.eval_to_string(RHONDA).must();
        e.apply(insert_book("W", 0)).must();
        let snap = e.snapshot();
        assert_eq!(
            snap.cache.maintained, 4,
            "expansion, levels, tables and index all kept: {snap:?}"
        );
        assert_eq!(snap.cache.recomputed, 0);
        assert_eq!(snap.cache.fallback_evictions, 0);
        let warm = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        let v = &warm.stats.views[0];
        assert_eq!(v.expansion, CacheOutcome::Maintained);
        assert_eq!(v.levels, CacheOutcome::Maintained);
        assert_eq!(v.tables, CacheOutcome::Maintained);
        assert_eq!(v.indexes, CacheOutcome::Maintained);
        assert_eq!(
            warm.to_string_compact().matches("<result>").count(),
            3,
            "maintained index must serve the inserted book"
        );
    }

    #[test]
    fn new_type_edits_recompute_affected_views() {
        let mut e = engine();
        e.eval_to_string(RHONDA).must();
        // A fresh type under the *visible* title: conservative recompute.
        e.apply(Edit::InsertSubtree {
            uri: "book.xml".into(),
            parent: "1.1.1".into(),
            pos: 0,
            xml: "<subtitle>s</subtitle>".into(),
        })
        .must();
        let snap = e.snapshot();
        assert_eq!(snap.cache.maintained, 0);
        assert!(snap.cache.recomputed > 0, "{snap:?}");
        let warm = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        assert_eq!(warm.stats.views[0].indexes, CacheOutcome::Computed);
        assert_eq!(warm.to_string_compact().matches("<result>").count(), 2);
    }

    #[test]
    fn value_only_edits_leave_the_cache_untouched() {
        let mut e = engine();
        e.eval_to_string(RHONDA).must();
        e.apply(Edit::SetValue {
            uri: "book.xml".into(),
            target: "1.1.1".into(),
            value: "X2".into(),
        })
        .must();
        let snap = e.snapshot();
        assert_eq!((snap.cache.maintained, snap.cache.recomputed), (0, 0));
        // No artifact depends on text, so the entries are plain hits —
        // not even restamped as maintained.
        let warm = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        assert_eq!(warm.stats.views[0].indexes, CacheOutcome::Hit);
        assert!(warm.to_string_compact().contains("<title>X2</title>"));
    }

    #[test]
    fn apply_all_routes_one_merged_delta_per_uri() {
        let mut e = engine();
        e.set_maintenance_policy(free_splice());
        e.eval_to_string(RHONDA).must();
        // Three edits, one batch: the cache sees ONE merged delta (4
        // artifacts maintained once), not one route per edit — the former
        // double-invalidation (per edit + batch end) would triple it.
        e.apply_all(vec![
            insert_book("A", 0),
            insert_book("B", 1),
            insert_book("C", 2),
        ])
        .must();
        let snap = e.snapshot();
        assert_eq!(snap.cache.maintained, 4, "{snap:?}");
        let after = e.eval_to_string(RHONDA).must();
        assert_eq!(after.matches("<result>").count(), 5);
    }

    #[test]
    fn cost_model_rejection_counts_a_fallback_eviction() {
        let mut e = engine();
        // A policy that makes every splice look infinitely expensive: the
        // per-node index must fall back to eviction instead.
        e.set_maintenance_policy(vh_core::cache::MaintenancePolicy {
            splice_op_ns: u64::MAX / 1024,
            ..vh_core::cache::MaintenancePolicy::default()
        });
        e.eval_to_string(RHONDA).must();
        e.apply(insert_book("W", 0)).must();
        let snap = e.snapshot();
        assert_eq!(snap.cache.fallback_evictions, 1, "{snap:?}");
        assert_eq!(snap.cache.maintained, 3, "guide-pure artifacts kept");
        let warm = e.run(&QueryRequest::flwr(RHONDA).with_trace(true)).must();
        assert_eq!(warm.stats.views[0].indexes, CacheOutcome::Computed);
        assert_eq!(warm.stats.views[0].tables, CacheOutcome::Maintained);
        assert_eq!(warm.to_string_compact().matches("<result>").count(), 3);
    }

    #[test]
    fn rejected_edits_change_nothing_and_log_nothing() {
        let mut e = engine();
        let before = doc_text(&e, "book.xml");
        let wal_len = e.wal_bytes().len();
        let bad = Edit::DeleteSubtree {
            uri: "book.xml".into(),
            target: "1.9.9".into(),
        };
        let err = e.apply(bad).unwrap_err();
        assert_eq!(err.code(), "QUERY_EDIT");
        assert!(matches!(
            e.apply(Edit::SetValue {
                uri: "nope.xml".into(),
                target: "1".into(),
                value: "x".into(),
            }),
            Err(FlwrError::UnknownDocument(_))
        ));
        assert_eq!(doc_text(&e, "book.xml"), before);
        assert_eq!(e.wal_bytes().len(), wal_len, "rejected edits never log");
        assert_eq!(e.snapshot().queries.edit_failures, 2);
    }

    #[test]
    fn recovery_replays_the_log_onto_a_fresh_base() {
        let mut live = engine();
        live.apply(insert_book("Z", 2)).must();
        live.apply(Edit::MoveSubtree {
            uri: "book.xml".into(),
            target: "1.3".into(),
            parent: "1".into(),
            pos: 0,
        })
        .must();
        live.apply(Edit::DeleteSubtree {
            uri: "book.xml".into(),
            target: "1.2".into(),
        })
        .must();
        let wal: Vec<u8> = live.wal_bytes().to_vec();

        let mut restarted = engine();
        let rec = restarted.recover(&wal).must();
        assert!(rec.is_clean(), "{}", rec.to_json());
        assert_eq!(rec.replayed, 3);
        assert_eq!(rec.skipped, 0);
        assert_eq!(
            doc_text(&restarted, "book.xml"),
            doc_text(&live, "book.xml")
        );
        assert_eq!(restarted.applied_seq(), 3);
        // Replay is idempotent: recovering the same log again is a no-op.
        let again = restarted.recover(&wal).must();
        assert_eq!(again.replayed, 0);
        assert_eq!(again.skipped, 3);
        assert_eq!(
            doc_text(&restarted, "book.xml"),
            doc_text(&live, "book.xml")
        );
        // The restarted engine continues the sequence where the log ended.
        let r = restarted.apply(insert_book("post", 0)).must();
        assert_eq!(r.seq, 4);
    }

    #[test]
    fn recovery_reports_undecodable_records_without_applying_them() {
        let mut live = engine();
        live.apply(insert_book("Z", 2)).must();
        let wal = live.wal_bytes().to_vec();
        // Graft a frame whose payload passes the CRC but is not an edit.
        let mut sneaky = EditWal::from_bytes(wal).must().0;
        sneaky.append(&[0xEE, 0xFF]);
        sneaky.sync();
        let mut restarted = engine();
        let rec = restarted.recover(sneaky.as_bytes()).must();
        assert!(rec.wal.is_clean(), "frames themselves are intact");
        assert!(!rec.is_clean());
        assert_eq!(rec.replayed, 1);
        assert_eq!(rec.failed.len(), 1);
        assert_eq!(rec.failed[0].seq, 2);
        assert!(rec.failed[0].reason.contains("EDIT_PAYLOAD"));
        // The valid prefix was still applied.
        assert_eq!(restarted.eval_path("book.xml", "//book").must().len(), 3);
    }

    #[test]
    fn recovery_quarantines_torn_tails() {
        let mut live = engine();
        live.apply(insert_book("Z", 2)).must();
        live.apply(insert_book("Z2", 3)).must();
        let wal = live.wal_bytes().to_vec();
        // Tear the last frame mid-payload, as a crash during a write would.
        let torn = &wal[..wal.len() - 3];
        let mut restarted = engine();
        let rec = restarted.recover(torn).must();
        assert!(!rec.wal.is_clean());
        assert_eq!(rec.replayed, 1, "the intact prefix is applied");
        assert!(rec.failed.is_empty());
        assert_eq!(restarted.eval_path("book.xml", "//book").must().len(), 3);
        // New edits append after the quarantined tail was truncated.
        let r = restarted.apply(insert_book("fresh", 0)).must();
        assert_eq!(r.seq, 2);
    }

    #[test]
    fn apply_all_batches_share_one_final_compaction() {
        let mut e = engine();
        let edits: Vec<Edit> = (0..8).map(|i| insert_book(&format!("b{i}"), 2)).collect();
        let receipts = e.apply_all(edits).must();
        assert_eq!(receipts.len(), 8);
        assert!(
            receipts.iter().all(|r| r.compacted == 0),
            "below the threshold nothing compacts mid-batch"
        );
        assert_eq!(e.compact(), 0, "the batch drained its delta at the end");
        assert_eq!(e.eval_path("book.xml", "//book").must().len(), 10);
        // A tiny threshold forces mid-batch compactions.
        let mut tight = engine();
        tight.set_compact_threshold(1);
        let receipts = tight
            .apply_all((0..3).map(|i| insert_book(&format!("t{i}"), 2)).collect())
            .must();
        assert!(receipts.iter().all(|r| r.compacted > 0));
    }

    #[test]
    fn traced_applies_emit_the_edit_span_vocabulary() {
        let mut e = engine();
        let (_, trace) = e.apply_traced(insert_book("Z", 2), true).must();
        let trace = trace.must();
        assert_eq!(trace.root.name, "apply");
        assert_eq!(trace.root.meta_value("kind"), Some("insert-subtree"));
        assert_eq!(trace.root.meta_value("uri"), Some("book.xml"));
        assert!(trace.root.find("compact").is_some());
        let text = e.metrics_text();
        for needle in [
            "vpbn_edits_total 1",
            "vpbn_edit_failures_total 0",
            "vpbn_compactions_total 1",
            "vpbn_replayed_edits_total 0",
            "vh_cache_maintained_total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    /// The retired wrappers, exercised only when the `legacy-api`
    /// feature resurrects them: each must agree with its `Engine::run`
    /// replacement (the contract the deprecated-wrapper vet lint pins
    /// structurally).
    #[cfg(feature = "legacy-api")]
    mod legacy_api {
        use super::*;

        #[test]
        fn wrappers_agree_with_run() {
            let e = engine();
            assert_eq!(
                Engine::eval_to_string(&e, RHONDA).must(),
                e.run(&QueryRequest::flwr(RHONDA))
                    .must()
                    .to_string_compact()
            );
            assert_eq!(
                Engine::eval_path(&e, "book.xml", "//book").must(),
                e.run(&QueryRequest::path("book.xml", "//book"))
                    .must()
                    .nodes
                    .must()
            );
            assert_eq!(
                Engine::eval_virtual_path(&e, "book.xml", "title { author { name } }", "//title")
                    .must(),
                e.run(&QueryRequest::virtual_path(
                    "book.xml",
                    "title { author { name } }",
                    "//title"
                ))
                .must()
                .nodes
                .must()
            );
            let parsed = parse_flwr(RHONDA).must();
            assert_eq!(
                vh_xml::serialize(
                    &Engine::eval_parsed(&e, &parsed).must(),
                    vh_xml::SerializeOptions::compact()
                ),
                Engine::eval_to_string(&e, RHONDA).must()
            );
            assert_eq!(
                Engine::cache_stats(&e).total_hits(),
                e.snapshot().cache.total_hits()
            );
            assert_eq!(
                Engine::cached_views(&e),
                e.snapshot().cache.expansions.entries
            );
        }
    }
}
