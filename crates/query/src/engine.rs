//! The [`Engine`]: a document registry with one-call query evaluation.
//!
//! This is the component a user of the paper's system would interact with:
//! register documents once (they are analyzed — PBN numbers, DataGuide,
//! type map), then run FLWR queries whose sources name them through
//! `doc("uri")` or `virtualDoc("uri", "vDataGuide")`. `virtualDoc` views
//! are compiled on first use and served from the sharded
//! [`ExecCache`] — vDataGuide expansions, Algorithm-1 level maps,
//! scan-range prefix tables and per-type node indexes are each cached per
//! `(uri, guide fingerprint, specification)` — so Algorithm 1 runs once
//! per view, not once per query, and a warm open does no per-node work. The engine is `Sync`: reads (`eval*`)
//! can run from many threads against one registry.

use crate::doc::{PhysicalDoc, VirtualDoc};
use crate::error::Limits;
use crate::flwr::ast::{Clause, FlwrQuery, Origin};
use crate::flwr::eval::{eval_flwr_multi_limited, DocSet, FlwrError};
use crate::flwr::parse::parse_flwr;
use crate::xpath::eval::eval_xpath_limited;
use crate::xpath::parse::parse_xpath;
use std::collections::HashMap;
use std::sync::Arc;
use vh_core::cache::{guide_fingerprint, CacheStats, ViewKey};
use vh_core::levels::LevelMap;
use vh_core::range::PrefixTables;
use vh_core::{ExecCache, ExecOptions, TypeIndex, VDataGuide, VirtualDocument};
use vh_dataguide::TypedDocument;
use vh_xml::{Document, NodeId};

/// A registry of analyzed documents plus the query entry points.
#[derive(Default)]
pub struct Engine {
    docs: HashMap<String, TypedDocument>,
    /// DataGuide fingerprint per registered URI — part of every view's
    /// cache key, so re-registered content can never serve stale views.
    guide_hash: HashMap<String, u64>,
    /// Compiled-view artifacts shared across queries (and threads).
    cache: Arc<ExecCache>,
    /// Execution options stamped onto every view this engine opens.
    exec: ExecOptions,
    /// Resource limits applied to every query this engine evaluates.
    limits: Limits,
}

impl Engine {
    /// Creates an empty engine with [`Limits::default`] guards.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Creates an empty engine with explicit resource limits.
    pub fn with_limits(limits: Limits) -> Self {
        Engine {
            limits,
            ..Engine::default()
        }
    }

    /// Replaces the resource limits applied to subsequent queries.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// The resource limits currently in force.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Replaces the execution options (threads, caching) applied to every
    /// view opened by subsequent queries.
    pub fn set_exec_options(&mut self, exec: ExecOptions) {
        self.exec = exec;
    }

    /// The execution options currently in force.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    /// Hit/miss/eviction counters of the compiled-view cache, reported
    /// alongside `StorageStats` by the CLI's `stats` action.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Parses and registers an XML string under its URI.
    pub fn register_xml(&mut self, uri: &str, xml: &str) -> Result<(), vh_xml::ParseError> {
        let td = TypedDocument::parse(uri, xml)?;
        self.install(uri.to_owned(), td);
        Ok(())
    }

    /// Registers an already-built document under its URI, invalidating any
    /// cached views of a previous document at that URI.
    pub fn register(&mut self, doc: Document) {
        let uri = doc.uri().to_owned();
        let td = TypedDocument::analyze(doc);
        self.install(uri, td);
    }

    /// Stores an analyzed document, evicting all cached views of the URI
    /// and recording the new guide fingerprint.
    fn install(&mut self, uri: String, td: TypedDocument) {
        self.cache.invalidate_uri(&uri);
        self.guide_hash
            .insert(uri.clone(), guide_fingerprint(td.guide()));
        self.docs.insert(uri, td);
    }

    /// The analyzed document registered under `uri`.
    pub fn document(&self, uri: &str) -> Option<&TypedDocument> {
        self.docs.get(uri)
    }

    /// Evaluates a FLWR query, returning the result document (rooted at
    /// `<results>`).
    pub fn eval(&self, query: &str) -> Result<Document, FlwrError> {
        let q = parse_flwr(query)?;
        self.eval_parsed(&q)
    }

    /// Evaluates an already-parsed FLWR query. Queries may draw from any
    /// number of registered documents and virtual views; the first
    /// `doc()`/`virtualDoc()` origin is the primary document for
    /// variable-free expressions.
    pub fn eval_parsed(&self, q: &FlwrQuery) -> Result<Document, FlwrError> {
        // Distinct origins, in clause order.
        let mut origins: Vec<(String, Option<String>)> = Vec::new();
        for c in &q.clauses {
            let origin = match c {
                Clause::For(_, s) | Clause::Let(_, s) => &s.origin,
                Clause::Where(_) | Clause::OrderBy(_) => continue,
            };
            let key = match origin {
                Origin::Doc(uri) => (uri.clone(), None),
                Origin::VirtualDoc(uri, spec) => (uri.clone(), Some(spec.clone())),
                Origin::Var(_) => continue,
            };
            if !origins.contains(&key) {
                origins.push(key);
            }
        }
        if origins.is_empty() {
            return Err(FlwrError::Unsupported(
                "query has no doc()/virtualDoc() source".into(),
            ));
        }
        // Open every view first (the wrappers below borrow them), then
        // build the physical/virtual QueryDoc adapters.
        let mut vdocs: Vec<Option<VirtualDocument<'_>>> = Vec::with_capacity(origins.len());
        let mut phys: Vec<Option<PhysicalDoc<'_>>> = Vec::with_capacity(origins.len());
        for (uri, spec) in &origins {
            match spec {
                Some(s) => {
                    vdocs.push(Some(self.virtual_doc(uri, s)?));
                    phys.push(None);
                }
                None => {
                    let td = self
                        .docs
                        .get(uri)
                        .ok_or_else(|| FlwrError::UnknownDocument(uri.clone()))?;
                    vdocs.push(None);
                    phys.push(Some(PhysicalDoc::new(td)));
                }
            }
        }
        let virt: Vec<Option<VirtualDoc<'_>>> = vdocs
            .iter()
            .map(|o| o.as_ref().map(VirtualDoc::new))
            .collect();
        let mut entries: Vec<(String, Option<String>, &dyn crate::doc::QueryDoc)> =
            Vec::with_capacity(origins.len());
        for (i, (uri, spec)) in origins.iter().enumerate() {
            // Invariant: the loop above pushed exactly one of virt/phys per
            // origin, so the two options are mutually exclusive per index.
            let doc: &dyn crate::doc::QueryDoc = match (&virt[i], &phys[i]) {
                (Some(v), _) => v,
                (None, Some(p)) => p,
                (None, None) => unreachable!("every origin is virtual or physical"),
            };
            entries.push((uri.clone(), spec.clone(), doc));
        }
        eval_flwr_multi_limited(q, &DocSet::new(entries), self.limits)
    }

    /// Evaluates an XPath over the physical document registered at `uri`.
    pub fn eval_path(&self, uri: &str, path: &str) -> Result<Vec<NodeId>, FlwrError> {
        let td = self
            .docs
            .get(uri)
            .ok_or_else(|| FlwrError::UnknownDocument(uri.to_owned()))?;
        let p = parse_xpath(path)?;
        Ok(eval_xpath_limited(&PhysicalDoc::new(td), &p, self.limits)?)
    }

    /// Evaluates an XPath over a virtual view of the document at `uri`.
    pub fn eval_virtual_path(
        &self,
        uri: &str,
        spec: &str,
        path: &str,
    ) -> Result<Vec<NodeId>, FlwrError> {
        let vd = self.virtual_doc(uri, spec)?;
        let p = parse_xpath(path)?;
        Ok(eval_xpath_limited(&VirtualDoc::new(&vd), &p, self.limits)?)
    }

    /// Opens a virtual document for direct navigation, using (and filling)
    /// the compiled-view cache unless caching is disabled in the
    /// execution options. The returned view carries the engine's
    /// [`ExecOptions`].
    pub fn virtual_doc<'a>(
        &'a self,
        uri: &str,
        spec: &str,
    ) -> Result<VirtualDocument<'a>, FlwrError> {
        let td = self
            .docs
            .get(uri)
            .ok_or_else(|| FlwrError::UnknownDocument(uri.to_owned()))?;
        // Invariant: `install` records a fingerprint for every registered
        // URI; recompute defensively if a future path skips it.
        let fp = self
            .guide_hash
            .get(uri)
            .copied()
            .unwrap_or_else(|| guide_fingerprint(td.guide()));
        let mut vd = if self.exec.cache {
            let key = ViewKey::new(uri, fp, spec);
            let vdg = self
                .cache
                .expansions
                .get_or_try_insert(&key, || VDataGuide::compile(spec, td.guide()).map(Arc::new))?;
            let levels = self.cache.levels.get_or_try_insert(&key, || {
                Ok::<_, FlwrError>(Arc::new(LevelMap::build(&vdg, td.guide())))
            })?;
            let tables = self.cache.tables.get_or_try_insert(&key, || {
                Ok::<_, FlwrError>(Arc::new(PrefixTables::build(&vdg, &levels, td.guide())))
            })?;
            let index = self.cache.indexes.get_or_try_insert(&key, || {
                Ok::<_, FlwrError>(Arc::new(TypeIndex::build(td, &vdg)))
            })?;
            let mut vd =
                VirtualDocument::with_cached_parts(td, (*vdg).clone(), (*levels).clone(), index);
            vd.set_prefix_tables(tables);
            vd
        } else {
            let vdg = VDataGuide::compile(spec, td.guide())?;
            let levels = LevelMap::build(&vdg, td.guide());
            VirtualDocument::with_parts(td, vdg, levels)
        };
        vd.set_exec(self.exec);
        Ok(vd)
    }

    /// Number of compiled views currently cached (expansion entries).
    pub fn cached_views(&self) -> usize {
        self.cache.expansions.len()
    }

    /// Convenience: the result of `eval` serialized compactly.
    pub fn eval_to_string(&self, query: &str) -> Result<String, FlwrError> {
        let out = self.eval(query)?;
        Ok(vh_xml::serialize(&out, vh_xml::SerializeOptions::compact()))
    }
}

/// Runs a query through a transient engine holding a single document —
/// a convenience used by examples and tests.
pub fn query_document(doc: Document, query: &str) -> Result<Document, FlwrError> {
    let mut e = Engine::new();
    e.register(doc);
    e.eval(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_xml::builder::paper_figure2;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register(paper_figure2());
        e
    }

    #[test]
    fn rhondas_figure6_query_end_to_end() {
        // The headline query of the paper: Rhonda's count over Sam's
        // virtual transformation, via virtualDoc.
        let e = engine();
        let got = e
            .eval_to_string(
                r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   return <result><title>{$t/text()}</title>
                                  <count>{count($t/author)}</count></result>"#,
            )
            .must();
        assert_eq!(
            got,
            "<results>\
             <result><title>X</title><count>1</count></result>\
             <result><title>Y</title><count>1</count></result>\
             </results>"
        );
    }

    #[test]
    fn rhondas_nested_pipeline_matches_virtualdoc() {
        // Figure 4's alternative: materialize Sam's output, re-register it,
        // run Rhonda's query on the materialized document. Both roads must
        // agree.
        let mut e = engine();
        // Sam's query (Figure 1).
        let sam = e
            .eval(
                r#"for $t in doc("book.xml")//book/title
                   let $a := $t/../author
                   return <title>{$t/text()}{$a}</title>"#,
            )
            .must();
        e.register(sam); // registered under uri "results"
        let nested = e
            .eval_to_string(
                r#"for $t in doc("results")//title
                   return <result><title>{$t/text()}</title>
                                  <count>{count($t/author)}</count></result>"#,
            )
            .must();
        let virtual_ = e
            .eval_to_string(
                r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   return <result><title>{$t/text()}</title>
                                  <count>{count($t/author)}</count></result>"#,
            )
            .must();
        assert_eq!(nested, virtual_);
    }

    #[test]
    fn physical_and_virtual_path_evaluation() {
        let e = engine();
        assert_eq!(e.eval_path("book.xml", "//book").must().len(), 2);
        assert_eq!(
            e.eval_virtual_path("book.xml", "title { author { name } }", "//title/author")
                .must()
                .len(),
            2
        );
    }

    #[test]
    fn unknown_documents_are_reported() {
        let e = engine();
        assert!(matches!(
            e.eval(r#"for $t in doc("nope.xml")//x return <y/>"#),
            Err(FlwrError::UnknownDocument(_))
        ));
        assert!(e.eval_path("nope", "//x").is_err());
    }

    #[test]
    fn cross_document_joins_work() {
        let mut e = engine();
        e.register_xml(
            "prices.xml",
            "<prices><p t='X'>10</p><p t='Y'>25</p></prices>",
        )
        .must();
        // Join books with their prices by title: a genuine two-document
        // pipeline. Each expression stays within one document.
        let got = e
            .eval_to_string(
                r#"for $b in doc("book.xml")//book
                   for $p in doc("prices.xml")//p
                   where $b/title = $p/@t
                   return <row><t>{$b/title/text()}</t><c>{$p/text()}</c></row>"#,
            )
            .must();
        assert_eq!(
            got,
            "<results><row><t>X</t><c>10</c></row><row><t>Y</t><c>25</c></row></results>"
        );
    }

    #[test]
    fn physical_and_virtual_views_mix_in_one_query() {
        let e = engine();
        // $t ranges over the virtual view, $b over the physical document;
        // the join key crosses the two.
        let got = e
            .eval_to_string(
                r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   for $b in doc("book.xml")//book
                   where $b/title = $t/text()
                   return <m><v>{count($t/author)}</v><p>{count($b/author)}</p></m>"#,
            )
            .must();
        assert_eq!(
            got,
            "<results><m><v>1</v><p>1</p></m><m><v>1</v><p>1</p></m></results>"
        );
    }

    #[test]
    fn cross_document_value_functions_decompose() {
        let mut e = engine();
        e.register_xml("other.xml", "<o><x>1</x></o>").must();
        // concat() across documents works via value-level decomposition.
        let got = e
            .eval_to_string(
                r#"for $a in doc("book.xml")//book
                   for $b in doc("other.xml")//o
                   return <x>{concat($a/title, $b/x)}</x>"#,
            )
            .must();
        assert_eq!(got, "<results><x>X1</x><x>Y1</x></results>");
        // A node-set function over a cross-document union cannot be
        // decomposed: clean error, not a panic.
        let err = e.eval(
            r#"for $a in doc("book.xml")//book
               for $b in doc("other.xml")//o
               return <x>{count($a/title | $b/x)}</x>"#,
        );
        assert!(matches!(err, Err(FlwrError::Unsupported(_))), "{err:?}");
    }

    #[test]
    fn compiled_views_are_cached_and_invalidated() {
        let mut e = engine();
        assert_eq!(e.cached_views(), 0);
        let q = r#"for $t in virtualDoc("book.xml", "title { author { name } }")//title
                   return <t>{$t/text()}</t>"#;
        let first = e.eval_to_string(q).must();
        assert_eq!(e.cached_views(), 1);
        let second = e.eval_to_string(q).must();
        assert_eq!(first, second);
        assert_eq!(e.cached_views(), 1, "second run hits the cache");
        // Another spec adds an entry.
        e.eval_virtual_path("book.xml", "data { ** }", "//book")
            .must();
        assert_eq!(e.cached_views(), 2);
        // Re-registering the document invalidates its views.
        e.register(paper_figure2());
        assert_eq!(e.cached_views(), 0);
    }

    #[test]
    fn engine_limits_bound_queries() {
        let mut e = engine();
        e.set_limits(Limits {
            max_result: 1,
            ..Limits::default()
        });
        let q = r#"for $b in doc("book.xml")//book return <t>x</t>"#;
        let err = e.eval(q);
        assert!(
            matches!(err, Err(FlwrError::ResourceExhausted { .. })),
            "{err:?}"
        );
        e.set_limits(Limits::default());
        assert!(e.eval(q).is_ok());
    }

    #[test]
    fn query_document_convenience() {
        let out = query_document(
            paper_figure2(),
            r#"for $b in doc("book.xml")//book return <t>{$b/title/text()}</t>"#,
        )
        .must();
        assert_eq!(
            vh_xml::serialize(&out, vh_xml::SerializeOptions::compact()),
            "<results><t>X</t><t>Y</t></results>"
        );
    }
}
