//! An LRU buffer pool over the page store.
//!
//! The experiments charge raw page touches by default; the buffer pool
//! refines the model: repeated touches of a hot page are hits, capacity
//! misses evict the least-recently-used frame. This is the standard DBMS
//! layer between §6's value reads and the "disk", and it lets experiments
//! separate cold from warm behaviour.
//!
//! Frames carry page *data*, so the store can serve verified reads from
//! the pool — and when a resident frame no longer passes CRC verification
//! (simulated memory corruption, see [`BufferPool::poison_frame`]), the
//! store **quarantines** it: the frame is dropped, counted, and the page
//! refetched from the device.

use std::cell::RefCell;
use std::collections::HashMap;

/// Aggregate buffer-pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to "go to disk".
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Frames dropped because their content failed verification.
    pub quarantines: u64,
}

impl BufferStats {
    /// Folds another snapshot into this one — how an engine aggregates
    /// one `EngineSnapshot.buffers` over every pool it can see.
    pub fn merge(&mut self, other: &BufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.quarantines += other.quarantines;
    }

    /// Hit ratio in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident page.
#[derive(Debug, Default)]
struct Frame {
    tick: u64,
    data: Vec<u8>,
}

/// A fixed-capacity LRU pool of page frames.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    frames: HashMap<usize, Frame>,
    tick: u64,
    stats: BufferStats,
}

impl Inner {
    fn evict_if_full(&mut self, capacity: usize, incoming: usize) {
        if !self.frames.contains_key(&incoming) && self.frames.len() >= capacity {
            // Evict the least recently used frame.
            if let Some((&victim, _)) = self.frames.iter().min_by_key(|(_, f)| f.tick) {
                self.frames.remove(&victim);
                self.stats.evictions += 1;
            }
        }
    }
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// The frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `page`. A resident frame counts a hit (and is touched for
    /// LRU); absence counts a miss. Returns a copy of the frame's data.
    pub fn lookup(&self, page: usize) -> Option<Vec<u8>> {
        let mut inner = self.inner.borrow_mut();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.frames.get_mut(&page) {
            Some(frame) => {
                frame.tick = tick;
                let data = frame.data.clone();
                inner.stats.hits += 1;
                Some(data)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Installs `data` as the frame for `page`, evicting the LRU frame if
    /// the pool is full. Does not count a hit or a miss (the preceding
    /// [`BufferPool::lookup`] did).
    pub fn insert(&self, page: usize, data: Vec<u8>) {
        let mut inner = self.inner.borrow_mut();
        inner.evict_if_full(self.capacity, page);
        inner.tick += 1;
        let tick = inner.tick;
        inner.frames.insert(page, Frame { tick, data });
    }

    /// Drops the frame for `page` because its content failed verification.
    /// Counts a quarantine when a frame was actually resident.
    pub fn quarantine(&self, page: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        let dropped = inner.frames.remove(&page).is_some();
        if dropped {
            inner.stats.quarantines += 1;
        }
        dropped
    }

    /// Fault-injection hook: XORs `mask` into byte `byte` of the resident
    /// frame for `page`, simulating in-memory corruption of a cached page.
    /// Returns false when the page is not resident (nothing corrupted).
    pub fn poison_frame(&self, page: usize, byte: usize, mask: u8) -> bool {
        let mut inner = self.inner.borrow_mut();
        match inner.frames.get_mut(&page) {
            Some(frame) if byte < frame.data.len() => {
                frame.data[byte] ^= mask;
                true
            }
            _ => false,
        }
    }

    /// Requests the inclusive page range `[first, last]`, updating LRU
    /// state and counters without caching data (the id-only accounting
    /// mode used by the I/O-model experiments). Returns (hits, misses)
    /// for this request.
    pub fn access_range(&self, first: usize, last: usize) -> (u64, u64) {
        let (mut hits, mut misses) = (0, 0);
        for page in first..=last {
            if self.lookup(page).is_some() {
                hits += 1;
            } else {
                misses += 1;
                self.insert(page, Vec::new());
            }
        }
        (hits, misses)
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner.borrow().frames.len()
    }

    /// Counters since the last [`BufferPool::reset`].
    pub fn stats(&self) -> BufferStats {
        self.inner.borrow().stats
    }

    /// Clears counters (resident frames stay — a warm reset).
    pub fn reset(&self) {
        self.inner.borrow_mut().stats = BufferStats::default();
    }

    /// Drops every frame and clears counters (a cold reset).
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.frames.clear();
        inner.stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let p = BufferPool::new(4);
        assert_eq!(p.access_range(0, 2), (0, 3));
        assert_eq!(p.access_range(0, 2), (3, 0));
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 3, 0));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(p.resident(), 3);
    }

    #[test]
    fn lru_evicts_the_coldest_frame() {
        let p = BufferPool::new(2);
        p.access_range(1, 1); // miss, resident {1}
        p.access_range(2, 2); // miss, resident {1,2}
        p.access_range(1, 1); // hit — 1 is now hotter than 2
        p.access_range(3, 3); // miss, evicts 2
        assert_eq!(p.access_range(1, 1), (1, 0), "1 survived");
        assert_eq!(p.access_range(2, 2), (0, 1), "2 was evicted");
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn clear_vs_reset() {
        let p = BufferPool::new(4);
        p.access_range(0, 3);
        p.reset();
        assert_eq!(p.stats(), BufferStats::default());
        assert_eq!(p.resident(), 4, "warm reset keeps frames");
        assert_eq!(p.access_range(0, 3).0, 4, "all hits after warm reset");
        p.clear();
        assert_eq!(p.resident(), 0);
        assert_eq!(p.access_range(0, 0), (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(0);
    }

    #[test]
    fn hit_ratio_of_empty_pool_is_zero() {
        assert_eq!(BufferPool::new(1).stats().hit_ratio(), 0.0);
    }

    #[test]
    fn frames_cache_data() {
        let p = BufferPool::new(2);
        assert_eq!(p.lookup(7), None);
        p.insert(7, vec![1, 2, 3]);
        assert_eq!(p.lookup(7), Some(vec![1, 2, 3]));
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn quarantine_drops_the_frame_and_counts() {
        let p = BufferPool::new(2);
        p.insert(3, vec![9]);
        assert!(p.quarantine(3));
        assert!(!p.quarantine(3), "already gone");
        assert_eq!(p.stats().quarantines, 1);
        assert_eq!(p.lookup(3), None);
    }

    #[test]
    fn poison_flips_resident_bytes_only() {
        let p = BufferPool::new(2);
        p.insert(0, vec![0b1010, 0b0101]);
        assert!(p.poison_frame(0, 1, 0b0001));
        assert_eq!(p.lookup(0), Some(vec![0b1010, 0b0100]));
        assert!(!p.poison_frame(0, 9, 1), "byte out of range");
        assert!(!p.poison_frame(5, 0, 1), "page not resident");
    }
}
