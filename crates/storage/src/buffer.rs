//! An LRU buffer pool over the page store.
//!
//! The experiments charge raw page touches by default; the buffer pool
//! refines the model: repeated touches of a hot page are hits, capacity
//! misses evict the least-recently-used frame. This is the standard DBMS
//! layer between §6's value reads and the "disk", and it lets experiments
//! separate cold from warm behaviour.

use std::cell::RefCell;
use std::collections::HashMap;

/// Aggregate buffer-pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to "go to disk".
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]`; 0 when nothing was requested.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU pool of page frames.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    inner: RefCell<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// page id → last-use tick.
    frames: HashMap<usize, u64>,
    tick: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool holding up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// The frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests the inclusive page range `[first, last]`, updating LRU
    /// state and counters. Returns (hits, misses) for this request.
    pub fn access_range(&self, first: usize, last: usize) -> (u64, u64) {
        let mut inner = self.inner.borrow_mut();
        let (mut hits, mut misses) = (0, 0);
        for page in first..=last {
            inner.tick += 1;
            let tick = inner.tick;
            if inner.frames.contains_key(&page) {
                inner.frames.insert(page, tick);
                hits += 1;
            } else {
                misses += 1;
                if inner.frames.len() >= self.capacity {
                    // Evict the least recently used frame.
                    if let Some((&victim, _)) =
                        inner.frames.iter().min_by_key(|(_, &t)| t)
                    {
                        inner.frames.remove(&victim);
                        inner.stats.evictions += 1;
                    }
                }
                inner.frames.insert(page, tick);
            }
        }
        inner.stats.hits += hits;
        inner.stats.misses += misses;
        (hits, misses)
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.inner.borrow().frames.len()
    }

    /// Counters since the last [`BufferPool::reset`].
    pub fn stats(&self) -> BufferStats {
        self.inner.borrow().stats
    }

    /// Clears counters (resident frames stay — a warm reset).
    pub fn reset(&self) {
        self.inner.borrow_mut().stats = BufferStats::default();
    }

    /// Drops every frame and clears counters (a cold reset).
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.frames.clear();
        inner.stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let p = BufferPool::new(4);
        assert_eq!(p.access_range(0, 2), (0, 3));
        assert_eq!(p.access_range(0, 2), (3, 0));
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 3, 0));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(p.resident(), 3);
    }

    #[test]
    fn lru_evicts_the_coldest_frame() {
        let p = BufferPool::new(2);
        p.access_range(1, 1); // miss, resident {1}
        p.access_range(2, 2); // miss, resident {1,2}
        p.access_range(1, 1); // hit — 1 is now hotter than 2
        p.access_range(3, 3); // miss, evicts 2
        assert_eq!(p.access_range(1, 1), (1, 0), "1 survived");
        assert_eq!(p.access_range(2, 2), (0, 1), "2 was evicted");
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn clear_vs_reset() {
        let p = BufferPool::new(4);
        p.access_range(0, 3);
        p.reset();
        assert_eq!(p.stats(), BufferStats::default());
        assert_eq!(p.resident(), 4, "warm reset keeps frames");
        assert_eq!(p.access_range(0, 3).0, 4, "all hits after warm reset");
        p.clear();
        assert_eq!(p.resident(), 0);
        assert_eq!(p.access_range(0, 0), (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let _ = BufferPool::new(0);
    }

    #[test]
    fn hit_ratio_of_empty_pool_is_zero() {
        assert_eq!(BufferPool::new(1).stats().hit_ratio(), 0.0);
    }
}
