//! The element-name index: local name → nodes, in document order.
//!
//! Name-keyed lookup backs path steps that select by tag regardless of
//! position (`//title`). It complements the type index (which is keyed by
//! full root paths): one name can cover several types.

use std::collections::HashMap;
use vh_dataguide::TypedDocument;
use vh_xml::NodeId;

/// Name → document-ordered node list.
#[derive(Clone, Debug, Default)]
pub struct NameIndex {
    by_name: HashMap<String, Vec<NodeId>>,
}

impl NameIndex {
    /// Builds the index over all element nodes.
    pub fn build(td: &TypedDocument) -> Self {
        let mut by_name: HashMap<String, Vec<NodeId>> = HashMap::new();
        for (_, id) in td.pbn().in_document_order() {
            if let Some(name) = td.doc().name(*id) {
                by_name.entry(name.to_owned()).or_default().push(*id);
            }
        }
        NameIndex { by_name }
    }

    /// All elements with the given name, in document order.
    pub fn nodes(&self, name: &str) -> &[NodeId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct names indexed.
    pub fn name_count(&self) -> usize {
        self.by_name.len()
    }

    /// Heap bytes used (approximate; space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.by_name
            .iter()
            .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<NodeId>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn names_map_to_document_ordered_lists() {
        let td = TypedDocument::analyze(paper_figure2());
        let idx = NameIndex::build(&td);
        assert_eq!(idx.nodes("book").len(), 2);
        assert_eq!(idx.nodes("title").len(), 2);
        assert_eq!(idx.nodes("data").len(), 1);
        assert!(idx.nodes("nosuch").is_empty());
        // 7 distinct element names in Figure 2: data, book, title, author,
        // name, publisher, location.
        assert_eq!(idx.name_count(), 7);
        // Document order within a name.
        let books = idx.nodes("book");
        assert!(td.pbn().pbn_of(books[0]) < td.pbn().pbn_of(books[1]));
    }
}
