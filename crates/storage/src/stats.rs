//! Aggregated storage statistics for the experiments.

/// A snapshot of storage sizes and access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Bytes of the serialized document string.
    pub document_bytes: usize,
    /// Pages the document string occupies.
    pub document_pages: usize,
    /// Bytes of the value index.
    pub value_index_bytes: usize,
    /// Bytes of the type index.
    pub type_index_bytes: usize,
    /// Bytes of the name index.
    pub name_index_bytes: usize,
    /// Bytes of the node header table (kind + type id + encoded PBN).
    pub header_bytes: usize,
    /// Bytes of the persisted PBN key-arena column image.
    pub pbn_column_bytes: usize,
    /// Pages read since the last counter reset.
    pub pages_read: u64,
    /// Bytes read since the last counter reset.
    pub bytes_read: u64,
    /// Retry attempts performed after failed page reads.
    pub read_retries: u64,
    /// Transient device faults observed (healed or not).
    pub transient_faults: u64,
    /// Pages delivered with a CRC32 mismatch.
    pub checksum_failures: u64,
    /// Buffer-pool frames quarantined after failing verification.
    pub quarantines: u64,
}

impl StorageStats {
    /// Folds another snapshot into this one field-by-field — how an
    /// engine aggregates one `EngineSnapshot.storage` over every store
    /// it has attached.
    pub fn merge(&mut self, other: &StorageStats) {
        self.document_bytes += other.document_bytes;
        self.document_pages += other.document_pages;
        self.value_index_bytes += other.value_index_bytes;
        self.type_index_bytes += other.type_index_bytes;
        self.name_index_bytes += other.name_index_bytes;
        self.header_bytes += other.header_bytes;
        self.pbn_column_bytes += other.pbn_column_bytes;
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.read_retries += other.read_retries;
        self.transient_faults += other.transient_faults;
        self.checksum_failures += other.checksum_failures;
        self.quarantines += other.quarantines;
    }

    /// Total resident bytes (string + indexes + headers).
    pub fn total_bytes(&self) -> usize {
        self.document_bytes
            + self.value_index_bytes
            + self.type_index_bytes
            + self.name_index_bytes
            + self.header_bytes
            + self.pbn_column_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = StorageStats {
            document_bytes: 100,
            value_index_bytes: 10,
            type_index_bytes: 20,
            name_index_bytes: 5,
            header_bytes: 15,
            pbn_column_bytes: 50,
            ..StorageStats::default()
        };
        assert_eq!(s.total_bytes(), 200);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = StorageStats {
            document_bytes: 1,
            document_pages: 2,
            value_index_bytes: 3,
            type_index_bytes: 4,
            name_index_bytes: 5,
            header_bytes: 6,
            pbn_column_bytes: 7,
            pages_read: 8,
            bytes_read: 9,
            read_retries: 10,
            transient_faults: 11,
            checksum_failures: 12,
            quarantines: 13,
        };
        let mut m = a;
        m.merge(&a);
        assert_eq!(m.document_bytes, 2);
        assert_eq!(m.document_pages, 4);
        assert_eq!(m.value_index_bytes, 6);
        assert_eq!(m.type_index_bytes, 8);
        assert_eq!(m.name_index_bytes, 10);
        assert_eq!(m.header_bytes, 12);
        assert_eq!(m.pbn_column_bytes, 14);
        assert_eq!(m.pages_read, 16);
        assert_eq!(m.bytes_read, 18);
        assert_eq!(m.read_retries, 20);
        assert_eq!(m.transient_faults, 22);
        assert_eq!(m.checksum_failures, 24);
        assert_eq!(m.quarantines, 26);
        assert_eq!(m.total_bytes(), 2 * a.total_bytes());
    }
}
