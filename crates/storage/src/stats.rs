//! Aggregated storage statistics for the experiments.

/// A snapshot of storage sizes and access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Bytes of the serialized document string.
    pub document_bytes: usize,
    /// Pages the document string occupies.
    pub document_pages: usize,
    /// Bytes of the value index.
    pub value_index_bytes: usize,
    /// Bytes of the type index.
    pub type_index_bytes: usize,
    /// Bytes of the name index.
    pub name_index_bytes: usize,
    /// Bytes of the node header table (kind + type id + encoded PBN).
    pub header_bytes: usize,
    /// Bytes of the persisted PBN key-arena column image.
    pub pbn_column_bytes: usize,
    /// Pages read since the last counter reset.
    pub pages_read: u64,
    /// Bytes read since the last counter reset.
    pub bytes_read: u64,
    /// Retry attempts performed after failed page reads.
    pub read_retries: u64,
    /// Transient device faults observed (healed or not).
    pub transient_faults: u64,
    /// Pages delivered with a CRC32 mismatch.
    pub checksum_failures: u64,
    /// Buffer-pool frames quarantined after failing verification.
    pub quarantines: u64,
}

impl StorageStats {
    /// Total resident bytes (string + indexes + headers).
    pub fn total_bytes(&self) -> usize {
        self.document_bytes
            + self.value_index_bytes
            + self.type_index_bytes
            + self.name_index_bytes
            + self.header_bytes
            + self.pbn_column_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = StorageStats {
            document_bytes: 100,
            value_index_bytes: 10,
            type_index_bytes: 20,
            name_index_bytes: 5,
            header_bytes: 15,
            pbn_column_bytes: 50,
            ..StorageStats::default()
        };
        assert_eq!(s.total_bytes(), 200);
    }
}
