//! CRC32 (IEEE 802.3 polynomial, reflected) for per-page checksums.
//!
//! Implemented in-crate: the build environment is offline, and a table-
//! driven CRC32 is fast enough for 4 KiB pages (one table lookup per
//! byte). The parameters are the ubiquitous ones (poly `0xEDB88320`,
//! init/xorout `0xFFFFFFFF`), so values match zlib's `crc32()`.

/// Lookup table for the reflected IEEE polynomial, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 of `data` (IEEE, reflected — the zlib/`cksum -o 3` flavour).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"a page worth of bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
