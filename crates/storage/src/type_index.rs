//! The type index: type → nodes of that type, in document (PBN) order.
//!
//! §4.3: "there will usually be an index to quickly look up nodes of a
//! given type (e.g., find all the `<title>` elements). In these indexes ...
//! it is common to use the PBN number as a logical key." Range scans over a
//! type's PBN-sorted list are the access path both physical subtree queries
//! and the vPBN scan ranges (`vh_core::range`) use.

use vh_dataguide::{TypeId, TypedDocument};
use vh_pbn::Pbn;
use vh_xml::NodeId;

/// Per-type node lists, PBN-sorted.
#[derive(Clone, Debug, Default)]
pub struct TypeIndex {
    by_type: Vec<Vec<NodeId>>,
}

impl TypeIndex {
    /// Builds the index from a typed document.
    pub fn build(td: &TypedDocument) -> Self {
        let mut by_type: Vec<Vec<NodeId>> = vec![Vec::new(); td.guide().len()];
        // Document order = PBN order, so each list is born sorted.
        for (_, id) in td.pbn().in_document_order() {
            by_type[td.type_of(*id).index()].push(*id);
        }
        TypeIndex { by_type }
    }

    /// All nodes of `ty`, in document order.
    #[inline]
    pub fn nodes(&self, ty: TypeId) -> &[NodeId] {
        &self.by_type[ty.index()]
    }

    /// The nodes of `ty` whose numbers fall in `[lo, hi)`; `hi = None`
    /// means unbounded. Binary search on the sorted list.
    pub fn range<'a>(
        &'a self,
        td: &TypedDocument,
        ty: TypeId,
        lo: &Pbn,
        hi: Option<&Pbn>,
    ) -> &'a [NodeId] {
        let list = self.nodes(ty);
        let start = list.partition_point(|&id| td.pbn().pbn_of(id) < lo);
        let end = match hi {
            Some(hi) => list.partition_point(|&id| td.pbn().pbn_of(id) < hi),
            None => list.len(),
        };
        &list[start..end]
    }

    /// Number of types covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_type.len()
    }

    /// True when the index covers no types.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_type.is_empty()
    }

    /// Total entries across all types (= node count).
    pub fn entries(&self) -> usize {
        self.by_type.iter().map(Vec::len).sum()
    }

    /// Heap bytes used by the index (space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.by_type
            .iter()
            .map(|v| v.len() * std::mem::size_of::<NodeId>())
            .sum::<usize>()
            + self.by_type.len() * std::mem::size_of::<Vec<NodeId>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_pbn::pbn;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn per_type_lists_in_document_order() {
        let td = TypedDocument::analyze(paper_figure2());
        let idx = TypeIndex::build(&td);
        let title = td.guide().lookup_path(&["data", "book", "title"]).must();
        let titles = idx.nodes(title);
        assert_eq!(titles.len(), 2);
        assert_eq!(td.pbn().pbn_of(titles[0]), &pbn![1, 1, 1]);
        assert_eq!(td.pbn().pbn_of(titles[1]), &pbn![1, 2, 1]);
        assert_eq!(idx.entries(), td.doc().len());
    }

    #[test]
    fn range_scan_isolates_a_subtree() {
        let td = TypedDocument::analyze(paper_figure2());
        let idx = TypeIndex::build(&td);
        let title = td.guide().lookup_path(&["data", "book", "title"]).must();
        // Titles within book 1's subtree [1.1, 1.2).
        let r = idx.range(&td, title, &pbn![1, 1], Some(&pbn![1, 2]));
        assert_eq!(r.len(), 1);
        assert_eq!(td.pbn().pbn_of(r[0]), &pbn![1, 1, 1]);
        // Unbounded scan from 1.2.
        let r = idx.range(&td, title, &pbn![1, 2], None);
        assert_eq!(r.len(), 1);
        assert_eq!(td.pbn().pbn_of(r[0]), &pbn![1, 2, 1]);
    }
}
