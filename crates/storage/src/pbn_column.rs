//! Persisted columnar PBN key arena.
//!
//! The [`vh_pbn::PbnArena`] is the hot-path representation of a document's
//! numbering: one contiguous document-order buffer of encoded keys plus a
//! `u32` offset table. This module gives it an on-disk image so a store can
//! be reopened without renumbering the document — the columns are written
//! verbatim, the offsets never recomputed, and a reopened assignment is
//! byte-identical to the one built at analyze time.
//!
//! Image layout (version 2, all integers little-endian `u32`):
//!
//! | bytes                | content                                   |
//! |----------------------|-------------------------------------------|
//! | `0..4`               | magic `b"VPBC"`                           |
//! | `4..8`               | format version (`2`)                      |
//! | `8..12`              | slot count `n`                            |
//! | `12..16`             | node-id space size                        |
//! | `16..20`             | key-buffer length `k`                     |
//! | `20..20+4(n+1)`      | offset table (`n + 1` entries)            |
//! | `…+4n`               | document-order node-id column             |
//! | `…+k`                | concatenated encoded keys                 |
//! | last 4               | CRC32 of everything before                |
//!
//! Loading is fully untrusting: magic, version, section lengths and the
//! CRC are checked first, then [`vh_pbn::PbnArena::from_parts`] validates
//! the structural invariants (monotone offsets, unique in-range node ids,
//! keys in strictly increasing document order), then every key must parse
//! as a well-formed component sequence ([`vh_pbn::EncodedPbn::from_bytes`]).
//! Any failure surfaces as [`StorageError::BadColumn`] — the suite facade
//! maps it to the storage exit class, never a panic or silent garbage.

use crate::crc::crc32;
use crate::error::StorageError;
use vh_pbn::{EncodedPbn, PbnArena, PbnAssignment};
use vh_xml::NodeId;

/// Magic bytes identifying a PBN column image.
const MAGIC: [u8; 4] = *b"VPBC";
/// Current image format version. Version 2 introduced minted (gap)
/// components in the key encoding — `0x00`/`0xF8` marker bytes inside a
/// key, see `vh_pbn::encode` — so version-1 images, whose byte ranges
/// were computed without gap exclusion, are rejected rather than
/// reinterpreted.
const VERSION: u32 = 2;

/// Serializes an assignment's key arena into the current column image.
pub fn encode_arena_column(assignment: &PbnAssignment) -> Vec<u8> {
    let arena = assignment.arena();
    let n = arena.len();
    let mut out = Vec::with_capacity(20 + 4 * (2 * n + 1) + arena.total_key_bytes() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(arena.id_space() as u32).to_le_bytes());
    out.extend_from_slice(&(arena.total_key_bytes() as u32).to_le_bytes());
    for &o in arena.offsets() {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for &id in arena.nodes_in_order() {
        out.extend_from_slice(&(id.index() as u32).to_le_bytes());
    }
    out.extend_from_slice(arena.key_bytes());
    let sum = crc32(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Reconstructs an assignment from a column image, validating everything.
pub fn decode_arena_column(image: &[u8]) -> Result<PbnAssignment, StorageError> {
    let bad = |reason: String| StorageError::BadColumn {
        column: "pbn",
        reason,
    };
    if image.len() < 24 {
        return Err(bad(format!("image of {} bytes is too short", image.len())));
    }
    let (payload, trailer) = image.split_at(image.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(payload) != stored {
        return Err(bad("CRC32 mismatch".into()));
    }
    if payload[..4] != MAGIC {
        return Err(bad("bad magic".into()));
    }
    let version = read_u32(payload, 4);
    if version != VERSION {
        return Err(bad(format!("unsupported format version {version}")));
    }
    let n = read_u32(payload, 8) as usize;
    let id_space = read_u32(payload, 12) as usize;
    let key_len = read_u32(payload, 16) as usize;
    let expected = 20usize
        .checked_add(4 * (n + 1))
        .and_then(|x| x.checked_add(4 * n))
        .and_then(|x| x.checked_add(key_len));
    if expected != Some(payload.len()) {
        return Err(bad(format!(
            "section lengths do not add up: {} slots and {} key bytes in a {}-byte payload",
            n,
            key_len,
            payload.len()
        )));
    }
    let mut at = 20;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u32(payload, at));
        at += 4;
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(NodeId::from_index(read_u32(payload, at) as usize));
        at += 4;
    }
    let bytes = payload[at..].to_vec();
    let arena =
        PbnArena::from_parts(bytes, offsets, nodes, id_space).map_err(|e| bad(e.to_string()))?;
    // Structural validation does not prove the keys are well-formed
    // component sequences; check each so malformed bytes surface with the
    // codec's own failure code instead of decoding to a wrong number.
    for slot in 0..arena.len() {
        if let Err(e) = EncodedPbn::from_bytes(arena.key_at_slot(slot).to_vec()) {
            return Err(bad(format!("key at slot {slot}: [{}] {e}", e.code())));
        }
    }
    Ok(PbnAssignment::from_arena(arena, id_space))
}

/// Reads a little-endian `u32`; callers have already bounds-checked.
#[inline]
fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_dataguide::TypedDocument;
    use vh_xml::builder::paper_figure2;

    fn image() -> (TypedDocument, Vec<u8>) {
        let td = TypedDocument::analyze(paper_figure2());
        let img = encode_arena_column(td.pbn());
        (td, img)
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let (td, img) = image();
        let loaded = decode_arena_column(&img).must();
        assert_eq!(loaded.arena(), td.pbn().arena());
        assert_eq!(loaded.in_document_order(), td.pbn().in_document_order());
        for id in td.doc().preorder() {
            assert_eq!(loaded.pbn_of(id), td.pbn().pbn_of(id));
            assert_eq!(loaded.key_of(id), td.pbn().key_of(id));
        }
    }

    #[test]
    fn empty_document_round_trips() {
        let td = TypedDocument::analyze(vh_xml::Document::new("e.xml"));
        let img = encode_arena_column(td.pbn());
        assert!(decode_arena_column(&img).must().is_empty());
    }

    #[test]
    fn bit_flips_anywhere_are_rejected_by_the_crc() {
        let (_, img) = image();
        for at in [0, 5, 9, 21, img.len() / 2, img.len() - 5] {
            let mut bad = img.clone();
            bad[at] ^= 0x40;
            let err = decode_arena_column(&bad).unwrap_err();
            assert_eq!(err.code(), "STORAGE_BAD_COLUMN", "flip at {at}: {err}");
        }
    }

    #[test]
    fn truncated_images_are_rejected() {
        let (_, img) = image();
        assert!(decode_arena_column(&img[..10]).is_err());
        assert!(decode_arena_column(&[]).is_err());
        assert!(decode_arena_column(&img[..img.len() - 1]).is_err());
    }

    #[test]
    fn malformed_keys_surface_the_codec_code() {
        // Hand-build a CRC-valid image whose single key is a truncated
        // two-byte component: structural validation passes (one key is
        // trivially ordered), so the per-key codec check must catch it.
        let mut payload = Vec::new();
        payload.extend_from_slice(&MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes()); // one slot
        payload.extend_from_slice(&1u32.to_le_bytes()); // id space
        payload.extend_from_slice(&1u32.to_le_bytes()); // one key byte
        payload.extend_from_slice(&0u32.to_le_bytes()); // offsets[0]
        payload.extend_from_slice(&1u32.to_le_bytes()); // offsets[1]
        payload.extend_from_slice(&0u32.to_le_bytes()); // node 0
        payload.push(0b1000_0001); // first byte of a 2-byte component
        let sum = crc32(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        let err = decode_arena_column(&payload).unwrap_err();
        assert_eq!(err.code(), "STORAGE_BAD_COLUMN");
        assert!(err.to_string().contains("PBN_TRUNCATED"), "{err}");
    }

    #[test]
    fn version_1_images_are_rejected_not_reinterpreted() {
        // Version 1 keys predate minted (gap) components; their byte
        // ranges would be misread by the gap-aware walkers, so the loader
        // must refuse them outright.
        let (_, img) = image();
        let mut old = img[..img.len() - 4].to_vec();
        old[4..8].copy_from_slice(&1u32.to_le_bytes());
        let sum = crc32(&old);
        old.extend_from_slice(&sum.to_le_bytes());
        let err = decode_arena_column(&old).unwrap_err();
        assert_eq!(err.code(), "STORAGE_BAD_COLUMN");
        assert!(
            err.to_string().contains("unsupported format version 1"),
            "{err}"
        );
    }

    #[test]
    fn structurally_invalid_columns_are_rejected() {
        // Duplicate node ids pass the CRC (we recompute it) but fail the
        // arena's from_parts validation.
        let (td, _) = image();
        let arena = td.pbn().arena();
        let mut payload = Vec::new();
        payload.extend_from_slice(&MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        payload.extend_from_slice(&(arena.len() as u32).to_le_bytes());
        payload.extend_from_slice(&(arena.id_space() as u32).to_le_bytes());
        payload.extend_from_slice(&(arena.total_key_bytes() as u32).to_le_bytes());
        for &o in arena.offsets() {
            payload.extend_from_slice(&o.to_le_bytes());
        }
        for (i, &id) in arena.nodes_in_order().iter().enumerate() {
            let dup = if i == 1 {
                arena.nodes_in_order()[0]
            } else {
                id
            };
            payload.extend_from_slice(&(dup.index() as u32).to_le_bytes());
        }
        payload.extend_from_slice(arena.key_bytes());
        let sum = crc32(&payload);
        payload.extend_from_slice(&sum.to_le_bytes());
        let err = decode_arena_column(&payload).unwrap_err();
        assert!(err.to_string().contains("two slots"), "{err}");
    }
}
