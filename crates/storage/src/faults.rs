//! Deterministic fault injection for the page device.
//!
//! [`FaultyPageIo`] wraps any [`PageIo`] and misbehaves according to a
//! seeded [`FaultConfig`]: transient read errors (retryable), random
//! single-bit flips on delivered pages (caught by checksums, healed by
//! refetch), and torn pages whose tail half is persistently lost
//! (simulating a torn write — every read of such a page fails
//! verification, so the store reports [`crate::StorageError::Corrupt`]).
//!
//! Everything is driven by an in-crate SplitMix64 stream, so a given
//! `(seed, call sequence)` reproduces the exact same fault pattern —
//! fault-injection tests are deterministic, not flaky.

use crate::error::PageFault;
use crate::io::PageIo;
use std::cell::Cell;
use std::collections::BTreeSet;

/// Fault rates and seed for a [`FaultyPageIo`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed for the fault stream; same seed → same faults.
    pub seed: u64,
    /// Probability that a page read fails with a transient fault.
    pub transient_read_rate: f64,
    /// Probability that a delivered page has one random bit flipped
    /// (transient corruption: a refetch returns clean data).
    pub bit_flip_rate: f64,
    /// Probability, decided per page at construction, that a page was
    /// torn: its tail half reads as zeroes forever (persistent corruption).
    pub torn_page_rate: f64,
    /// Explicitly torn pages, in addition to the random ones.
    pub torn_pages: Vec<usize>,
}

impl FaultConfig {
    /// A fault-free configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_read_rate: 0.0,
            bit_flip_rate: 0.0,
            torn_page_rate: 0.0,
            torn_pages: Vec::new(),
        }
    }

    /// Sets the transient read fault rate.
    pub fn transient_read_rate(mut self, rate: f64) -> Self {
        self.transient_read_rate = rate;
        self
    }

    /// Sets the per-read bit-flip rate.
    pub fn bit_flip_rate(mut self, rate: f64) -> Self {
        self.bit_flip_rate = rate;
        self
    }

    /// Sets the per-page torn-write probability.
    pub fn torn_page_rate(mut self, rate: f64) -> Self {
        self.torn_page_rate = rate;
        self
    }

    /// Marks `page` as torn regardless of the random rate.
    pub fn torn_page(mut self, page: usize) -> Self {
        self.torn_pages.push(page);
        self
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::with_seed(0)
    }
}

/// SplitMix64 step — the crate's only randomness source (kept in-crate so
/// the storage layer has no external dependencies).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chance(state: &mut u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    ((splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// A [`PageIo`] wrapper that injects deterministic faults.
#[derive(Debug)]
pub struct FaultyPageIo<I> {
    inner: I,
    config: FaultConfig,
    /// Read-stream RNG state (interior mutability: reads take `&self`).
    rng: Cell<u64>,
    /// Pages whose tail half is persistently lost.
    torn: BTreeSet<usize>,
}

impl<I: PageIo> FaultyPageIo<I> {
    /// Wraps `inner`, deciding torn pages up front from the seed.
    pub fn new(inner: I, config: FaultConfig) -> Self {
        // Separate stream for the per-page torn decisions so the read
        // stream is unaffected by page count.
        let mut torn_rng = config.seed ^ 0xD1B5_4A32_D192_ED03;
        let mut torn: BTreeSet<usize> = config.torn_pages.iter().copied().collect();
        for page in 0..inner.page_count() {
            if chance(&mut torn_rng, config.torn_page_rate) {
                torn.insert(page);
            }
        }
        let rng = Cell::new(config.seed ^ 0xA076_1D64_78BD_642F);
        FaultyPageIo {
            inner,
            config,
            rng,
            torn,
        }
    }

    /// The pages this device will always deliver torn.
    pub fn torn_pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.torn.iter().copied()
    }

    fn with_rng<T>(&self, f: impl FnOnce(&mut u64) -> T) -> T {
        let mut state = self.rng.get();
        let out = f(&mut state);
        self.rng.set(state);
        out
    }
}

impl<I: PageIo> PageIo for FaultyPageIo<I> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }

    fn read_page(&self, page: usize, buf: &mut Vec<u8>) -> Result<(), PageFault> {
        if self.with_rng(|rng| chance(rng, self.config.transient_read_rate)) {
            return Err(PageFault::Transient);
        }
        self.inner.read_page(page, buf)?;
        if self.torn.contains(&page) {
            // Torn write: the tail half of the page never made it to disk.
            let keep = buf.len() / 2;
            for b in &mut buf[keep..] {
                *b = 0;
            }
        } else if !buf.is_empty() && self.with_rng(|rng| chance(rng, self.config.bit_flip_rate)) {
            let (byte, bit) = self.with_rng(|rng| {
                let r = splitmix64(rng);
                ((r as usize / 8) % buf.len(), (r % 8) as u32)
            });
            buf[byte] ^= 1 << bit;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemPageIo;
    use crate::testutil::Must;

    fn device(cfg: FaultConfig) -> FaultyPageIo<MemPageIo> {
        FaultyPageIo::new(MemPageIo::new(vec![0xAB; 64], 16), cfg)
    }

    #[test]
    fn zero_rates_are_transparent() {
        let io = device(FaultConfig::with_seed(1));
        let mut buf = Vec::new();
        for page in 0..4 {
            io.read_page(page, &mut buf).must();
            assert_eq!(buf, vec![0xAB; 16]);
        }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mk = || device(FaultConfig::with_seed(7).transient_read_rate(0.5));
        let (a, b) = (mk(), mk());
        let mut buf = Vec::new();
        for page in (0..4).cycle().take(64) {
            assert_eq!(
                a.read_page(page, &mut buf).is_err(),
                b.read_page(page, &mut buf).is_err()
            );
        }
    }

    #[test]
    fn torn_pages_lose_their_tail() {
        let io = device(FaultConfig::with_seed(3).torn_page(1));
        let mut buf = Vec::new();
        io.read_page(1, &mut buf).must();
        assert_eq!(&buf[..8], &[0xAB; 8]);
        assert_eq!(&buf[8..], &[0u8; 8]);
        assert_eq!(io.torn_pages().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn bit_flips_corrupt_exactly_one_bit() {
        let io = device(FaultConfig::with_seed(9).bit_flip_rate(1.0));
        let mut buf = Vec::new();
        io.read_page(0, &mut buf).must();
        let flipped_bits: u32 = buf.iter().map(|&b| (b ^ 0xAB).count_ones()).sum();
        assert_eq!(flipped_bits, 1, "exactly one bit flips: {buf:?}");
    }
}
