//! Bounded retry with exponential backoff for transient page faults.

use std::time::Duration;

/// How many times to attempt a page read and how long to wait between
/// attempts. Backoff doubles per retry, capped at `max_backoff`; the
/// defaults are microsecond-scale because the "device" is simulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts per page read (≥ 1; the first attempt counts).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff to wait after failed attempt number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let doubled = self.base_backoff.saturating_mul(
            1u32.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u32::MAX),
        );
        doubled.min(self.max_backoff)
    }

    /// Sleeps for [`RetryPolicy::backoff_after`] the given attempt.
    pub fn wait_after(&self, attempt: u32) {
        let d = self.backoff_after(attempt);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(350),
        };
        assert_eq!(p.backoff_after(1), Duration::from_micros(100));
        assert_eq!(p.backoff_after(2), Duration::from_micros(200));
        assert_eq!(p.backoff_after(3), Duration::from_micros(350), "capped");
        assert_eq!(
            p.backoff_after(64),
            Duration::from_micros(350),
            "shift saturates"
        );
    }

    #[test]
    fn no_retries_policy() {
        let p = RetryPolicy::no_retries();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_after(1), Duration::ZERO);
    }
}
