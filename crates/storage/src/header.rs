//! Per-node header records.
//!
//! §6: "Header information for each node, e.g., the kind of node (text,
//! element, etc.) is often inserted into the XML string stored on disk. ...
//! We will assume that the header information has a PBN number and a Type
//! ID." We store headers out-of-line (a dense table) rather than inline in
//! the string; the space accounting is what the experiments need.

use vh_dataguide::{TypeId, TypedDocument};
use vh_pbn::EncodedPbn;
use vh_xml::{NodeId, NodeKind};

/// The kind byte of a node header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HeaderKind {
    /// Element node.
    Element = 0,
    /// Text node.
    Text = 1,
    /// Comment node.
    Comment = 2,
    /// Processing instruction.
    Pi = 3,
}

impl From<&NodeKind> for HeaderKind {
    fn from(k: &NodeKind) -> Self {
        match k {
            NodeKind::Element { .. } => HeaderKind::Element,
            NodeKind::Text(_) => HeaderKind::Text,
            NodeKind::Comment(_) => HeaderKind::Comment,
            NodeKind::ProcessingInstruction { .. } => HeaderKind::Pi,
        }
    }
}

/// One node header: kind, Type ID, and the compactly encoded PBN number.
#[derive(Clone, Debug)]
pub struct NodeHeader {
    /// Node kind.
    pub kind: HeaderKind,
    /// The node's type in the DataGuide.
    pub type_id: TypeId,
    /// The node's PBN number, compactly encoded.
    pub pbn: EncodedPbn,
}

impl NodeHeader {
    /// Stored size in bytes: 1 (kind) + 4 (type id) + encoded number.
    pub fn size_bytes(&self) -> usize {
        1 + 4 + self.pbn.size()
    }
}

/// The dense header table of a document.
#[derive(Clone, Debug, Default)]
pub struct HeaderTable {
    headers: Vec<NodeHeader>,
}

impl HeaderTable {
    /// Builds headers for every node.
    pub fn build(td: &TypedDocument) -> Self {
        let doc = td.doc();
        let mut headers = Vec::with_capacity(doc.len());
        for i in 0..doc.len() {
            let id = NodeId::from_index(i);
            headers.push(NodeHeader {
                kind: HeaderKind::from(doc.kind(id)),
                type_id: td.type_of(id),
                pbn: EncodedPbn::encode(td.pbn().pbn_of(id)),
            });
        }
        HeaderTable { headers }
    }

    /// The header of a node.
    #[inline]
    pub fn get(&self, id: NodeId) -> &NodeHeader {
        &self.headers[id.index()]
    }

    /// Number of headers.
    #[inline]
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// True if there are no headers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Total stored bytes across all headers.
    pub fn total_bytes(&self) -> usize {
        self.headers.iter().map(NodeHeader::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_dataguide::TypedDocument;
    use vh_xml::builder::paper_figure2;

    #[test]
    fn headers_cover_every_node_with_correct_kinds() {
        let td = TypedDocument::analyze(paper_figure2());
        let t = HeaderTable::build(&td);
        assert_eq!(t.len(), td.doc().len());
        let root = td.doc().root().must();
        assert_eq!(t.get(root).kind, HeaderKind::Element);
        // Find a text node and check kind + number round-trip.
        let text = td
            .doc()
            .preorder()
            .find(|&id| td.doc().kind(id).is_text())
            .must();
        let h = t.get(text);
        assert_eq!(h.kind, HeaderKind::Text);
        assert_eq!(&h.pbn.decode(), td.pbn().pbn_of(text));
        assert_eq!(h.type_id, td.type_of(text));
    }

    #[test]
    fn header_sizes_reflect_encoding() {
        let td = TypedDocument::analyze(paper_figure2());
        let t = HeaderTable::build(&td);
        let root = td.doc().root().must();
        // Root header: 1 + 4 + 1 encoded byte.
        assert_eq!(t.get(root).size_bytes(), 6);
        assert!(t.total_bytes() > 0);
    }
}
