//! The value index: node → byte range of its serialized value.
//!
//! §6: "A critical component in the implementation of an XML DBMS that uses
//! PBN is a value index to quickly find the value of a node given its PBN
//! number. The index maps a node's PBN number to a range of characters in
//! the source data string that forms its XML value." (The paper's worked
//! example maps `1.1.2` to range 29–60.)

use vh_xml::NodeId;

/// Byte range `[start, end)` of a node's value in the stored string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueRange {
    /// Inclusive start offset.
    pub start: u32,
    /// Exclusive end offset.
    pub end: u32,
}

impl ValueRange {
    /// Length of the value in bytes.
    #[inline]
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True for an empty range.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

/// The value index over all nodes of a document, dense by [`NodeId`].
/// PBN-keyed lookups go through the assignment's `node_of` first (O(log n))
/// and then here (O(1)).
#[derive(Clone, Debug, Default)]
pub struct ValueIndex {
    ranges: Vec<ValueRange>,
}

impl ValueIndex {
    /// Creates an index with room for `nodes` entries.
    pub fn with_capacity(nodes: usize) -> Self {
        ValueIndex {
            ranges: vec![ValueRange { start: 0, end: 0 }; nodes],
        }
    }

    /// Records the range of a node.
    // Documented capacity limit: offsets are u32 by design to keep the
    // index at 8 bytes per node; documents over 4 GiB are unsupported.
    #[allow(clippy::expect_used)]
    pub fn set(&mut self, node: NodeId, start: usize, end: usize) {
        self.ranges[node.index()] = ValueRange {
            // vet: allow(no-panic) — documented capacity limit: >4 GiB documents unsupported
            start: u32::try_from(start).expect("document exceeds 4 GiB"),
            // vet: allow(no-panic) — documented capacity limit: >4 GiB documents unsupported
            end: u32::try_from(end).expect("document exceeds 4 GiB"),
        };
    }

    /// The range of a node's value.
    #[inline]
    pub fn get(&self, node: NodeId) -> ValueRange {
        self.ranges[node.index()]
    }

    /// Number of indexed nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if no nodes are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Heap bytes used by the index (space accounting).
    pub fn heap_bytes(&self) -> usize {
        self.ranges.len() * std::mem::size_of::<ValueRange>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut idx = ValueIndex::with_capacity(3);
        idx.set(NodeId::from_index(1), 29, 60);
        let r = idx.get(NodeId::from_index(1));
        assert_eq!((r.start, r.end), (29, 60));
        assert_eq!(r.len(), 31);
        assert!(!r.is_empty());
        assert!(idx.get(NodeId::from_index(0)).is_empty());
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn heap_accounting() {
        let idx = ValueIndex::with_capacity(10);
        assert_eq!(idx.heap_bytes(), 10 * 8);
    }
}
