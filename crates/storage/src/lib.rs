#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-storage — a simulated PBN-based XML store
//!
//! §6 of the paper describes the storage architecture vPBN assumes: "an XML
//! DBMS stores the source XML data as a long string", each node's *value*
//! is a substring of it, a **value index** maps a node's PBN number to the
//! character range of its value, positions are "some combination of a disk
//! block number and offset within the block", and per-node **header
//! information** carries the PBN number and a Type ID. §4.3 additionally
//! assumes a **type index** ("find all the `<title>` elements") keyed by
//! PBN numbers.
//!
//! This crate is that DBMS back end, built from scratch:
//! * [`pages`] — a block-addressed byte store with read accounting (the
//!   stand-in for disk I/O; experiments report pages touched), per-page
//!   CRC32 verification ([`crc`]) and bounded retry ([`retry`]).
//! * [`io`] — the injectable [`io::PageIo`] device boundary; [`faults`]
//!   wraps any device with deterministic, seedable fault injection
//!   (transient errors, bit flips, torn pages).
//! * [`error`] — [`StorageError`]: the crate's fault taxonomy. Reads never
//!   panic on bad pages and never return silently wrong bytes.
//! * [`buffer`] — an LRU buffer pool refining the I/O model with
//!   hit/miss/eviction accounting (cold vs warm experiments) plus
//!   quarantine/refetch of frames that fail verification.
//! * [`value_index`] — PBN → byte-range lookup.
//! * [`type_index`] / [`name_index`] — type- and name-keyed node lists in
//!   document order (PBN-sorted).
//! * [`header`] — per-node header records (kind, Type ID, encoded PBN) and
//!   their space accounting.
//! * [`wal`] — the CRC32-framed write-ahead edit log behind
//!   `Engine::apply`: fsync-ordered appends, torn-tail detection, and
//!   idempotent, quarantine-on-corruption replay.
//! * [`pbn_column`] — the persisted columnar key arena: the document's
//!   encoded PBN keys, offset table and node column written verbatim with
//!   a CRC trailer, so reopening a store rebuilds the numbering without
//!   renumbering the document.
//! * [`store`] — [`StoredDocument`]: everything wired together; implements
//!   [`vh_core::value::RawValueSource`] so virtual values stitch directly
//!   from stored ranges; [`stats`] aggregates access counters.
//!
//! The store is deliberately *not* persistent — the experiments measure
//! algorithmic behaviour (ranges read, pages touched, index rebuild work),
//! not disk hardware.

pub mod buffer;
pub mod crc;
pub mod error;
pub mod faults;
pub mod header;
pub mod io;
pub mod name_index;
pub mod pages;
pub mod pbn_column;
pub mod retry;
pub mod stats;
pub mod store;
pub mod type_index;
pub mod value_index;
pub mod wal;

pub use buffer::{BufferPool, BufferStats};
pub use error::{PageFault, StorageError};
pub use faults::{FaultConfig, FaultyPageIo};
pub use io::{MemPageIo, PageIo};
pub use pages::PageStore;
pub use pbn_column::{decode_arena_column, encode_arena_column};
pub use retry::RetryPolicy;
pub use stats::StorageStats;
pub use store::StoredDocument;
pub use type_index::TypeIndex;
pub use value_index::ValueIndex;
pub use wal::{replay, replay_from_device, EditWal, RecoveryReport, WalRecord};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for unit tests.

    /// Unwraps test fixtures that are valid by construction, printing the
    /// `Debug` payload when the assumption is violated.
    pub trait Must<T> {
        /// Returns the success value or fails the test.
        fn must(self) -> T;
    }

    impl<T, E: std::fmt::Debug> Must<T> for Result<T, E> {
        fn must(self) -> T {
            self.unwrap_or_else(|e| unreachable!("test fixture failed: {e:?}"))
        }
    }

    impl<T> Must<T> for Option<T> {
        fn must(self) -> T {
            self.unwrap_or_else(|| unreachable!("test fixture was None"))
        }
    }
}
