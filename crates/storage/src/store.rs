//! [`StoredDocument`]: the assembled store.
//!
//! Serializes the document once into a [`PageStore`], recording each node's
//! byte range into the [`ValueIndex`] during the same walk, and builds the
//! type, name and header structures. Implements
//! [`vh_core::value::RawValueSource`] so `vh-core`'s §6 value stitcher
//! reads stored ranges (with page accounting) instead of re-serializing.

use crate::buffer::BufferPool;
use crate::error::StorageError;
use crate::faults::FaultConfig;
use crate::header::HeaderTable;
use crate::name_index::NameIndex;
use crate::pages::{PageStore, DEFAULT_PAGE_SIZE};
use crate::pbn_column::{decode_arena_column, encode_arena_column};
use crate::retry::RetryPolicy;
use crate::stats::StorageStats;
use crate::type_index::TypeIndex;
use crate::value_index::ValueIndex;
use vh_core::value::{RawValueSource, ValueError};
use vh_dataguide::TypedDocument;
use vh_pbn::{Pbn, PbnAssignment};
use vh_xml::{serialize, NodeId, NodeKind};

/// A typed document together with its simulated on-disk representation.
#[derive(Debug)]
pub struct StoredDocument {
    td: TypedDocument,
    pages: PageStore,
    values: ValueIndex,
    types: TypeIndex,
    names: NameIndex,
    headers: HeaderTable,
    pbn_column: Vec<u8>,
    pool: Option<BufferPool>,
}

impl StoredDocument {
    /// Builds the store with the default page size.
    pub fn build(td: TypedDocument) -> Self {
        Self::build_with_page_size(td, DEFAULT_PAGE_SIZE)
    }

    /// Builds the store with an explicit page size.
    pub fn build_with_page_size(td: TypedDocument, page_size: usize) -> Self {
        Self::build_inner(td, page_size, None)
    }

    /// Builds the store on a deterministic fault-injecting device (see
    /// [`FaultConfig`]): reads go through checksum verification and retry,
    /// so injected faults either heal or surface as [`StorageError`]s.
    pub fn build_with_faults(td: TypedDocument, page_size: usize, faults: FaultConfig) -> Self {
        Self::build_inner(td, page_size, Some(faults))
    }

    fn build_inner(td: TypedDocument, page_size: usize, faults: Option<FaultConfig>) -> Self {
        let (data, values) = serialize_with_ranges(&td);
        let pages = match faults {
            Some(cfg) => PageStore::with_fault_injection(data, page_size, cfg),
            None => PageStore::with_page_size(data, page_size),
        };
        let types = TypeIndex::build(&td);
        let names = NameIndex::build(&td);
        let headers = HeaderTable::build(&td);
        let pbn_column = encode_arena_column(td.pbn());
        StoredDocument {
            td,
            pages,
            values,
            types,
            names,
            headers,
            pbn_column,
            pool: None,
        }
    }

    /// Replaces the page-read retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.pages.set_retry_policy(retry);
        self
    }

    /// Attaches an LRU buffer pool of `frames` pages; subsequent reads
    /// through [`StoredDocument::value_of`] are classified as hits or
    /// misses (see [`StoredDocument::buffer_stats`]).
    pub fn with_buffer_pool(mut self, frames: usize) -> Self {
        self.pool = Some(BufferPool::new(frames));
        self
    }

    /// Buffer-pool counters, if a pool is attached.
    pub fn buffer_stats(&self) -> Option<crate::buffer::BufferStats> {
        self.pool.as_ref().map(BufferPool::stats)
    }

    /// The attached buffer pool, if any.
    pub fn buffer_pool(&self) -> Option<&BufferPool> {
        self.pool.as_ref()
    }

    /// The typed document.
    #[inline]
    pub fn typed(&self) -> &TypedDocument {
        &self.td
    }

    /// The paged document string.
    #[inline]
    pub fn pages(&self) -> &PageStore {
        &self.pages
    }

    /// The value index.
    #[inline]
    pub fn values(&self) -> &ValueIndex {
        &self.values
    }

    /// The type index.
    #[inline]
    pub fn types(&self) -> &TypeIndex {
        &self.types
    }

    /// The name index.
    #[inline]
    pub fn names(&self) -> &NameIndex {
        &self.names
    }

    /// The node header table.
    #[inline]
    pub fn headers(&self) -> &HeaderTable {
        &self.headers
    }

    /// The persisted PBN key-arena column image (see
    /// [`crate::pbn_column`]).
    #[inline]
    pub fn pbn_column(&self) -> &[u8] {
        &self.pbn_column
    }

    /// Reconstructs the document's PBN assignment from the persisted
    /// column image, as reopening the store from disk would — the columns
    /// are validated and wrapped, never renumbered. The result is
    /// byte-identical to `self.typed().pbn()`.
    pub fn reopen_pbn(&self) -> Result<PbnAssignment, StorageError> {
        decode_arena_column(&self.pbn_column)
    }

    /// The stored value of a node, read through the page layer (charged;
    /// served and verified via the buffer pool when one is attached).
    /// Transient faults are retried; persistent corruption surfaces as
    /// [`StorageError::Corrupt`] — never as wrong bytes.
    pub fn value_of(&self, id: NodeId) -> Result<String, StorageError> {
        let r = self.values.get(id);
        self.pages
            .read_range_with_pool(r.start as usize, r.end as usize, self.pool.as_ref())
    }

    /// The stored value looked up by PBN number, as §6 describes.
    /// `Ok(None)` means the number names no node; `Err` is a storage fault.
    pub fn value_of_pbn(&self, pbn: &Pbn) -> Result<Option<String>, StorageError> {
        self.td
            .pbn()
            .node_of(pbn)
            .map(|id| self.value_of(id))
            .transpose()
    }

    /// Current sizes and access counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            document_bytes: self.pages.len(),
            document_pages: self.pages.page_count(),
            value_index_bytes: self.values.heap_bytes(),
            type_index_bytes: self.types.heap_bytes(),
            name_index_bytes: self.names.heap_bytes(),
            header_bytes: self.headers.total_bytes(),
            pbn_column_bytes: self.pbn_column.len(),
            pages_read: self.pages.pages_read(),
            bytes_read: self.pages.bytes_read(),
            read_retries: self.pages.read_retries(),
            transient_faults: self.pages.transient_faults(),
            checksum_failures: self.pages.checksum_failures(),
            quarantines: self.pool.as_ref().map_or(0, |p| p.stats().quarantines),
        }
    }

    /// Resets the I/O counters (between experiment runs).
    pub fn reset_counters(&self) {
        self.pages.reset_counters();
    }
}

impl RawValueSource for StoredDocument {
    fn append_raw_value(&self, node: NodeId, out: &mut String) -> Result<(), ValueError> {
        out.push_str(&self.value_of(node).map_err(ValueError::new)?);
        Ok(())
    }
}

/// Serializes compactly while recording every node's byte range.
///
/// The ranges follow §6's definition: an element's value runs from its
/// start tag through its end tag; a text node's value is its escaped text.
fn serialize_with_ranges(td: &TypedDocument) -> (String, ValueIndex) {
    let doc = td.doc();
    let mut out = String::new();
    let mut values = ValueIndex::with_capacity(doc.len());
    // Explicit stack of (node, phase): phase 0 = open, 1 = close.
    enum Step {
        Open(NodeId),
        Close(NodeId),
    }
    let mut stack: Vec<Step> = doc.root().map(Step::Open).into_iter().collect();
    let mut starts: Vec<usize> = vec![0; doc.len()];
    while let Some(step) = stack.pop() {
        match step {
            Step::Open(id) => {
                starts[id.index()] = out.len();
                match doc.kind(id) {
                    NodeKind::Element { .. } => {
                        let closed = serialize::write_start_tag(doc, id, &mut out);
                        if closed {
                            values.set(id, starts[id.index()], out.len());
                        } else {
                            stack.push(Step::Close(id));
                            for &c in doc.children(id).iter().rev() {
                                stack.push(Step::Open(c));
                            }
                        }
                    }
                    NodeKind::Text(t) => {
                        vh_xml::escape::escape_text_into(&mut out, t);
                        values.set(id, starts[id.index()], out.len());
                    }
                    NodeKind::Comment(c) => {
                        out.push_str("<!--");
                        out.push_str(c);
                        out.push_str("-->");
                        values.set(id, starts[id.index()], out.len());
                    }
                    NodeKind::ProcessingInstruction { target, data } => {
                        out.push_str("<?");
                        out.push_str(target);
                        if !data.is_empty() {
                            out.push(' ');
                            out.push_str(data);
                        }
                        out.push_str("?>");
                        values.set(id, starts[id.index()], out.len());
                    }
                }
            }
            Step::Close(id) => {
                serialize::write_end_tag(doc, id, &mut out);
                values.set(id, starts[id.index()], out.len());
            }
        }
    }
    (out, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_pbn::pbn;
    use vh_xml::builder::paper_figure2;
    use vh_xml::SerializeOptions;

    type R = Result<(), Box<dyn std::error::Error>>;

    fn store() -> StoredDocument {
        StoredDocument::build(TypedDocument::analyze(paper_figure2()))
    }

    #[test]
    fn stored_string_equals_compact_serialization() {
        let s = store();
        assert_eq!(
            s.pages().raw(),
            serialize::serialize(s.typed().doc(), SerializeOptions::compact())
        );
    }

    #[test]
    fn value_ranges_are_the_node_serializations() -> R {
        let s = store();
        let doc = s.typed().doc();
        for id in doc.preorder() {
            let expected = serialize::serialize_node(doc, id, SerializeOptions::compact());
            assert_eq!(s.value_of(id)?, expected, "node {:?}", doc.kind(id));
        }
        Ok(())
    }

    #[test]
    fn pbn_keyed_value_lookup_matches_section_6() -> R {
        // §6's example: the value of the first <author> (1.1.2) is
        // "<author><name>C</name></author>".
        let s = store();
        assert_eq!(
            s.value_of_pbn(&pbn![1, 1, 2])?.as_deref(),
            Some("<author><name>C</name></author>")
        );
        assert_eq!(s.value_of_pbn(&pbn![9, 9])?, None);
        Ok(())
    }

    #[test]
    fn reads_are_charged_and_resettable() -> R {
        let s = store();
        s.reset_counters();
        let _ = s.value_of_pbn(&pbn![1])?;
        let st = s.stats();
        assert!(st.pages_read >= 1);
        assert_eq!(st.bytes_read as usize, s.pages().len());
        s.reset_counters();
        assert_eq!(s.stats().pages_read, 0);
        Ok(())
    }

    #[test]
    fn raw_value_source_stitches_virtual_values_from_store() -> R {
        use vh_core::value::virtual_value;
        use vh_core::VirtualDocument;
        let s = store();
        let vd = VirtualDocument::open(s.typed(), "title { author { name } }")?;
        let title1 = vd.roots()[0];
        s.reset_counters();
        let (v, stats) = virtual_value(&vd, &s, title1)?;
        assert_eq!(v, "<title>X<author><name>C</name></author></title>");
        assert_eq!(stats.raw_copies, 2);
        // The raw copies came from the page store.
        assert!(s.stats().pages_read >= 1);
        assert!(s.stats().bytes_read > 0);
        Ok(())
    }

    #[test]
    fn buffer_pool_classifies_repeated_reads() -> R {
        let s = StoredDocument::build_with_page_size(
            TypedDocument::analyze(paper_figure2()),
            32, // tiny pages so values span several
        )
        .with_buffer_pool(4);
        let root = s.typed().doc().root().ok_or("empty document")?;
        let book1 = s.typed().doc().children(root)[0];
        let _ = s.value_of(book1)?;
        let cold = s.buffer_stats().ok_or("pool attached")?;
        assert!(cold.misses > 0);
        assert_eq!(cold.hits, 0);
        let _ = s.value_of(book1)?;
        let warm = s.buffer_stats().ok_or("pool attached")?;
        assert!(warm.hits > 0, "second read hits the pool: {warm:?}");
        // A store without a pool reports no buffer stats.
        let plain = StoredDocument::build(TypedDocument::analyze(paper_figure2()));
        assert!(plain.buffer_stats().is_none());
        Ok(())
    }

    #[test]
    fn reopened_pbn_assignment_is_byte_identical() -> R {
        let s = store();
        let reopened = s.reopen_pbn()?;
        let original = s.typed().pbn();
        assert_eq!(reopened.arena(), original.arena());
        assert_eq!(reopened.in_document_order(), original.in_document_order());
        for id in s.typed().doc().preorder() {
            assert_eq!(reopened.key_of(id), original.key_of(id));
        }
        Ok(())
    }

    #[test]
    fn stats_cover_all_components() {
        let s = store();
        let st = s.stats();
        assert!(st.document_bytes > 0);
        assert!(st.value_index_bytes > 0);
        assert!(st.type_index_bytes > 0);
        assert!(st.name_index_bytes > 0);
        assert!(st.header_bytes > 0);
        assert!(st.pbn_column_bytes > 0);
        assert_eq!(st.document_pages, 1, "small document fits one page");
        assert!(st.total_bytes() > st.document_bytes);
    }
}
