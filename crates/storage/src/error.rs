//! Storage fault taxonomy.
//!
//! Two layers: [`PageFault`] is what a raw [`crate::io::PageIo`] device
//! reports for one page access; [`StorageError`] is what the store surfaces
//! to callers after checksum verification and bounded retry have run their
//! course. A `StorageError` therefore always describes a *final* outcome —
//! transient faults that were retried to success never escape.

use std::fmt;

/// A single page access failing at the device level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageFault {
    /// The device failed this attempt but a retry may succeed (e.g. a
    /// simulated bus error or lost interrupt).
    Transient,
    /// The requested page does not exist on the device.
    OutOfBounds,
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageFault::Transient => write!(f, "transient device fault"),
            PageFault::OutOfBounds => write!(f, "page out of bounds"),
        }
    }
}

impl std::error::Error for PageFault {}

/// A storage operation that could not be completed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// Transient device faults persisted through every retry attempt.
    Transient {
        /// The page that kept faulting.
        page: usize,
        /// Total attempts made (including the first).
        attempts: u32,
    },
    /// A page's content failed CRC32 verification on every attempt: the
    /// stored data is corrupt (bit rot, torn write), not merely unlucky.
    Corrupt {
        /// The page whose checksum never matched.
        page: usize,
    },
    /// A read requested bytes outside the stored string.
    OutOfBounds {
        /// Requested start offset (inclusive).
        start: usize,
        /// Requested end offset (exclusive).
        end: usize,
        /// Actual length of the stored string.
        len: usize,
    },
    /// A persisted index column failed structural validation on load
    /// (bad magic, truncated image, CRC mismatch, malformed PBN keys).
    BadColumn {
        /// Which column failed (e.g. `"pbn"`).
        column: &'static str,
        /// Why it was rejected; includes the layer error's own code when
        /// one exists (e.g. `PBN_TRUNCATED`).
        reason: String,
    },
}

impl StorageError {
    /// Short machine-readable code, stable across Display changes.
    pub fn code(&self) -> &'static str {
        match self {
            StorageError::Transient { .. } => "STORAGE_TRANSIENT",
            StorageError::Corrupt { .. } => "STORAGE_CORRUPT",
            StorageError::OutOfBounds { .. } => "STORAGE_OOB",
            StorageError::BadColumn { .. } => "STORAGE_BAD_COLUMN",
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Transient { page, attempts } => {
                write!(f, "page {page} still faulting after {attempts} attempts")
            }
            StorageError::Corrupt { page } => {
                write!(f, "page {page} failed checksum verification (corrupt)")
            }
            StorageError::OutOfBounds { start, end, len } => write!(
                f,
                "byte range {start}..{end} out of bounds (stored length {len})"
            ),
            StorageError::BadColumn { column, reason } => {
                write!(f, "persisted {column} column rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_messages_are_distinct() {
        let errs = [
            StorageError::Transient {
                page: 3,
                attempts: 4,
            },
            StorageError::Corrupt { page: 3 },
            StorageError::OutOfBounds {
                start: 1,
                end: 9,
                len: 4,
            },
            StorageError::BadColumn {
                column: "pbn",
                reason: "offset table is not monotone".into(),
            },
        ];
        let codes: std::collections::HashSet<_> = errs.iter().map(|e| e.code()).collect();
        assert_eq!(codes.len(), errs.len());
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
