//! Block-addressed storage of the document string, with read accounting.
//!
//! The paper (§6): character positions in the value index "are usually some
//! combination of a disk block number and offset within the block to
//! facilitate fast retrieval from disk". We keep the string in memory but
//! address it through fixed-size pages and count every page touched — the
//! unit the experiments report as simulated I/O.

use std::cell::Cell;

/// Default page size (a common DBMS block size).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// The paged document string.
#[derive(Debug)]
pub struct PageStore {
    data: String,
    page_size: usize,
    pages_read: Cell<u64>,
    bytes_read: Cell<u64>,
}

impl PageStore {
    /// Wraps a serialized document string with the default page size.
    pub fn new(data: String) -> Self {
        Self::with_page_size(data, DEFAULT_PAGE_SIZE)
    }

    /// Wraps a string with an explicit page size.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn with_page_size(data: String, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        PageStore {
            data,
            page_size,
            pages_read: Cell::new(0),
            bytes_read: Cell::new(0),
        }
    }

    /// Total size of the stored string in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for an empty store.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> usize {
        self.data.len().div_ceil(self.page_size)
    }

    /// The page size.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Reads the byte range `[start, end)`, charging the pages it spans.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or not on character boundaries.
    pub fn read_range(&self, start: usize, end: usize) -> &str {
        assert!(start <= end && end <= self.data.len(), "range out of bounds");
        if start < end {
            let first = start / self.page_size;
            let last = (end - 1) / self.page_size;
            self.pages_read
                .set(self.pages_read.get() + (last - first + 1) as u64);
            self.bytes_read.set(self.bytes_read.get() + (end - start) as u64);
        }
        &self.data[start..end]
    }

    /// Direct access without accounting (used when building indexes, which
    /// the experiments charge separately).
    #[inline]
    pub fn raw(&self) -> &str {
        &self.data
    }

    /// Pages charged so far.
    #[inline]
    pub fn pages_read(&self) -> u64 {
        self.pages_read.get()
    }

    /// Bytes charged so far.
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Resets the access counters.
    pub fn reset_counters(&self) {
        self.pages_read.set(0);
        self.bytes_read.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_range_returns_the_slice() {
        let s = PageStore::with_page_size("hello world".into(), 4);
        assert_eq!(s.read_range(0, 5), "hello");
        assert_eq!(s.read_range(6, 11), "world");
        assert_eq!(s.read_range(3, 3), "");
    }

    #[test]
    fn page_accounting_counts_spanned_pages() {
        let s = PageStore::with_page_size("0123456789abcdef".into(), 4);
        s.read_range(0, 4); // page 0 only
        assert_eq!(s.pages_read(), 1);
        s.read_range(3, 5); // pages 0-1
        assert_eq!(s.pages_read(), 3);
        s.read_range(0, 16); // all 4 pages
        assert_eq!(s.pages_read(), 7);
        assert_eq!(s.bytes_read(), 4 + 2 + 16);
        s.reset_counters();
        assert_eq!(s.pages_read(), 0);
        assert_eq!(s.bytes_read(), 0);
    }

    #[test]
    fn empty_reads_are_free() {
        let s = PageStore::with_page_size("abc".into(), 4);
        s.read_range(1, 1);
        assert_eq!(s.pages_read(), 0);
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(PageStore::with_page_size("12345".into(), 4).page_count(), 2);
        assert_eq!(PageStore::with_page_size("1234".into(), 4).page_count(), 1);
        assert_eq!(PageStore::with_page_size(String::new(), 4).page_count(), 0);
    }

    #[test]
    #[should_panic(expected = "range out of bounds")]
    fn out_of_bounds_read_panics() {
        let s = PageStore::new("abc".into());
        s.read_range(0, 4);
    }
}
