//! Block-addressed storage of the document string, with read accounting,
//! per-page CRC32 checksums, fault-tolerant reads and retry.
//!
//! The paper (§6): character positions in the value index "are usually some
//! combination of a disk block number and offset within the block to
//! facilitate fast retrieval from disk". The string is held in memory but
//! addressed through fixed-size pages served by an injectable [`PageIo`]
//! device. Every page delivered by the device is verified against a CRC32
//! captured at build time; transient faults are retried with exponential
//! backoff ([`RetryPolicy`]), and pages that never verify surface as
//! [`StorageError::Corrupt`] — a query sees an error, never silently wrong
//! bytes. All of it is counted: pages/bytes read (the unit the experiments
//! report as simulated I/O) plus retries, transient faults and checksum
//! failures.

use crate::buffer::BufferPool;
use crate::crc::crc32;
use crate::error::{PageFault, StorageError};
use crate::faults::{FaultConfig, FaultyPageIo};
use crate::io::{MemPageIo, PageIo};
use crate::retry::RetryPolicy;
use std::cell::Cell;

/// Default page size (a common DBMS block size).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// The paged document string.
#[derive(Debug)]
pub struct PageStore {
    /// Pristine logical content, captured at build time. This is the
    /// ground truth the checksums were computed from; the device serves
    /// (possibly faulty) copies of it.
    data: String,
    io: Box<dyn PageIo>,
    checksums: Vec<u32>,
    page_size: usize,
    retry: RetryPolicy,
    pages_read: Cell<u64>,
    bytes_read: Cell<u64>,
    read_retries: Cell<u64>,
    transient_faults: Cell<u64>,
    checksum_failures: Cell<u64>,
}

impl PageStore {
    /// Wraps a serialized document string with the default page size.
    pub fn new(data: String) -> Self {
        Self::with_page_size(data, DEFAULT_PAGE_SIZE)
    }

    /// Wraps a string with an explicit page size, served by the in-memory
    /// reference device (no faults).
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn with_page_size(data: String, page_size: usize) -> Self {
        let io = MemPageIo::new(data.clone().into_bytes(), page_size);
        Self::with_io(data, page_size, Box::new(io))
    }

    /// Wraps a string served by a deterministic fault-injecting device
    /// (see [`FaultConfig`]). Checksums still come from the pristine data,
    /// so injected corruption is detected on read.
    pub fn with_fault_injection(data: String, page_size: usize, faults: FaultConfig) -> Self {
        let inner = MemPageIo::new(data.clone().into_bytes(), page_size);
        let io = FaultyPageIo::new(inner, faults);
        Self::with_io(data, page_size, Box::new(io))
    }

    /// Wraps a string served by an arbitrary [`PageIo`] device.
    ///
    /// # Panics
    /// Panics if `page_size` is zero or the device disagrees about the
    /// page size (construction-time invariants).
    pub fn with_io(data: String, page_size: usize, io: Box<dyn PageIo>) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert_eq!(io.page_size(), page_size, "device page size mismatch");
        let checksums = data.as_bytes().chunks(page_size).map(crc32).collect();
        PageStore {
            data,
            io,
            checksums,
            page_size,
            retry: RetryPolicy::default(),
            pages_read: Cell::new(0),
            bytes_read: Cell::new(0),
            read_retries: Cell::new(0),
            transient_faults: Cell::new(0),
            checksum_failures: Cell::new(0),
        }
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the retry policy in place.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Total size of the stored string in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for an empty store.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pages occupied.
    pub fn page_count(&self) -> usize {
        self.data.len().div_ceil(self.page_size)
    }

    /// The page size.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The CRC32 checksum recorded for `page` at build time, if it exists.
    pub fn checksum_of(&self, page: usize) -> Option<u32> {
        self.checksums.get(page).copied()
    }

    /// Reads the byte range `[start, end)` through the device, charging
    /// the pages it spans. Each page is CRC-verified; transient faults are
    /// retried per the [`RetryPolicy`].
    pub fn read_range(&self, start: usize, end: usize) -> Result<String, StorageError> {
        self.read_range_with_pool(start, end, None)
    }

    /// [`PageStore::read_range`] with an optional buffer pool: resident
    /// frames are served from memory (verified — a frame failing its
    /// checksum is quarantined and refetched from the device), missing
    /// pages are fetched, verified and cached.
    pub fn read_range_with_pool(
        &self,
        start: usize,
        end: usize,
        pool: Option<&BufferPool>,
    ) -> Result<String, StorageError> {
        if start > end || end > self.data.len() {
            return Err(StorageError::OutOfBounds {
                start,
                end,
                len: self.data.len(),
            });
        }
        if start == end {
            return Ok(String::new());
        }
        let first = start / self.page_size;
        let last = (end - 1) / self.page_size;
        let mut out: Vec<u8> = Vec::with_capacity(end - start);
        for page in first..=last {
            let bytes = self.page_via_pool(page, pool)?;
            let page_base = page * self.page_size;
            let lo = start.saturating_sub(page_base);
            let hi = (end - page_base).min(bytes.len());
            out.extend_from_slice(&bytes[lo..hi]);
        }
        self.bytes_read
            .set(self.bytes_read.get() + (end - start) as u64);
        // Every page was CRC-verified against the pristine string, so the
        // assembled bytes are valid UTF-8; treat a mismatch as corruption
        // rather than panicking.
        String::from_utf8(out).map_err(|_| StorageError::Corrupt { page: first })
    }

    /// One verified page, via the pool when present.
    fn page_via_pool(
        &self,
        page: usize,
        pool: Option<&BufferPool>,
    ) -> Result<Vec<u8>, StorageError> {
        let Some(pool) = pool else {
            return self.fetch_page(page);
        };
        if let Some(frame) = pool.lookup(page) {
            if self
                .checksum_of(page)
                .is_some_and(|sum| crc32(&frame) == sum)
            {
                return Ok(frame);
            }
            // Resident frame no longer verifies: quarantine it and go back
            // to the device for a clean copy.
            self.checksum_failures.set(self.checksum_failures.get() + 1);
            pool.quarantine(page);
        }
        let bytes = self.fetch_page(page)?;
        pool.insert(page, bytes.clone());
        Ok(bytes)
    }

    /// Fetches one page from the device, verifying its checksum, retrying
    /// transient faults and checksum failures per the [`RetryPolicy`].
    fn fetch_page(&self, page: usize) -> Result<Vec<u8>, StorageError> {
        let expected = self.checksum_of(page).ok_or(StorageError::OutOfBounds {
            start: page * self.page_size,
            end: (page + 1) * self.page_size,
            len: self.data.len(),
        })?;
        let mut buf = Vec::new();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Every arm either returns or reports what kind of failure this
            // attempt was, so the exhaustion error below names the right
            // final cause.
            let last_failure_was_checksum = match self.io.read_page(page, &mut buf) {
                Ok(()) => {
                    self.pages_read.set(self.pages_read.get() + 1);
                    if crc32(&buf) == expected {
                        return Ok(std::mem::take(&mut buf));
                    }
                    self.checksum_failures.set(self.checksum_failures.get() + 1);
                    true
                }
                Err(PageFault::Transient) => {
                    self.transient_faults.set(self.transient_faults.get() + 1);
                    false
                }
                Err(PageFault::OutOfBounds) => {
                    return Err(StorageError::OutOfBounds {
                        start: page * self.page_size,
                        end: (page + 1) * self.page_size,
                        len: self.data.len(),
                    });
                }
            };
            if attempt >= self.retry.max_attempts.max(1) {
                return Err(if last_failure_was_checksum {
                    StorageError::Corrupt { page }
                } else {
                    StorageError::Transient {
                        page,
                        attempts: attempt,
                    }
                });
            }
            self.read_retries.set(self.read_retries.get() + 1);
            self.retry.wait_after(attempt);
        }
    }

    /// Direct access to the pristine string without accounting or fault
    /// simulation (used when building indexes, which the experiments
    /// charge separately, and as the oracle in fault-injection tests).
    #[inline]
    pub fn raw(&self) -> &str {
        &self.data
    }

    /// Pages fetched from the device so far (includes re-reads forced by
    /// retries and quarantines; excludes buffer-pool hits).
    #[inline]
    pub fn pages_read(&self) -> u64 {
        self.pages_read.get()
    }

    /// Logical bytes served to callers so far (pool hits included).
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Retry attempts performed after a failed page read.
    #[inline]
    pub fn read_retries(&self) -> u64 {
        self.read_retries.get()
    }

    /// Transient device faults observed (whether or not a retry healed them).
    #[inline]
    pub fn transient_faults(&self) -> u64 {
        self.transient_faults.get()
    }

    /// Pages delivered whose CRC32 did not match the build-time checksum.
    #[inline]
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_failures.get()
    }

    /// Resets the access and fault counters.
    pub fn reset_counters(&self) {
        self.pages_read.set(0);
        self.bytes_read.set(0);
        self.read_retries.set(0);
        self.transient_faults.set(0);
        self.checksum_failures.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    type R = Result<(), StorageError>;

    #[test]
    fn read_range_returns_the_slice() -> R {
        let s = PageStore::with_page_size("hello world".into(), 4);
        assert_eq!(s.read_range(0, 5)?, "hello");
        assert_eq!(s.read_range(6, 11)?, "world");
        assert_eq!(s.read_range(3, 3)?, "");
        Ok(())
    }

    #[test]
    fn page_accounting_counts_spanned_pages() -> R {
        let s = PageStore::with_page_size("0123456789abcdef".into(), 4);
        s.read_range(0, 4)?; // page 0 only
        assert_eq!(s.pages_read(), 1);
        s.read_range(3, 5)?; // pages 0-1
        assert_eq!(s.pages_read(), 3);
        s.read_range(0, 16)?; // all 4 pages
        assert_eq!(s.pages_read(), 7);
        assert_eq!(s.bytes_read(), 4 + 2 + 16);
        s.reset_counters();
        assert_eq!(s.pages_read(), 0);
        assert_eq!(s.bytes_read(), 0);
        Ok(())
    }

    #[test]
    fn empty_reads_are_free() -> R {
        let s = PageStore::with_page_size("abc".into(), 4);
        s.read_range(1, 1)?;
        assert_eq!(s.pages_read(), 0);
        Ok(())
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(PageStore::with_page_size("12345".into(), 4).page_count(), 2);
        assert_eq!(PageStore::with_page_size("1234".into(), 4).page_count(), 1);
        assert_eq!(PageStore::with_page_size(String::new(), 4).page_count(), 0);
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let s = PageStore::new("abc".into());
        assert_eq!(
            s.read_range(0, 4),
            Err(StorageError::OutOfBounds {
                start: 0,
                end: 4,
                len: 3
            })
        );
        assert_eq!(
            s.read_range(2, 1),
            Err(StorageError::OutOfBounds {
                start: 2,
                end: 1,
                len: 3
            })
        );
    }

    #[test]
    fn transient_faults_are_retried_to_success() -> R {
        let s = PageStore::with_fault_injection(
            "0123456789abcdef".into(),
            4,
            FaultConfig::with_seed(42).transient_read_rate(0.5),
        )
        .with_retry_policy(RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        });
        for _ in 0..16 {
            assert_eq!(s.read_range(0, 16)?, "0123456789abcdef");
        }
        assert!(s.transient_faults() > 0, "seed produced no faults");
        assert_eq!(s.read_retries(), s.transient_faults());
        Ok(())
    }

    #[test]
    fn exhausted_retries_surface_transient_error() {
        let s = PageStore::with_fault_injection(
            "data".into(),
            4,
            FaultConfig::with_seed(1).transient_read_rate(1.0),
        )
        .with_retry_policy(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        assert_eq!(
            s.read_range(0, 4),
            Err(StorageError::Transient {
                page: 0,
                attempts: 3
            })
        );
        assert_eq!(s.transient_faults(), 3);
        assert_eq!(s.read_retries(), 2);
    }

    #[test]
    fn torn_page_is_detected_as_corrupt() {
        let s = PageStore::with_fault_injection(
            "0123456789abcdef".into(),
            4,
            FaultConfig::with_seed(5).torn_page(2),
        );
        assert_eq!(s.read_range(0, 8).must(), "01234567");
        assert_eq!(s.read_range(8, 16), Err(StorageError::Corrupt { page: 2 }));
        assert!(s.checksum_failures() > 0);
    }

    #[test]
    fn bit_flips_are_healed_by_refetch() -> R {
        // Flip a bit on roughly every third delivery: verification must
        // reject those deliveries and the retry must converge on clean
        // data — the caller never observes corrupted bytes.
        let s = PageStore::with_fault_injection(
            "0123456789abcdef".into(),
            4,
            FaultConfig::with_seed(11).bit_flip_rate(0.3),
        )
        .with_retry_policy(RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        });
        for _ in 0..32 {
            assert_eq!(s.read_range(0, 16)?, "0123456789abcdef");
        }
        assert!(s.checksum_failures() > 0, "seed produced no flips");
        Ok(())
    }

    #[test]
    fn checksums_are_exposed_per_page() {
        let s = PageStore::with_page_size("0123456789".into(), 4);
        assert_eq!(s.checksum_of(0), Some(crc32(b"0123")));
        assert_eq!(s.checksum_of(2), Some(crc32(b"89")));
        assert_eq!(s.checksum_of(3), None);
    }
}
