//! The CRC32-framed write-ahead edit log.
//!
//! Edits become durable *before* they touch in-memory state: the engine
//! appends an encoded edit to the WAL, syncs, and only then mutates the
//! document. After a crash, replaying the log over the last persisted
//! document reproduces every acknowledged edit.
//!
//! ## On-media format
//!
//! ```text
//! header  := magic "VHWAL" · version 0x01 · 2 zero pad bytes   (8 bytes)
//! frame   := marker 0xA5 · seq u64-LE · len u32-LE · crc u32-LE · payload
//! crc     := crc32(seq-bytes · len-bytes · payload)
//! ```
//!
//! Sequence numbers start at 1 and increase by exactly 1 per frame, so
//! replay is idempotent: a consumer that has already applied edits up to
//! `n` skips every frame with `seq <= n`.
//!
//! ## Recovery discipline
//!
//! [`replay`] walks frames left to right and stops at the **first**
//! malformed one — a wrong marker, a truncated frame, a CRC mismatch, or
//! a sequence discontinuity. Everything before it is returned as good
//! records; everything from it on is *quarantined* (counted, reported,
//! never applied, never trusted). A torn final frame — the expected
//! signature of a crash mid-append — is therefore handled identically to
//! bit rot in the middle: the valid prefix survives, the report says
//! exactly what was dropped, and nothing panics. Only a bad *header*
//! escalates to [`StorageError`]: with no trustworthy prefix at all, the
//! caller must decide, not silently continue.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::io::PageIo;
use crate::retry::RetryPolicy;

/// Log file magic: `VHWAL` + format version 1 + padding.
pub const WAL_MAGIC: [u8; 8] = *b"VHWAL\x01\0\0";

/// Start-of-frame marker byte.
pub const FRAME_MARKER: u8 = 0xA5;

/// Bytes of a frame before the payload: marker + seq + len + crc.
pub const FRAME_HEADER_LEN: usize = 1 + 8 + 4 + 4;

/// One acknowledged edit recovered from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Edit sequence number (1-based, dense).
    pub seq: u64,
    /// The encoded edit, exactly as appended.
    pub payload: Vec<u8>,
}

/// What [`replay`] found: the valid prefix, plus an account of any
/// quarantined tail. `quarantined_bytes == 0` means a clean log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Number of intact records recovered.
    pub records: usize,
    /// Highest sequence number recovered (0 when the log is empty).
    pub last_seq: u64,
    /// Bytes from the first malformed frame to the end of the log —
    /// dropped, never applied.
    pub quarantined_bytes: usize,
    /// Byte offset of the first malformed frame, if any.
    pub first_bad_offset: Option<usize>,
    /// Why the tail was quarantined (`"torn frame"`, `"crc mismatch"`, …).
    pub reason: Option<String>,
}

impl RecoveryReport {
    /// True when the whole log replayed intact.
    pub fn is_clean(&self) -> bool {
        self.quarantined_bytes == 0
    }

    /// A JSON rendering for CI artifacts and `vpbn recover --dump`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"records\":{},\"last_seq\":{},\"quarantined_bytes\":{},\"first_bad_offset\":{},\"reason\":{}}}",
            self.records,
            self.last_seq,
            self.quarantined_bytes,
            self.first_bad_offset
                .map_or("null".to_string(), |o| o.to_string()),
            self.reason
                .as_ref()
                .map_or("null".to_string(), |r| format!("{r:?}")),
        )
    }
}

/// An append-only edit log over an in-memory byte image, modelling the
/// durability boundary explicitly: [`EditWal::append`] only *stages*
/// bytes, [`EditWal::sync`] makes them durable, and [`EditWal::crash`]
/// throws away everything after the last sync (plus, optionally, part of
/// the final synced write — a torn append).
#[derive(Clone, Debug)]
pub struct EditWal {
    bytes: Vec<u8>,
    /// Length the simulated medium is guaranteed to retain.
    synced_len: usize,
    next_seq: u64,
}

impl EditWal {
    /// A fresh, empty log (header only, already durable).
    pub fn new() -> Self {
        EditWal {
            bytes: WAL_MAGIC.to_vec(),
            synced_len: WAL_MAGIC.len(),
            next_seq: 1,
        }
    }

    /// Adopts an existing log image (e.g. read back from a file). The
    /// image is validated by [`replay`]; this constructor just positions
    /// the append cursor after the last *valid* frame, truncating any
    /// quarantined tail so new appends never interleave with garbage.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<(Self, RecoveryReport), StorageError> {
        let (records, report) = replay(&bytes)?;
        let keep = report.first_bad_offset.unwrap_or(bytes.len());
        let mut bytes = bytes;
        bytes.truncate(keep);
        let next_seq = records.last().map_or(1, |r| r.seq + 1);
        Ok((
            EditWal {
                bytes,
                synced_len: keep,
                next_seq,
            },
            report,
        ))
    }

    /// Appends one encoded edit, returning its sequence number. The frame
    /// is **staged only** — it becomes durable at the next [`sync`].
    ///
    /// [`sync`]: EditWal::sync
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut body = Vec::with_capacity(12 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(payload);
        self.bytes.push(FRAME_MARKER);
        self.bytes.extend_from_slice(&body[..12]);
        self.bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        self.bytes.extend_from_slice(payload);
        seq
    }

    /// Makes every staged byte durable (fsync).
    pub fn sync(&mut self) {
        self.synced_len = self.bytes.len();
    }

    /// Simulates a crash: unsynced bytes are lost, except that `torn`
    /// bytes of the unsynced tail survive (a partial write that reached
    /// the medium before power loss — exactly the torn-tail case replay
    /// must quarantine).
    pub fn crash(&mut self, torn: usize) {
        let keep = (self.synced_len + torn).min(self.bytes.len());
        self.bytes.truncate(keep);
        self.synced_len = self.synced_len.min(keep);
        // The next append after recovery restarts from the replayed seq;
        // leave `next_seq` to `from_bytes`.
    }

    /// The full log image (durable + staged).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bytes guaranteed durable.
    pub fn synced_len(&self) -> usize {
        self.synced_len
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Total log size in bytes (header + frames), for space accounting.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.bytes.len() <= WAL_MAGIC.len()
    }
}

impl Default for EditWal {
    fn default() -> Self {
        EditWal::new()
    }
}

/// Replays a log image: returns every intact record plus a report on any
/// quarantined tail. Never panics on hostile bytes; the only error is an
/// unrecognizable header (nothing in the image can be trusted).
pub fn replay(bytes: &[u8]) -> Result<(Vec<WalRecord>, RecoveryReport), StorageError> {
    if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StorageError::BadColumn {
            column: "wal",
            reason: "bad or truncated WAL header".into(),
        });
    }
    let mut records = Vec::new();
    let mut report = RecoveryReport::default();
    let mut at = WAL_MAGIC.len();
    let mut expected_seq = 1u64;
    let quarantine = |report: &mut RecoveryReport, at: usize, total: usize, why: &str| {
        report.quarantined_bytes = total - at;
        report.first_bad_offset = Some(at);
        report.reason = Some(why.to_string());
    };
    while at < bytes.len() {
        if bytes[at] != FRAME_MARKER {
            quarantine(&mut report, at, bytes.len(), "bad frame marker");
            break;
        }
        if bytes.len() - at < FRAME_HEADER_LEN {
            quarantine(&mut report, at, bytes.len(), "torn frame header");
            break;
        }
        // Infallible: the length check above guarantees both windows.
        let seq = u64::from_le_bytes(match bytes[at + 1..at + 9].try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("8-byte window bounds-checked above"),
        });
        let len = u32::from_le_bytes(match bytes[at + 9..at + 13].try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("4-byte window bounds-checked above"),
        }) as usize;
        let crc = u32::from_le_bytes(match bytes[at + 13..at + 17].try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("4-byte window bounds-checked above"),
        });
        let payload_at = at + FRAME_HEADER_LEN;
        if bytes.len() - payload_at < len {
            quarantine(&mut report, at, bytes.len(), "torn frame payload");
            break;
        }
        let payload = &bytes[payload_at..payload_at + len];
        let mut body = Vec::with_capacity(12 + len);
        body.extend_from_slice(&bytes[at + 1..at + 13]);
        body.extend_from_slice(payload);
        if crc32(&body) != crc {
            quarantine(&mut report, at, bytes.len(), "crc mismatch");
            break;
        }
        if seq != expected_seq {
            quarantine(&mut report, at, bytes.len(), "sequence discontinuity");
            break;
        }
        records.push(WalRecord {
            seq,
            payload: payload.to_vec(),
        });
        report.records += 1;
        report.last_seq = seq;
        expected_seq += 1;
        at = payload_at + len;
    }
    Ok((records, report))
}

/// Reads a WAL image through a [`PageIo`] device — the same boundary the
/// rest of the store uses, so [`crate::FaultyPageIo`] can tear pages and
/// flip bits on the way in — then replays it. Transient faults are
/// retried under `policy`; a page that never delivers is treated as the
/// start of the quarantined tail (every byte from that page on is
/// untrusted).
pub fn replay_from_device(
    io: &impl PageIo,
    policy: &RetryPolicy,
) -> Result<(Vec<WalRecord>, RecoveryReport), StorageError> {
    let mut image = Vec::new();
    let mut buf = Vec::new();
    let mut lost_from: Option<usize> = None;
    'pages: for page in 0..io.page_count() {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match io.read_page(page, &mut buf) {
                Ok(()) => {
                    image.extend_from_slice(&buf);
                    break;
                }
                Err(crate::error::PageFault::Transient) if attempts < policy.max_attempts => {
                    policy.wait_after(attempts);
                    continue;
                }
                Err(_) => {
                    lost_from = Some(image.len());
                    break 'pages;
                }
            }
        }
    }
    let (records, mut report) = replay(&image)?;
    if let Some(off) = lost_from {
        // Pages past the undeliverable one were never read; account for
        // them as quarantined even if the readable prefix was clean.
        let total = io.page_count() * io.page_size();
        let extra = total.saturating_sub(off.max(report.first_bad_offset.unwrap_or(off)));
        if report.first_bad_offset.is_none() {
            report.first_bad_offset = Some(off);
            report.reason = Some("undeliverable page".into());
        }
        report.quarantined_bytes = report.quarantined_bytes.max(extra);
    }
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultConfig, FaultyPageIo};
    use crate::io::MemPageIo;
    use crate::testutil::Must;

    fn logged(edits: &[&[u8]]) -> EditWal {
        let mut wal = EditWal::new();
        for e in edits {
            wal.append(e);
            wal.sync();
        }
        wal
    }

    #[test]
    fn round_trip_replays_every_record() {
        let wal = logged(&[b"one", b"two", b"three"]);
        let (records, report) = replay(wal.as_bytes()).must();
        assert_eq!(records.len(), 3);
        assert!(report.is_clean());
        assert_eq!(report.last_seq, 3);
        assert_eq!(
            records[1],
            WalRecord {
                seq: 2,
                payload: b"two".to_vec()
            }
        );
        assert_eq!(wal.next_seq(), 4);
    }

    #[test]
    fn empty_log_is_clean() {
        let (records, report) = replay(EditWal::new().as_bytes()).must();
        assert!(records.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.last_seq, 0);
    }

    #[test]
    fn unsynced_appends_vanish_on_crash() {
        let mut wal = logged(&[b"durable"]);
        wal.append(b"staged-only");
        wal.crash(0);
        let (records, report) = replay(wal.as_bytes()).must();
        assert_eq!(records.len(), 1);
        assert!(report.is_clean(), "losing unsynced bytes is not corruption");
    }

    #[test]
    fn torn_tail_is_quarantined_not_fatal() {
        let mut wal = logged(&[b"durable"]);
        wal.append(b"torn-in-half");
        for torn in 1..(FRAME_HEADER_LEN + 12) {
            let mut crashed = wal.clone();
            crashed.crash(torn);
            let (records, report) = replay(crashed.as_bytes()).must();
            assert_eq!(records.len(), 1, "torn={torn}");
            assert_eq!(report.quarantined_bytes, torn, "torn={torn}");
            assert!(report.reason.is_some());
        }
    }

    #[test]
    fn bit_flips_anywhere_never_panic_and_never_fake_a_record() {
        let wal = logged(&[b"alpha", b"beta"]);
        let image = wal.as_bytes();
        for byte in WAL_MAGIC.len()..image.len() {
            for bit in 0..8 {
                let mut flipped = image.to_vec();
                flipped[byte] ^= 1 << bit;
                let (records, report) = replay(&flipped).must();
                // Whatever survives must be a strict prefix of the truth.
                assert!(records.len() <= 2);
                for (i, r) in records.iter().enumerate() {
                    assert_eq!(r.seq, i as u64 + 1);
                    assert_eq!(
                        r.payload,
                        [b"alpha".as_slice(), b"beta"][i],
                        "byte {byte} bit {bit} forged a record"
                    );
                }
                if records.len() < 2 {
                    assert!(!report.is_clean());
                }
            }
        }
    }

    #[test]
    fn header_corruption_is_an_error_not_a_guess() {
        let wal = logged(&[b"x"]);
        let mut image = wal.as_bytes().to_vec();
        image[0] ^= 0xFF;
        let err = replay(&image).unwrap_err();
        assert_eq!(err.code(), "STORAGE_BAD_COLUMN");
        assert!(replay(&[]).is_err(), "empty image has no header");
    }

    #[test]
    fn adopting_an_image_truncates_the_quarantined_tail() {
        let mut wal = logged(&[b"keep-me"]);
        wal.append(b"torn");
        wal.crash(3);
        let (adopted, report) = EditWal::from_bytes(wal.as_bytes().to_vec()).must();
        assert_eq!(report.records, 1);
        assert!(!report.is_clean());
        assert_eq!(adopted.next_seq(), 2, "seq resumes after the valid prefix");
        // The adopted log replays clean: garbage was cut, not buried.
        let (_, clean) = replay(adopted.as_bytes()).must();
        assert!(clean.is_clean());
    }

    #[test]
    fn sequence_discontinuities_stop_replay() {
        let a = logged(&[b"one"]);
        let mut b = EditWal::new();
        b.append(b"offbeat");
        b.append(b"offbeat2");
        // Graft log B's *second* frame (seq 2) after log A's seq-1 frame —
        // replay must refuse seq 3-follows-1... actually seq 2 follows 1
        // fine; graft its own seq-2 frame twice to force 2-follows-2.
        let frame2 = &b.as_bytes()[b.as_bytes().len() - (FRAME_HEADER_LEN + 8)..];
        let mut image = a.as_bytes().to_vec();
        image.extend_from_slice(frame2); // seq 2: fine
        image.extend_from_slice(frame2); // seq 2 again: discontinuity
        let (records, report) = replay(&image).must();
        assert_eq!(records.len(), 2);
        assert_eq!(report.reason.as_deref(), Some("sequence discontinuity"));
    }

    #[test]
    fn replay_rides_the_faulty_page_device() {
        let wal = logged(&[b"page-one-edit", b"page-two-edit", b"page-three"]);
        let image = wal.as_bytes().to_vec();
        // Clean device: identical to direct replay.
        let io = MemPageIo::new(image.clone(), 16);
        let (records, report) = replay_from_device(&io, &RetryPolicy::default()).must();
        assert_eq!(records.len(), 3);
        assert!(report.is_clean());
        // Torn final page: valid prefix survives, tail quarantined.
        let pages = image.len().div_ceil(16);
        let torn = FaultyPageIo::new(
            MemPageIo::new(image.clone(), 16),
            FaultConfig::with_seed(5).torn_page(pages - 1),
        );
        let (records, report) = replay_from_device(&torn, &RetryPolicy::default()).must();
        assert!(records.len() < 3);
        assert!(!report.is_clean());
        // Transient faults heal under retry.
        let flaky = FaultyPageIo::new(
            MemPageIo::new(image, 16),
            FaultConfig::with_seed(11).transient_read_rate(0.3),
        );
        let (records, _) = replay_from_device(&flaky, &RetryPolicy::default()).must();
        assert_eq!(records.len(), 3);
    }
}
