//! The page-device abstraction behind the store.
//!
//! [`PageIo`] is the injectable boundary between the logical store and its
//! "disk": the production device is [`MemPageIo`] (an in-memory page
//! array), and tests wrap it in [`crate::faults::FaultyPageIo`] to inject
//! deterministic faults. The store never trusts what a device returns —
//! every page is CRC-verified against checksums captured at build time.

use crate::error::PageFault;

/// A device serving fixed-size pages.
///
/// `Send` is a supertrait so stores (and the engines holding them) can
/// move between threads — the concurrent reader/writer workload hands a
/// whole engine to a scoped-thread scope behind a mutex.
pub trait PageIo: std::fmt::Debug + Send {
    /// The device's page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages on the device.
    fn page_count(&self) -> usize;

    /// Reads page `page` into `buf` (replacing its contents). The final
    /// page may be short. A [`PageFault::Transient`] failure may succeed
    /// on retry; [`PageFault::OutOfBounds`] never will.
    fn read_page(&self, page: usize, buf: &mut Vec<u8>) -> Result<(), PageFault>;
}

/// The in-memory reference device: a byte string split into pages.
#[derive(Clone, Debug)]
pub struct MemPageIo {
    data: Vec<u8>,
    page_size: usize,
}

impl MemPageIo {
    /// Splits `data` into pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if `page_size` is zero (construction-time invariant; all
    /// store constructors validate the page size first).
    pub fn new(data: Vec<u8>, page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        MemPageIo { data, page_size }
    }
}

impl PageIo for MemPageIo {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> usize {
        self.data.len().div_ceil(self.page_size)
    }

    fn read_page(&self, page: usize, buf: &mut Vec<u8>) -> Result<(), PageFault> {
        if page >= self.page_count() {
            return Err(PageFault::OutOfBounds);
        }
        // `page < page_count` bounds `start` below `data.len()`.
        let start = page * self.page_size;
        let end = (start + self.page_size).min(self.data.len());
        buf.clear();
        buf.extend_from_slice(&self.data[start..end]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    #[test]
    fn pages_split_with_short_tail() {
        let io = MemPageIo::new(b"0123456789".to_vec(), 4);
        assert_eq!(io.page_count(), 3);
        let mut buf = Vec::new();
        io.read_page(0, &mut buf).must();
        assert_eq!(buf, b"0123");
        io.read_page(2, &mut buf).must();
        assert_eq!(buf, b"89");
        assert_eq!(io.read_page(3, &mut buf), Err(PageFault::OutOfBounds));
    }

    #[test]
    fn empty_device_has_no_pages() {
        let io = MemPageIo::new(Vec::new(), 4);
        assert_eq!(io.page_count(), 0);
        let mut buf = Vec::new();
        assert_eq!(io.read_page(0, &mut buf), Err(PageFault::OutOfBounds));
    }
}
