#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-vet — the workspace invariant checker
//!
//! A dependency-free static-analysis pass over every `.rs` file in the
//! workspace, enforcing the cross-file invariants clippy cannot express
//! (DESIGN.md §11). The suite grew contracts that live in more than one
//! crate — panic-freedom in libraries, `SAFETY:` justifications, the
//! stable span vocabulary shared by `vh-query` and `vh-obs`, the
//! `VhError` ↔ exit-code ↔ README synchronisation, Prometheus family
//! discipline, the deprecated `Engine` wrapper contract — and each was
//! policed only by convention. `vh-vet` checks them at lint time, in the
//! spirit of catching the invariant break before it ships rather than
//! under load.
//!
//! Pipeline: [`workspace::Workspace::load`] walks the tree and scans
//! every file with the hand-rolled lexer in [`scan`]; [`model`] builds
//! the workspace semantic model (item index, approximate call graph,
//! lock-acquisition model) that the cross-function lint families
//! (`lock-order`, `hold-across-blocking`, `hot-path`) reason over;
//! [`lints::run`] applies the lint set; findings render as text lines,
//! as the JSON document CI uploads ([`findings::to_json`]), or as SARIF
//! for GitHub code scanning ([`sarif::to_sarif`]).
//!
//! Escape hatch: a finding is suppressed by a comment on the same line
//! or the line directly above, of the form
//! `// vet: allow(<lint-id>) — <reason>` — the reason is mandatory, and
//! malformed allows are themselves findings (`vet-allow`).
//!
//! The binary (`vh-vet`) exits 0 on a clean tree, 1 when findings exist,
//! 2 on usage errors and 3 on I/O errors, matching the suite's exit-code
//! classes. `crates/vet/tests/self_check.rs` runs the whole pass over
//! the live workspace on every `cargo test`, so a stray `unwrap()` or an
//! uncommented `unsafe` fails the ordinary test gate, not just CI.

pub mod callgraph;
pub mod findings;
pub mod lints;
pub mod locks;
pub mod model;
pub mod sarif;
pub mod scan;
pub mod workspace;

pub use findings::{to_json, Finding, Lint, ALL_LINTS};
pub use sarif::to_sarif;
pub use workspace::{VetError, Workspace};

use std::path::Path;

/// Walks the workspace at `root`, runs every lint, and returns the
/// findings sorted by path, line and lint id.
pub fn vet_workspace(root: &Path) -> Result<Vec<Finding>, VetError> {
    let ws = Workspace::load(root)?;
    Ok(lints::run(&ws))
}
