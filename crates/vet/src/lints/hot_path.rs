//! `hot-path` — the call-graph closure of every `// vet: hot` fn must
//! be free of heap allocation and panicking indexing.
//!
//! The SWAR key kernels, axis predicates and branchless searches are
//! the per-key inner loops of every query; an accidental `Vec`
//! allocation or a panicking `[]` deep in a helper undoes the perf
//! contract the bench gate protects. Marking the root
//! `// vet: hot` puts its whole reachable closure (same-crate method
//! resolution, lib scope) under the purity contract. Loop-bounded
//! indexing that cannot overrun carries a per-site
//! `// vet: allow(hot-path) — <bounds argument>`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::findings::{Finding, Lint};
use crate::model::{Model, HOT_WINDOW};
use crate::scan::Tok;
use crate::workspace::FileClass;

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];
/// Types whose associated fns allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String"];
/// Methods that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect"];
/// Macros that panic (debug_assert* compiles out of release builds and
/// is exempt).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Reports impurities in the closure of every hot root, and dangling
/// `// vet: hot` markers that name no fn.
pub fn check(model: &Model<'_>, graph: &CallGraph, out: &mut Vec<Finding>) {
    // Per impure site: the hot roots whose closure reaches it.
    let mut sites: BTreeMap<(usize, u32, String), BTreeSet<String>> = BTreeMap::new();
    for (root, rf) in model.fns.iter().enumerate() {
        if !rf.hot || rf.in_test {
            continue;
        }
        let mut stack = vec![root];
        let mut seen = BTreeSet::from([root]);
        while let Some(id) = stack.pop() {
            scan_body(model, id, &rf.qual_name(), &mut sites);
            for cands in &graph.resolved[id] {
                for &c in cands {
                    if !model.fns[c].in_test && seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
    }
    for ((file, line, what), roots) in sites {
        let file = &model.ws.files[file];
        let roots = roots.into_iter().collect::<Vec<_>>().join(", ");
        file.report(
            out,
            Lint::HotPath,
            line,
            format!("{what} on the hot path of {roots}"),
        );
    }
    // Dangling markers: a `// vet: hot` with no fn in its window.
    for (fi, file) in model.ws.files.iter().enumerate() {
        if file.class != FileClass::Lib {
            continue;
        }
        for &h in &file.hots {
            let named = model
                .fns
                .iter()
                .any(|f| f.file == fi && h <= f.line && f.line <= h + HOT_WINDOW);
            if !named {
                file.report(
                    out,
                    Lint::HotPath,
                    h,
                    "dangling `// vet: hot` marker: no fn within the next 5 lines".to_string(),
                );
            }
        }
    }
}

/// Scans one fn body for allocation, panic and indexing impurities,
/// charging each to `root`.
fn scan_body(
    model: &Model<'_>,
    id: usize,
    root: &str,
    sites: &mut BTreeMap<(usize, u32, String), BTreeSet<String>>,
) {
    let f = &model.fns[id];
    let Some((start, end)) = f.body else {
        return;
    };
    let code = model.code_of(f);
    let nested = model.nested_bodies(id);
    let mut record = |line: u32, what: String| {
        sites
            .entry((f.file, line, what))
            .or_default()
            .insert(format!("`{root}`"));
    };
    let mut i = start;
    while i < end {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne + 1;
            continue;
        }
        match code.kind(i) {
            Some(Tok::Ident(s)) if code.is_punct(i + 1, '!') => {
                if ALLOC_MACROS.contains(&s.as_str()) {
                    record(code.line(i), format!("allocating `{s}!`"));
                } else if PANIC_MACROS.contains(&s.as_str()) {
                    record(code.line(i), format!("panicking `{s}!`"));
                }
            }
            Some(Tok::Ident(s))
                if ALLOC_TYPES.contains(&s.as_str())
                    && code.is_punct(i + 1, ':')
                    && code.is_punct(i + 2, ':') =>
            {
                let method = match code.kind(i + 3) {
                    Some(Tok::Ident(m)) => m.as_str(),
                    _ => "…",
                };
                record(code.line(i), format!("allocating `{s}::{method}`"));
            }
            Some(Tok::Ident(s))
                if code.is_punct(i.wrapping_sub(1), '.') && code.is_punct(i + 1, '(') =>
            {
                if ALLOC_METHODS.contains(&s.as_str()) {
                    record(code.line(i), format!("allocating `.{s}()`"));
                } else if s == "unwrap" || s == "expect" {
                    record(code.line(i), format!("panicking `.{s}()`"));
                }
            }
            Some(Tok::Punct('[')) => {
                // `a[i]`, `a()[i]`, `a[i][j]`: the previous code token
                // ends an indexable expression. Attributes (`#[…]`) and
                // literals/slice types do not match.
                let prev = i.wrapping_sub(1);
                let keyword = ["mut", "return", "break", "else", "in"]
                    .iter()
                    .any(|k| code.is_ident(prev, k));
                if matches!(code.kind(prev), Some(Tok::Ident(_) | Tok::Punct(']' | ')')))
                    && !keyword
                {
                    record(code.line(i), "panicking `[…]` indexing".to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
}
