//! The lint set and its driver.
//!
//! Per-file lints ([`panics`], [`safety`], [`prom`], [`oracle`]) run over every
//! walked file in their scope; cross-file lints ([`spans`], [`edits`],
//! [`errors`], [`deprecated`], [`api`]) additionally read the workspace
//! files that define the invariant they enforce (the `vh-obs` span
//! vocabulary, the `Edit` mutation enum, the `VhError` facade, the
//! deprecated `Engine` wrapper set, the VHRPC wire tables). The driver wires scopes
//! to [`FileClass`](crate::workspace::FileClass) and returns findings
//! sorted by path, line and lint id.

pub mod api;
pub mod deprecated;
pub mod edits;
pub mod errors;
pub mod hold_blocking;
pub mod hot_path;
pub mod lock_order;
pub mod oracle;
pub mod panics;
pub mod prom;
pub mod safety;
pub mod spans;

use crate::callgraph::CallGraph;
use crate::findings::{Finding, Lint};
use crate::locks::LockFacts;
use crate::model::Model;
use crate::scan::Tok;
use crate::workspace::{SourceFile, Workspace};

/// A view of a file's *code* tokens: comments dropped, original token
/// indices kept so lints can consult lines and test-region flags.
pub(crate) struct Code<'a> {
    file: &'a SourceFile,
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    pub(crate) fn of(file: &'a SourceFile) -> Code<'a> {
        let idx = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, Tok::Comment { .. }))
            .map(|(i, _)| i)
            .collect();
        Code { file, idx }
    }

    pub(crate) fn len(&self) -> usize {
        self.idx.len()
    }

    /// The scanned file this view reads from.
    pub(crate) fn source(&self) -> &'a SourceFile {
        self.file
    }

    /// The code token at code-position `i`.
    pub(crate) fn kind(&self, i: usize) -> Option<&Tok> {
        self.idx.get(i).map(|&raw| &self.file.tokens[raw].kind)
    }

    /// True when the code token at `i` is exactly the identifier `name`.
    pub(crate) fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(self.kind(i), Some(Tok::Ident(s)) if s == name)
    }

    /// True when the code token at `i` is the punctuation `c`.
    pub(crate) fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.kind(i), Some(Tok::Punct(p)) if *p == c)
    }

    /// The string literal at code-position `i`, if any.
    pub(crate) fn str_at(&self, i: usize) -> Option<&str> {
        match self.kind(i) {
            Some(Tok::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Source line of the code token at `i` (0 when out of range, which
    /// callers never hit on a matched pattern).
    pub(crate) fn line(&self, i: usize) -> u32 {
        self.idx
            .get(i)
            .map(|&raw| self.file.tokens[raw].line)
            .unwrap_or(0)
    }

    /// Is the code token at `i` inside a `#[cfg(test)]` region?
    pub(crate) fn suppressed(&self, i: usize) -> bool {
        self.idx
            .get(i)
            .map(|&raw| self.file.suppressed[raw])
            .unwrap_or(false)
    }

    /// Code-position of the brace matching the `{` at code-position
    /// `open` (which must be a `{`), or the stream end if unbalanced.
    pub(crate) fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.len() {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.len()
    }
}

/// Variant names (and lines) of `pub enum <name> { … }` in a code view.
/// Skips attribute tokens and field contents; shared by the enum-table
/// lints ([`errors`], [`api`]).
pub(crate) fn enum_variants(code: &Code<'_>, name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !(code.is_ident(i, "enum") && code.is_ident(i + 1, name) && code.is_punct(i + 2, '{')) {
            continue;
        }
        let end = code.matching_brace(i + 2);
        let mut expecting = true;
        let mut depth = 0usize; // nesting inside variant fields
        let mut j = i + 3;
        while j < end {
            match code.kind(j) {
                Some(Tok::Punct('#')) if depth == 0 => {
                    // Skip the `[…]` of an attribute.
                    let mut k = j + 1;
                    let mut b = 0usize;
                    while k < end {
                        if code.is_punct(k, '[') {
                            b += 1;
                        } else if code.is_punct(k, ']') {
                            b -= 1;
                            if b == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    j = k;
                }
                Some(Tok::Punct('(' | '{' | '[')) => depth += 1,
                Some(Tok::Punct(')' | '}' | ']')) => depth = depth.saturating_sub(1),
                Some(Tok::Punct(',')) if depth == 0 => expecting = true,
                Some(Tok::Ident(name)) if depth == 0 && expecting => {
                    out.push((name.clone(), code.line(j)));
                    expecting = false;
                }
                _ => {}
            }
            j += 1;
        }
        break;
    }
    out
}

/// Code-token range of the body of the first `fn name` inside
/// `[from, to)`.
pub(crate) fn fn_body_in(
    code: &Code<'_>,
    from: usize,
    to: usize,
    name: &str,
) -> Option<(usize, usize)> {
    for i in from..to {
        if code.is_ident(i, "fn") && code.is_ident(i + 1, name) {
            let mut j = i + 2;
            while j < to && !code.is_punct(j, '{') {
                j += 1;
            }
            if j < to {
                return Some((j + 1, code.matching_brace(j)));
            }
        }
    }
    None
}

/// Variant names appearing as `<enum_name>::X` in a token range.
pub(crate) fn matched_variants(
    code: &Code<'_>,
    start: usize,
    end: usize,
    enum_name: &str,
) -> Vec<String> {
    let mut out = Vec::new();
    for i in start..end {
        if code.is_ident(i, enum_name) && code.is_punct(i + 1, ':') && code.is_punct(i + 2, ':') {
            if let Some(Tok::Ident(v)) = code.kind(i + 3) {
                out.push(v.clone());
            }
        }
    }
    out
}

/// Runs every lint over the loaded workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        allow_comments(file, &mut out);
        panics::check(file, &mut out);
        safety::check(file, &mut out);
        prom::check(file, &mut out);
        oracle::check(file, &mut out);
    }
    spans::check(ws, &mut out);
    edits::check(ws, &mut out);
    errors::check(ws, &mut out);
    api::check(ws, &mut out);
    deprecated::check(ws, &mut out);
    // The semantic families share one model, call graph and lock walk.
    let model = Model::build(ws);
    let graph = CallGraph::build(&model);
    let facts = LockFacts::build(&model, &graph);
    lock_order::check(&model, &facts, &mut out);
    hold_blocking::check(&model, &facts, &mut out);
    hot_path::check(&model, &graph, &mut out);
    // Last: every earlier lint has consulted the allows it needed, so
    // what is left unused is stale.
    stale_allows(ws, &mut out);
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    out
}

/// The `vet-allow` lint: every allow-comment must name a known lint and
/// give a reason — a malformed allow suppresses nothing, so surfacing it
/// loudly is what keeps the escape hatch honest.
fn allow_comments(file: &SourceFile, out: &mut Vec<Finding>) {
    for a in &file.allows {
        if a.lint.is_none() {
            out.push(Finding {
                file: file.rel.clone(),
                line: a.line,
                lint: Lint::VetAllow,
                message: format!(
                    "unknown lint `{}` in vet: allow comment (see `vh-vet --list`)",
                    a.id_text
                ),
            });
        } else if !a.has_reason {
            out.push(Finding {
                file: file.rel.clone(),
                line: a.line,
                lint: Lint::VetAllow,
                message: "vet: allow comment needs a reason after a dash \
                          (`// vet: allow(<lint>) — <reason>`)"
                    .to_string(),
            });
        }
    }
}

/// The `stale-allow` lint: a well-formed allow-comment that gated no
/// finding this run suppresses nothing — the violation it excused was
/// fixed or moved, and the stale comment would silently excuse the
/// *next* violation on that line. Warning level, but still exit 1.
fn stale_allows(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for a in &file.allows {
            if a.is_valid() && !a.used.get() {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: a.line,
                    lint: Lint::StaleAllow,
                    message: format!(
                        "stale `vet: allow({})`: no `{}` finding fires here any more — delete the comment",
                        a.id_text, a.id_text
                    ),
                });
            }
        }
    }
}
