//! `deprecated-wrapper`: legacy `Engine` entry points stay thin and honest.
//!
//! PR 4 redesigned the engine around `QueryRequest` → `Engine::run` →
//! `QueryOutcome`, keeping the old `eval*` methods as documented
//! wrappers and hiding the replaced getters behind `#[doc(hidden)]`.
//! This lint pins that contract in `crates/query/src/engine.rs`:
//!
//! * every public `fn eval*` must carry a doc comment mentioning
//!   `Deprecated` *and* forward through `self.run(…)` — a wrapper that
//!   grows its own evaluation path would fork the pipeline silently;
//! * every `#[doc(hidden)]` public fn must carry a `Deprecated` doc line
//!   telling embedders what to call instead.

use crate::findings::{Finding, Lint};
use crate::scan::Tok;
use crate::workspace::Workspace;

/// The engine's home.
const ENGINE: &str = "crates/query/src/engine.rs";

/// Runs the lint over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(file) = ws.file(ENGINE) else {
        return; // no engine in this tree — nothing to enforce
    };
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if file.suppressed[i] || !matches!(&toks[i].kind, Tok::Ident(s) if s == "fn") {
            continue;
        }
        // The fn name is the next code token.
        let Some((name_idx, name)) = next_ident(toks, i + 1) else {
            continue;
        };
        let pre = preamble(toks, i);
        if !pre.is_pub {
            continue;
        }
        let line = toks[name_idx].line;
        let is_eval = name.starts_with("eval");
        if !is_eval && !pre.doc_hidden {
            continue;
        }
        if !pre.deprecated_doc {
            file.report(
                out,
                Lint::DeprecatedWrapper,
                line,
                format!(
                    "legacy `Engine::{name}` needs a doc comment marking it \
                     Deprecated and naming the `Engine::run`-era replacement"
                ),
            );
        }
        if is_eval && !body_calls_run(toks, name_idx) {
            file.report(
                out,
                Lint::DeprecatedWrapper,
                line,
                format!(
                    "legacy wrapper `Engine::{name}` must forward to `self.run(…)`, \
                     not evaluate on its own"
                ),
            );
        }
    }
}

/// What precedes a `fn` keyword: doc comments, attributes, visibility.
struct Preamble {
    is_pub: bool,
    doc_hidden: bool,
    deprecated_doc: bool,
}

/// Walks backwards from the `fn` keyword to the end of the previous item
/// (`}`, `;`, or an opening `{`), collecting docs and attributes.
fn preamble(toks: &[Tok2], fn_idx: usize) -> Preamble {
    let mut p = Preamble {
        is_pub: false,
        doc_hidden: false,
        deprecated_doc: false,
    };
    let mut i = fn_idx;
    let mut attr_idents: Vec<String> = Vec::new();
    while i > 0 {
        i -= 1;
        match &toks[i].kind {
            Tok::Punct('}' | ';' | '{') => break,
            Tok::Comment { text, doc } if *doc && text.contains("Deprecated") => {
                p.deprecated_doc = true;
            }
            Tok::Ident(s) if s == "pub" => p.is_pub = true,
            Tok::Ident(s) => attr_idents.push(s.clone()),
            _ => {}
        }
    }
    if attr_idents.iter().any(|s| s == "doc") && attr_idents.iter().any(|s| s == "hidden") {
        p.doc_hidden = true;
    }
    p
}

type Tok2 = crate::scan::Token;

/// Does the fn body starting after `name_idx` contain `.run(`?
fn body_calls_run(toks: &[Tok2], name_idx: usize) -> bool {
    // Find the body's `{`, then scan to its matching `}`.
    let mut i = name_idx;
    while i < toks.len() && toks[i].kind != Tok::Punct('{') {
        i += 1;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Punct('.')
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Ident(s)) if s == "run")
                    && toks.get(i + 2).map(|t| &t.kind) == Some(&Tok::Punct('(')) =>
            {
                return true;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// The next identifier token at or after `start`, skipping comments.
fn next_ident(toks: &[Tok2], start: usize) -> Option<(usize, String)> {
    for (i, t) in toks.iter().enumerate().skip(start) {
        match &t.kind {
            Tok::Comment { .. } => continue,
            Tok::Ident(s) => return Some((i, s.clone())),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_source(ENGINE, src)],
            readme: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    const CLEAN: &str = r#"
impl Engine {
    /// Evaluates a query.
    ///
    /// Deprecated: prefer [`Engine::run`].
    pub fn eval(&self, q: &str) -> Result<Document, FlwrError> {
        Ok(self.run(&QueryRequest::flwr(q))?.document)
    }

    /// Cache counters.
    ///
    /// Deprecated: prefer [`Engine::snapshot`].
    #[doc(hidden)]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A current, non-legacy method: no constraints.
    pub fn run(&self, req: &QueryRequest) -> Result<QueryOutcome, FlwrError> {
        self.pipeline(req)
    }
}
"#;

    #[test]
    fn honest_wrappers_are_clean() {
        assert_eq!(run_on(CLEAN), Vec::new());
    }

    #[test]
    fn missing_deprecation_docs_fire() {
        let src = CLEAN.replace("Deprecated: prefer [`Engine::run`].", "Runs a query.");
        let got = run_on(&src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("Engine::eval"));
        assert!(got[0].message.contains("Deprecated"));

        let src = CLEAN.replace("Deprecated: prefer [`Engine::snapshot`].", "Counters.");
        let got = run_on(&src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("cache_stats"));
    }

    #[test]
    fn wrappers_that_do_not_forward_fire() {
        let src = CLEAN.replace(
            "Ok(self.run(&QueryRequest::flwr(q))?.document)",
            "self.evaluate_directly(q)",
        );
        let got = run_on(&src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("must forward to `self.run"));
    }

    #[test]
    fn only_the_engine_file_is_checked() {
        let ws = Workspace {
            files: vec![SourceFile::from_source(
                "crates/query/src/xpath/eval.rs",
                "pub fn eval_path(x: u32) -> u32 { x }",
            )],
            readme: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty());
    }
}
