//! `safety-comment`: every `unsafe` block or item justifies itself.
//!
//! Each occurrence of the `unsafe` keyword — blocks, functions, trait
//! impls — must have a comment containing `SAFETY:` on the same line or
//! within the four lines above it (enough room for an attribute between
//! the comment and the keyword). The lint runs on *every* walked file,
//! test code included: an unjustified `unsafe` in a test is as much of a
//! review hazard as one in the library.

use crate::findings::{Finding, Lint};
use crate::scan::Tok;
use crate::workspace::SourceFile;

/// How many lines above the `unsafe` keyword a `SAFETY:` comment may
/// start while still covering it.
const SAFETY_WINDOW: u32 = 4;

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let safety_lines: Vec<u32> = file
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Comment { text, .. } if text.contains("SAFETY:") => Some(t.line),
            _ => None,
        })
        .collect();
    let mut reported = 0u32; // dedupe: one finding per line
    for t in &file.tokens {
        let is_unsafe = matches!(&t.kind, Tok::Ident(s) if s == "unsafe");
        if !is_unsafe || t.line == reported {
            continue;
        }
        let covered = safety_lines
            .iter()
            .any(|&c| c <= t.line && c + SAFETY_WINDOW >= t.line);
        if !covered {
            file.report(
                out,
                Lint::SafetyComment,
                t.line,
                "`unsafe` without a `// SAFETY:` comment on the line or just above".to_string(),
            );
            reported = t.line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn uncommented_unsafe_fires_everywhere() {
        let src = "\
fn f() {
    unsafe { danger() }
}
unsafe fn g() {}
#[cfg(test)]
mod tests {
    fn t() { unsafe { danger() } }
}
";
        let got = findings(src);
        let lines: Vec<u32> = got.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 4, 7], "test code is not exempt");
    }

    #[test]
    fn safety_comments_and_allows_cover() {
        let src = "\
fn f() {
    // SAFETY: the buffer is valid UTF-8 split at char boundaries.
    unsafe { ok() }
    // SAFETY: justified, with an attribute in between.
    #[allow(dead_code)]
    unsafe fn g() {}
    let x = unsafe { ok() }; // SAFETY: same-line form
    // vet: allow(safety-comment) — justified elsewhere
    unsafe { ok() }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn the_word_unsafe_in_prose_is_ignored() {
        let src = "/// escaping characters that are unsafe in XML\nfn f() { let s = \"unsafe\"; }";
        assert!(findings(src).is_empty());
    }
}
