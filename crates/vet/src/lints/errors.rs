//! `error-exit`: the `VhError` facade, exit codes and README stay in sync.
//!
//! Three cross-file facts must agree (DESIGN.md §7): every `VhError`
//! variant is matched in `code()` (so it has a stable machine-readable
//! code) and in `exit_code()` (so the CLI maps it to a process exit
//! code), and every distinct exit code returned by `exit_code()` has a
//! row in the README's exit-code table. Each broken leg is a separate
//! finding, anchored to `src/error.rs`.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::scan::Tok;
use crate::workspace::Workspace;

/// The error facade's home.
const FACADE: &str = "src/error.rs";
/// The enum whose variants are audited.
const ENUM_NAME: &str = "VhError";

/// Runs the lint over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(file) = ws.file(FACADE) else {
        return; // no facade in this tree — nothing to enforce
    };
    let code = Code::of(file);
    let variants = super::enum_variants(&code, ENUM_NAME);
    for (fn_name, label) in [
        ("code", "stable error code"),
        ("exit_code", "CLI exit code"),
    ] {
        let Some((body_start, body_end)) = super::fn_body_in(&code, 0, code.len(), fn_name) else {
            file.report(
                out,
                Lint::ErrorExit,
                1,
                format!("`{ENUM_NAME}::{fn_name}()` not found in {FACADE}"),
            );
            continue;
        };
        let matched = super::matched_variants(&code, body_start, body_end, ENUM_NAME);
        for (variant, line) in &variants {
            if !matched.iter().any(|m| m == variant) {
                file.report(
                    out,
                    Lint::ErrorExit,
                    *line,
                    format!("`{ENUM_NAME}::{variant}` has no {label} arm in `{fn_name}()`"),
                );
            }
        }
    }
    // Every distinct exit literal needs a README table row.
    let Some((body_start, body_end)) = super::fn_body_in(&code, 0, code.len(), "exit_code") else {
        return;
    };
    let Some(readme) = &ws.readme else { return };
    let rows = readme_exit_rows(readme);
    let mut seen = Vec::new();
    for i in body_start..body_end {
        if !(code.is_punct(i, '=') && code.is_punct(i + 1, '>')) {
            continue;
        }
        let Some(Tok::Num(n)) = code.kind(i + 2) else {
            continue;
        };
        if seen.contains(n) {
            continue;
        }
        seen.push(n.clone());
        if !rows.contains(n) {
            file.report(
                out,
                Lint::ErrorExit,
                code.line(i + 2),
                format!("exit code {n} has no row in the README.md exit-code table"),
            );
        }
    }
}

/// First-cell values of markdown table rows: `| 7 | storage | …` → "7".
fn readme_exit_rows(readme: &str) -> Vec<String> {
    readme
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let cell = l.strip_prefix('|')?.split('|').next()?.trim();
            cell.parse::<u32>().ok().map(|_| cell.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    const GOOD: &str = "
pub enum VhError {
    Usage(String),
    Io { path: String },
    Query(QueryError),
}
impl VhError {
    pub fn code(&self) -> &'static str {
        match self {
            VhError::Usage(_) => \"CLI_USAGE\",
            VhError::Io { .. } => \"CLI_IO\",
            VhError::Query(e) => e.code(),
        }
    }
    pub fn exit_code(&self) -> u8 {
        match self {
            VhError::Usage(_) => 2,
            VhError::Io { .. } => 3,
            VhError::Query(_) => 6,
        }
    }
}
";

    fn run(src: &str, readme: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![SourceFile::from_source(FACADE, src)],
            readme: Some(readme.to_string()),
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    const README: &str = "| exit | class |\n|---:|---|\n| 2 | usage |\n| 3 | io |\n| 6 | query |\n";

    #[test]
    fn a_synchronised_facade_is_clean() {
        assert_eq!(run(GOOD, README), Vec::new());
    }

    #[test]
    fn missing_arms_and_rows_each_fire() {
        let src = GOOD.replace("VhError::Query(e) => e.code(),", "");
        let got = run(&src, README);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("no stable error code arm"));

        let src = GOOD.replace("VhError::Query(_) => 6,", "");
        let got = run(&src, README);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("no CLI exit code arm"));

        let got = run(GOOD, "| 2 | usage |\n| 3 | io |\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("exit code 6 has no row"));
    }
}
