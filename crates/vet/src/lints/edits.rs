//! `edit-exhaustive`: every `match` over the `Edit` mutation enum names
//! each variant explicitly.
//!
//! The WAL payload codec, the replay dispatch and the trace-span
//! emission all fan out over `Edit` (crates/query/src/edit.rs). A
//! `_ =>` or catch-all binding arm in any of them means a future edit
//! variant would be *silently* dropped from the log, skipped on replay,
//! or untraced — the exact class of bug a crash-safe mutation log must
//! not have. This lint extracts the variant list from the enum
//! definition and checks every non-test `match` whose arm patterns
//! mention `Edit::…`: catch-all arms are findings, and (defensively,
//! for trees that no longer compile the exhaustiveness check) so are
//! missing variants.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::workspace::{FileClass, Workspace};

/// Where the mutation enum lives.
const EDIT_ENUM_FILE: &str = "crates/query/src/edit.rs";
/// Its name.
const EDIT_ENUM: &str = "Edit";

/// Runs the lint over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(enum_file) = ws.file(EDIT_ENUM_FILE) else {
        return; // no mutation subsystem in this tree — nothing to enforce
    };
    let Some(variants) = extract_variants(&Code::of(enum_file)) else {
        out.push(Finding {
            file: EDIT_ENUM_FILE.to_string(),
            line: 1,
            lint: Lint::EditExhaustive,
            message: format!("`enum {EDIT_ENUM}` (the mutation model) not found"),
        });
        return;
    };
    for file in &ws.files {
        if matches!(
            file.class,
            FileClass::Vendor | FileClass::Test | FileClass::Bench | FileClass::Example
        ) {
            continue;
        }
        let code = Code::of(file);
        for i in 0..code.len() {
            if code.is_ident(i, "match") && !code.suppressed(i) {
                if let Some(open) = body_brace(&code, i) {
                    check_match(file, &code, &variants, open, out);
                }
            }
        }
    }
}

/// One parsed match arm: its pattern token range and source line.
struct Arm {
    /// Code-token positions of the pattern (guard stripped).
    pat: (usize, usize),
    /// Line of the pattern's first token.
    line: u32,
}

/// Checks one `match` body (arms between `open` and its matching
/// brace). Only matches whose patterns mention `Edit::` are in scope.
fn check_match(
    file: &crate::workspace::SourceFile,
    code: &Code<'_>,
    variants: &[String],
    open: usize,
    out: &mut Vec<Finding>,
) {
    let close = code.matching_brace(open);
    let arms = parse_arms(code, open, close);
    let mut seen: Vec<&str> = Vec::new();
    let mut catch_alls: Vec<&Arm> = Vec::new();
    let mut dispatches_on_edit = false;
    for arm in &arms {
        let mut named_edit = false;
        let (from, to) = arm.pat;
        let mut j = from;
        while j < to {
            if code.is_ident(j, EDIT_ENUM) && code.is_punct(j + 1, ':') && code.is_punct(j + 2, ':')
            {
                named_edit = true;
                if let Some(crate::scan::Tok::Ident(v)) = code.kind(j + 3) {
                    if let Some(v) = variants.iter().find(|known| *known == v) {
                        if !seen.contains(&v.as_str()) {
                            seen.push(v);
                        }
                    }
                }
                j += 3;
            }
            j += 1;
        }
        dispatches_on_edit |= named_edit;
        if !named_edit && is_catch_all(code, from, to) {
            catch_alls.push(arm);
        }
    }
    if !dispatches_on_edit {
        return;
    }
    for arm in &catch_alls {
        file.report(
            out,
            Lint::EditExhaustive,
            arm.line,
            format!(
                "`match` over `{EDIT_ENUM}` has a catch-all arm; name every \
                 variant so a future edit kind fails to compile here instead \
                 of being silently dropped"
            ),
        );
    }
    if catch_alls.is_empty() {
        let missing: Vec<&str> = variants
            .iter()
            .map(String::as_str)
            .filter(|v| !seen.contains(v))
            .collect();
        if !missing.is_empty() {
            file.report(
                out,
                Lint::EditExhaustive,
                code.line(open),
                format!(
                    "`match` over `{EDIT_ENUM}` does not name variant(s) {}",
                    missing.join(", ")
                ),
            );
        }
    }
}

/// Is the pattern a wildcard (`_`) or a bare binding (`other`)?
///
/// Single all-uppercase identifiers are treated as const patterns, not
/// bindings, so tag-byte dispatches (`TAG_INSERT => …`) stay clean.
fn is_catch_all(code: &Code<'_>, from: usize, to: usize) -> bool {
    if to != from + 1 {
        return false;
    }
    match code.kind(from) {
        Some(crate::scan::Tok::Ident(name)) => {
            name == "_" || name.chars().any(|c| c.is_ascii_lowercase())
        }
        _ => false,
    }
}

/// Splits a match body into arms: pattern tokens up to each depth-0
/// `=>`, then the arm expression (block or comma-terminated).
fn parse_arms(code: &Code<'_>, open: usize, close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut at = open + 1;
    while at < close {
        // Find the arrow ending this arm's pattern.
        let mut depth = 0usize;
        let mut j = at;
        let mut arrow = None;
        let mut guard = None;
        while j < close {
            if is_open(code, j) {
                depth += 1;
            } else if is_close(code, j) {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && code.is_punct(j, '=') && code.is_punct(j + 1, '>') {
                arrow = Some(j);
                break;
            } else if depth == 0 && guard.is_none() && code.is_ident(j, "if") {
                guard = Some(j); // `pat if cond =>`: the guard is not pattern
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_end = guard.unwrap_or(arrow);
        arms.push(Arm {
            pat: (at, pat_end),
            line: code.line(at),
        });
        // Skip the arm expression: a block, or tokens up to a depth-0 comma.
        let mut k = arrow + 2;
        if code.is_punct(k, '{') {
            k = code.matching_brace(k) + 1;
        } else {
            let mut depth = 0usize;
            while k < close {
                if is_open(code, k) {
                    depth += 1;
                } else if is_close(code, k) {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && code.is_punct(k, ',') {
                    break;
                }
                k += 1;
            }
        }
        if code.is_punct(k, ',') {
            k += 1;
        }
        at = k;
    }
    arms
}

/// Finds the `{` opening the arm list of the `match` at code-pos `i`:
/// the first `{` outside any paren/bracket group in the scrutinee.
fn body_brace(code: &Code<'_>, i: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < code.len() {
        if code.is_punct(j, '(') || code.is_punct(j, '[') {
            depth += 1;
        } else if code.is_punct(j, ')') || code.is_punct(j, ']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && code.is_punct(j, '{') {
            return Some(j);
        }
        j += 1;
    }
    None
}

fn is_open(code: &Code<'_>, i: usize) -> bool {
    code.is_punct(i, '(') || code.is_punct(i, '[') || code.is_punct(i, '{')
}

fn is_close(code: &Code<'_>, i: usize) -> bool {
    code.is_punct(i, ')') || code.is_punct(i, ']') || code.is_punct(i, '}')
}

/// Collects the variant names of `enum Edit { … }`.
fn extract_variants(code: &Code<'_>) -> Option<Vec<String>> {
    for i in 0..code.len() {
        if !(code.is_ident(i, "enum") && code.is_ident(i + 1, EDIT_ENUM)) {
            continue;
        }
        let open = body_brace(code, i + 1)?;
        let close = code.matching_brace(open);
        let mut depth = 0usize;
        let mut variants = Vec::new();
        let mut j = open;
        while j <= close.min(code.len().saturating_sub(1)) {
            if is_open(code, j) {
                depth += 1;
            } else if is_close(code, j) {
                depth = depth.saturating_sub(1);
            } else if depth == 1 {
                if let Some(crate::scan::Tok::Ident(name)) = code.kind(j) {
                    // A variant name is directly followed by its payload
                    // or a separator; field names sit at depth 2.
                    if code.is_punct(j + 1, '{')
                        || code.is_punct(j + 1, '(')
                        || code.is_punct(j + 1, ',')
                        || code.is_punct(j + 1, '}')
                    {
                        variants.push(name.clone());
                    }
                }
            }
            j += 1;
        }
        if !variants.is_empty() {
            return Some(variants);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    const ENUM_SRC: &str = r#"
/// The mutation model.
pub enum Edit {
    /// Insert a parsed fragment.
    InsertSubtree { uri: String, xml: String },
    /// Delete a subtree.
    DeleteSubtree { uri: String, target: String },
    /// Move a subtree.
    MoveSubtree { uri: String, target: String },
    /// Replace a text value.
    SetValue { uri: String, value: String },
}
"#;

    fn ws(extra: &[(&str, &str)]) -> Workspace {
        let mut files = vec![SourceFile::from_source(EDIT_ENUM_FILE, ENUM_SRC)];
        for (rel, src) in extra {
            files.push(SourceFile::from_source(rel, src));
        }
        Workspace {
            files,
            readme: None,
        }
    }

    #[test]
    fn the_variant_list_comes_from_the_enum() {
        let code_file = SourceFile::from_source(EDIT_ENUM_FILE, ENUM_SRC);
        let vs = extract_variants(&Code::of(&code_file)).unwrap();
        assert_eq!(
            vs,
            ["InsertSubtree", "DeleteSubtree", "MoveSubtree", "SetValue"]
        );
    }

    #[test]
    fn wildcard_and_binding_arms_fire() {
        let src = r#"
fn encode(e: &Edit) -> u8 {
    match e {
        Edit::InsertSubtree { .. } => 1,
        Edit::DeleteSubtree { .. } => 2,
        _ => 0,
    }
}
fn kind(e: &Edit) -> &'static str {
    match e {
        Edit::InsertSubtree { .. } => "insert",
        other => "other",
    }
}
"#;
        let mut out = Vec::new();
        check(&ws(&[("crates/query/src/engine.rs", src)]), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[0].line, 6);
        assert_eq!(out[1].line, 12);
        assert!(out[0].message.contains("catch-all"));
    }

    #[test]
    fn exhaustive_matches_and_foreign_matches_pass() {
        let src = r#"
fn f(e: &Edit, tag: u8) -> u8 {
    let t = match tag {
        TAG_INSERT => Edit::InsertSubtree { uri: u, xml: x },
        other => 0,
    };
    match e {
        Edit::InsertSubtree { .. } => 1,
        Edit::DeleteSubtree { .. } | Edit::MoveSubtree { .. } => 2,
        Edit::SetValue { value, .. } if value.is_empty() => 3,
        Edit::SetValue { .. } => 4,
    }
}
"#;
        let mut out = Vec::new();
        check(&ws(&[("crates/query/src/engine.rs", src)]), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_variants_fire_without_a_catch_all() {
        let src = r#"
fn f(e: &Edit) -> u8 {
    match e {
        Edit::InsertSubtree { .. } => 1,
        Edit::DeleteSubtree { .. } => 2,
        Edit::MoveSubtree { .. } => 3,
    }
}
"#;
        let mut out = Vec::new();
        check(&ws(&[("crates/query/src/engine.rs", src)]), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("SetValue"), "{}", out[0].message);
    }

    #[test]
    fn test_code_and_test_files_are_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(e: &Edit) -> u8 {
        match e {
            Edit::InsertSubtree { .. } => 1,
            _ => 0,
        }
    }
}
"#;
        let mut out = Vec::new();
        check(&ws(&[("crates/query/src/cached.rs", src)]), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let plain = src.replace("#[cfg(test)]\nmod tests {", "mod m {");
        check(&ws(&[("crates/query/tests/it.rs", &plain)]), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn a_missing_enum_is_itself_a_finding() {
        let ws = Workspace {
            files: vec![SourceFile::from_source(EDIT_ENUM_FILE, "pub struct X;")],
            readme: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("enum Edit"));
    }
}
