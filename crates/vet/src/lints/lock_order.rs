//! `lock-order` — no two lock classes may be acquired in opposite
//! orders anywhere in the call graph.
//!
//! The lock model ([`crate::locks`]) emits one edge per
//! acquired-while-held pair, with call-graph closure folded in. A set
//! of classes that can each be reached from the other (a cycle in the
//! edge digraph) is a potential deadlock: two threads entering the
//! cycle at different points can each hold what the other wants. Every
//! edge lying on a cycle is reported at its acquisition site, so the
//! finding lands where the fix (reordering or splitting the critical
//! section) goes. A self-edge — re-acquiring a class already held — is
//! reported only when the inner acquisition is a literal lock call, not
//! when the class merely recurs in a callee's transitive set, which is
//! usually a same-name resolution artifact (DESIGN.md §16).

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{Finding, Lint};
use crate::locks::{Edge, LockFacts};
use crate::model::Model;

/// Reports every acquired-while-held edge that lies on a cycle.
pub fn check(model: &Model<'_>, facts: &LockFacts, out: &mut Vec<Finding>) {
    // The class digraph, minus indirect self-edges.
    let edges: Vec<&Edge> = facts
        .edges
        .iter()
        .filter(|e| e.held != e.acquired || e.direct)
        .collect();
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        succ.entry(&e.held).or_default().insert(&e.acquired);
    }
    for e in edges {
        let Some(path) = path_between(&succ, &e.acquired, &e.held) else {
            continue;
        };
        let file = &model.ws.files[e.file];
        let cycle = if e.held == e.acquired {
            format!("`{}` is re-acquired while already held", e.held)
        } else {
            let chain: Vec<String> = std::iter::once(e.held.clone())
                .chain(path.iter().map(|c| c.to_string()))
                .collect();
            format!(
                "acquired while `{}` is held, closing the cycle {}",
                e.held,
                chain.join(" -> ")
            )
        };
        file.report(
            out,
            Lint::LockOrder,
            e.line,
            format!("lock `{}` {cycle}: potential deadlock", e.acquired),
        );
    }
}

/// BFS path `from -> … -> to` over the class digraph, inclusive of both
/// endpoints; `Some` even when `from == to` (the trivial path).
fn path_between<'a>(
    succ: &BTreeMap<&str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &next in succ.get(cur).into_iter().flatten() {
            if next == from || prev.contains_key(next) {
                continue;
            }
            prev.insert(next, cur);
            if next == to {
                let mut path = vec![next];
                let mut at = next;
                while at != from {
                    at = *prev.get(at)?;
                    path.push(at);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next);
        }
    }
    None
}
