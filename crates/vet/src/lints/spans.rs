//! `span-vocab`: `vh-query` only emits spans from the stable vocabulary.
//!
//! DESIGN.md §10 freezes the span-tree names — the CLI, the integration
//! tests and external tooling parse them. The vocabulary's single source
//! of truth is `STABLE_SPAN_NAMES` in `crates/obs/src/span.rs`; this
//! lint extracts it textually and checks every span-creating call in
//! `crates/query/src/` (`trace.begin("…")`, `Span::named("…")`,
//! `TraceBuilder::enabled("…")`) against it. A new stage name therefore
//! requires a deliberate vocabulary edit, not just a string literal.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::scan::Tok;
use crate::workspace::Workspace;

/// Where the vocabulary lives.
const VOCAB_FILE: &str = "crates/obs/src/span.rs";
/// The constant holding it.
const VOCAB_CONST: &str = "STABLE_SPAN_NAMES";
/// The crate whose span emissions are checked.
const USE_PREFIX: &str = "crates/query/src/";

/// Runs the lint over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(vocab_file) = ws.file(VOCAB_FILE) else {
        return; // no vh-obs in this tree — nothing to enforce
    };
    let Some(vocab) = extract_vocab(&Code::of(vocab_file)) else {
        out.push(Finding {
            file: VOCAB_FILE.to_string(),
            line: 1,
            lint: Lint::SpanVocab,
            message: format!("`{VOCAB_CONST}` (the stable span vocabulary) not found"),
        });
        return;
    };
    for file in &ws.files {
        if !file.rel.starts_with(USE_PREFIX) {
            continue;
        }
        let code = Code::of(file);
        for i in 0..code.len() {
            if code.suppressed(i) {
                continue;
            }
            let name_pos = span_name_at(&code, i);
            let Some(pos) = name_pos else { continue };
            let Some(name) = code.str_at(pos) else {
                continue;
            };
            if !vocab.iter().any(|v| v == name) {
                file.report(
                    out,
                    Lint::SpanVocab,
                    code.line(pos),
                    format!(
                        "span name \"{name}\" is not in vh-obs `{VOCAB_CONST}` \
                         (crates/obs/src/span.rs)"
                    ),
                );
            }
        }
    }
}

/// If a span-creating call starts at code-position `i`, returns the
/// position of its name literal.
fn span_name_at(code: &Code<'_>, i: usize) -> Option<usize> {
    // `.begin("…")`
    if code.is_punct(i, '.') && code.is_ident(i + 1, "begin") && code.is_punct(i + 2, '(') {
        return code.str_at(i + 3).map(|_| i + 3);
    }
    // `Span::named("…")` / `TraceBuilder::enabled("…")`
    for (ty, method) in [("Span", "named"), ("TraceBuilder", "enabled")] {
        if code.is_ident(i, ty)
            && code.is_punct(i + 1, ':')
            && code.is_punct(i + 2, ':')
            && code.is_ident(i + 3, method)
            && code.is_punct(i + 4, '(')
        {
            return code.str_at(i + 5).map(|_| i + 5);
        }
    }
    None
}

/// Collects the string literals of `pub const STABLE_SPAN_NAMES: … = […];`.
fn extract_vocab(code: &Code<'_>) -> Option<Vec<String>> {
    for i in 0..code.len() {
        if !code.is_ident(i, VOCAB_CONST) {
            continue;
        }
        let mut names = Vec::new();
        let mut j = i + 1;
        while j < code.len() && !code.is_punct(j, ';') {
            if let Some(Tok::Str(s)) = code.kind(j) {
                names.push(s.clone());
            }
            j += 1;
        }
        if !names.is_empty() {
            return Some(names);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn fake_ws(query_src: &str) -> Workspace {
        let vocab = r#"pub const STABLE_SPAN_NAMES: &[&str] = &["query", "parse", "exec"];"#;
        Workspace {
            files: vec![
                SourceFile::from_source(VOCAB_FILE, vocab),
                SourceFile::from_source("crates/query/src/engine.rs", query_src),
            ],
            readme: None,
        }
    }

    #[test]
    fn off_vocabulary_names_fire_and_known_ones_pass() {
        let src = r#"
fn f(trace: &mut T) {
    trace.begin("parse");
    trace.begin("rogue-stage");
    let s = Span::named("exec");
    let r = Span::named("off-vocab");
    let t = TraceBuilder::enabled("query");
}
"#;
        let mut out = Vec::new();
        check(&fake_ws(src), &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 2, "{msgs:?}");
        assert!(msgs[0].contains("rogue-stage"));
        assert!(msgs[1].contains("off-vocab"));
    }

    #[test]
    fn files_outside_vh_query_are_not_checked() {
        let vocab = r#"pub const STABLE_SPAN_NAMES: &[&str] = &["query"];"#;
        let ws = Workspace {
            files: vec![
                SourceFile::from_source(VOCAB_FILE, vocab),
                SourceFile::from_source(
                    "crates/obs/src/json.rs",
                    r#"fn t() { let s = Span::named("anything-goes"); }"#,
                ),
            ],
            readme: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn missing_vocabulary_is_itself_a_finding() {
        let ws = Workspace {
            files: vec![SourceFile::from_source(VOCAB_FILE, "pub struct Span;")],
            readme: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("STABLE_SPAN_NAMES"));
    }
}
