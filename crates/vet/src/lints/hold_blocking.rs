//! `hold-across-blocking` — no lock guard may be live across a
//! blocking operation (socket read/write, WAL append,
//! `Engine::run`/`apply`, sleeps, channel ops).
//!
//! A tenant engine guard held across socket I/O turns one slow client
//! into a stall for every request routed to that tenant; the same holds
//! for the admission guard and the worker registry. Where the hold is
//! by design (the workload harness serialises a whole scenario, the
//! server executes under the engine lock by contract), the site carries
//! a documented `// vet: allow(hold-across-blocking) — <reason>`.

use crate::findings::{Finding, Lint};
use crate::locks::LockFacts;
use crate::model::Model;

/// Reports every guard-across-blocking site found by the lock walk.
pub fn check(model: &Model<'_>, facts: &LockFacts, out: &mut Vec<Finding>) {
    for h in &facts.holds {
        let file = &model.ws.files[h.file];
        let held = h
            .held
            .iter()
            .map(|c| format!("`{c}`"))
            .collect::<Vec<_>>()
            .join(", ");
        let guards = if h.held.len() == 1 { "guard" } else { "guards" };
        file.report(
            out,
            Lint::HoldAcrossBlocking,
            h.line,
            format!(
                "{held} {guards} held across blocking `{}` \
                 (drop the guard first, or document the hold with \
                 `// vet: allow(hold-across-blocking) — <reason>`)",
                h.what
            ),
        );
    }
}
