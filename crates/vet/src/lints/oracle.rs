//! `oracle-twin`: every branch-free kernel keeps its scalar oracle.
//!
//! A function whose name ends in `_swar` or `_branchless` is an optimized
//! rewrite of a simpler byte-loop — and the only thing standing between
//! "clever" and "wrong" is the property test comparing the two. This lint
//! makes that pairing structural: each such kernel in lib code must carry
//! an `// oracle: <name>` comment (doc or plain) within a few lines above
//! its signature, and the named twin must be **defined in the same file**
//! (`#[cfg(test)]` twins count — the oracle only needs to exist for the
//! property suite). Deleting or renaming the scalar twin without updating
//! the kernel fails the build, so SWAR code can never silently outlive
//! its ground truth.
//!
//! The same contract covers cache delta maintenance: a function named
//! `maintain` **with a body** (an implementation of the core crate's
//! `MaintainView` trait) splices edits into a cached artifact, and the
//! only proof a splice equals a rebuild is the recompute-oracle property
//! test. Each such impl must carry the `// oracle: <name>` comment and
//! its named twin in the same file. Bodyless trait *declarations*
//! (`fn maintain(...);`) declare the contract rather than implement it
//! and are exempt.
//!
//! Test regions are exempt (a helper named `*_swar` inside `mod tests` is
//! not a kernel), as are bench/bin/example/vendor files — ablation
//! drivers compare kernels without defining them.

use crate::findings::{Finding, Lint};
use crate::scan::Tok;
use crate::workspace::{FileClass, SourceFile};

/// How many lines above the kernel's name an `oracle:` comment may sit
/// (room for the rest of the doc comment and attributes in between).
const ORACLE_WINDOW: u32 = 5;

/// Suffixes that mark a function as an optimized kernel needing a twin.
const KERNEL_SUFFIXES: &[&str] = &["_swar", "_branchless"];

/// Exact names that mark a function as a cache-maintenance impl needing
/// a recompute twin (when defined with a body).
const MAINTAIN_NAMES: &[&str] = &["maintain"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.class != FileClass::Lib {
        return;
    }
    // Every `oracle:` comment, with the identifier it names (if any).
    let oracles: Vec<(u32, Option<String>)> = file
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Comment { text, .. } => text.find("oracle:").map(|pos| {
                let rest = text[pos + "oracle:".len()..].trim_start();
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                (t.line, (!name.is_empty()).then_some(name))
            }),
            _ => None,
        })
        .collect();
    // Every `fn` definition: (name line, name, in-test-region, name token
    // index — used to tell implementations from bodyless declarations).
    let mut defs: Vec<(u32, &str, bool, usize)> = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if !matches!(&t.kind, Tok::Ident(s) if s == "fn") {
            continue;
        }
        let mut j = i + 1;
        while matches!(
            file.tokens.get(j).map(|t| &t.kind),
            Some(Tok::Comment { .. })
        ) {
            j += 1;
        }
        if let Some(Tok::Ident(name)) = file.tokens.get(j).map(|t| &t.kind) {
            defs.push((file.tokens[j].line, name, file.suppressed[j], j));
        }
    }
    for &(line, name, in_test, at) in &defs {
        if in_test {
            continue;
        }
        let is_kernel = KERNEL_SUFFIXES.iter().any(|s| name.ends_with(s));
        // A trait's `fn maintain(...);` declares the contract; only a
        // definition with a body performs a splice needing a twin.
        let is_maintain = MAINTAIN_NAMES.contains(&name) && has_body(file, at);
        if !is_kernel && !is_maintain {
            continue;
        }
        let what = if is_kernel {
            "branch-free kernel"
        } else {
            "cache-maintenance impl"
        };
        let twin_kind = if is_kernel { "scalar" } else { "recompute" };
        let oracle = oracles
            .iter()
            .rfind(|(c, _)| *c <= line && c + ORACLE_WINDOW >= line);
        match oracle {
            None => file.report(
                out,
                Lint::OracleTwin,
                line,
                format!("{what} `{name}` has no `// oracle:` comment naming its {twin_kind} twin"),
            ),
            Some((_, None)) => file.report(
                out,
                Lint::OracleTwin,
                line,
                format!("{what} `{name}`'s `// oracle:` comment names no identifier"),
            ),
            Some((_, Some(twin))) => {
                if !defs.iter().any(|&(_, n, _, _)| n == twin) {
                    file.report(
                        out,
                        Lint::OracleTwin,
                        line,
                        format!(
                            "oracle twin `{twin}` named by {what} `{name}` is not defined in this file"
                        ),
                    );
                }
            }
        }
    }
}

/// True when the `fn` whose name sits at token index `at` is defined with
/// a body (`{` before `;` at signature depth) rather than declared
/// bodyless inside a trait. Parentheses and brackets are tracked so a
/// `;` inside an array type (`[u8; 4]`) cannot end the signature early.
fn has_body(file: &SourceFile, at: usize) -> bool {
    let mut depth = 0i32;
    for t in &file.tokens[at + 1..] {
        if let Tok::Punct(c) = t.kind {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => return true,
                ';' if depth == 0 => return false,
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn kernel_without_oracle_comment_fires() {
        let src = "\
/// Sums a word at a time.
pub fn sum_swar(xs: &[u8]) -> u64 { 0 }
";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].line, 2);
        assert!(got[0].message.contains("sum_swar"));
    }

    #[test]
    fn kernel_with_missing_twin_fires() {
        let src = "\
/// oracle: sum_scalar
pub fn sum_branchless(xs: &[u8]) -> u64 { 0 }
";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("sum_scalar"));
    }

    #[test]
    fn paired_kernel_is_silent_even_with_a_cfg_test_twin() {
        let src = "\
/// Doc prose above.
///
/// oracle: sum_scalar
#[inline]
pub fn sum_swar(xs: &[u8]) -> u64 { 0 }

#[cfg(test)]
fn sum_scalar(xs: &[u8]) -> u64 { 0 }
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn oracle_comment_too_far_above_does_not_cover() {
        let src = "\
/// oracle: sum_scalar
fn unrelated() {}




pub fn sum_swar(xs: &[u8]) -> u64 { 0 }
fn sum_scalar(xs: &[u8]) -> u64 { 0 }
";
        let got = findings(src);
        assert_eq!(got.len(), 1, "window must have expired: {got:?}");
        assert!(got[0].message.contains("no `// oracle:` comment"));
    }

    #[test]
    fn empty_oracle_name_fires() {
        let src = "\
/// oracle:
pub fn sum_swar(xs: &[u8]) -> u64 { 0 }
";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("names no identifier"));
    }

    #[test]
    fn test_regions_and_non_kernels_are_exempt() {
        let src = "\
pub fn ordinary(x: u64) -> u64 { x }
#[cfg(test)]
mod tests {
    fn helper_swar() -> u64 { 0 }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn non_lib_files_are_exempt() {
        let f = SourceFile::from_source(
            "crates/bench/src/bin/exp_axes.rs",
            "pub fn probe_swar() -> u64 { 0 }\n",
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn maintain_impl_without_oracle_comment_fires() {
        let src = "\
impl MaintainView for Thing {
    fn maintain(&self, d: &ViewDelta) -> Maintained<Self> { Maintained::Unchanged }
}
";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("cache-maintenance impl"));
        assert!(got[0].message.contains("recompute twin"));
    }

    #[test]
    fn trait_declaration_of_maintain_is_exempt() {
        let src = "\
pub trait MaintainView: Sized {
    fn maintain(&self, delta: &ViewDelta, ctx: &MaintainCtx<'_>) -> Maintained<Self>;
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn array_type_semicolons_do_not_end_the_signature() {
        // The `;` inside `[u8; 4]` is type syntax, not the declaration
        // terminator; the `;` after the parens still is.
        let src = "\
pub trait T { fn maintain(&self, xs: [u8; 4]) -> u32; }
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn maintain_impl_with_recompute_twin_is_silent() {
        let src = "\
/// Splice docs.
// oracle: rebuild_thing_oracle
impl MaintainView for Thing {
    fn maintain(&self, d: &ViewDelta) -> Maintained<Self> { Maintained::Unchanged }
}

#[cfg(test)]
mod tests {
    fn rebuild_thing_oracle() -> Thing { Thing }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn maintain_impl_with_missing_twin_fires() {
        let src = "\
// oracle: rebuild_thing_oracle
impl MaintainView for Thing {
    fn maintain(&self, d: &ViewDelta) -> Maintained<Self> { Maintained::Unchanged }
}
";
        let got = findings(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("rebuild_thing_oracle"));
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "\
// vet: allow(oracle-twin) — twin lives in the sibling module
pub fn odd_swar(x: u64) -> u64 { x }
";
        assert!(findings(src).is_empty());
    }
}
