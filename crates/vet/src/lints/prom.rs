//! `prom-name`: Prometheus metric discipline.
//!
//! The exposition writer (`vh-obs`'s `PromWriter`) requires every metric
//! family to be opened (`# HELP`/`# TYPE`) before its samples, and the
//! workspace namespaces every metric `vpbn_` (the suite's historical
//! prefix; `vh_` is accepted for new subsystems). This lint checks both
//! facts at the call-site level, in every non-vendored file:
//!
//! * `.counter("name", "help")` / `.gauge("name", "help")` — the name
//!   must be namespaced snake_case; the call registers the family.
//! * `.sample("name", …)` — the name must be namespaced snake_case *and*
//!   belong to a family opened earlier in the same file.
//!
//! The two-string-argument shape is what distinguishes `PromWriter`
//! family openers from unrelated `counter(…)` lookups (e.g.
//! `Span::counter("axis.range_scans")`), so the lint needs no type
//! information.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::workspace::{FileClass, SourceFile};

/// Accepted metric-name prefixes.
const PREFIXES: &[&str] = &["vpbn_", "vh_"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.class == FileClass::Vendor {
        return;
    }
    let code = Code::of(file);
    let mut families: Vec<String> = Vec::new();
    for i in 0..code.len() {
        if !code.is_punct(i, '.') {
            continue;
        }
        // `.counter("name", "help")` / `.gauge("name", "help")`
        let is_family = (code.is_ident(i + 1, "counter") || code.is_ident(i + 1, "gauge"))
            && code.is_punct(i + 2, '(')
            && code.str_at(i + 3).is_some()
            && code.is_punct(i + 4, ',')
            && code.str_at(i + 5).is_some();
        if is_family {
            let name = code.str_at(i + 3).unwrap_or_default().to_string();
            check_name(file, &code, out, i + 3, &name);
            families.push(name);
            continue;
        }
        // `.sample("name", …)`
        let is_sample = code.is_ident(i + 1, "sample")
            && code.is_punct(i + 2, '(')
            && code.str_at(i + 3).is_some()
            && code.is_punct(i + 4, ',');
        if is_sample {
            let name = code.str_at(i + 3).unwrap_or_default().to_string();
            check_name(file, &code, out, i + 3, &name);
            if !families.contains(&name) {
                file.report(
                    out,
                    Lint::PromName,
                    code.line(i + 3),
                    format!(
                        "sample of `{name}` before its family is opened with \
                         `.counter()`/`.gauge()` in this file (HELP/TYPE grouping)"
                    ),
                );
            }
        }
    }
}

fn check_name(file: &SourceFile, code: &Code<'_>, out: &mut Vec<Finding>, pos: usize, name: &str) {
    if is_metric_name(name) {
        return;
    }
    file.report(
        out,
        Lint::PromName,
        code.line(pos),
        format!(
            "metric name `{name}` is not namespaced snake_case \
             (expected `vpbn_`/`vh_` prefix and [a-z0-9_])"
        ),
    );
}

/// `vpbn_`/`vh_`-prefixed lowercase snake_case.
fn is_metric_name(name: &str) -> bool {
    let Some(rest) = PREFIXES.iter().find_map(|p| name.strip_prefix(p)) else {
        return false;
    };
    !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/query/src/engine.rs", src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn disciplined_exposition_is_clean() {
        let src = r#"
fn metrics(w: &mut PromWriter) {
    w.counter("vpbn_queries_total", "Queries attempted.");
    w.sample("vpbn_queries_total", &[], 7);
    w.gauge("vh_cache_entries", "Live entries.");
    w.sample("vh_cache_entries", &[("artifact", "expansions")], 3);
}
"#;
        assert!(findings(src).is_empty());
    }

    #[test]
    fn bad_names_and_orphan_samples_fire() {
        let src = r#"
fn metrics(w: &mut PromWriter) {
    w.counter("queries_total", "No namespace.");
    w.counter("vpbn_BadName", "Uppercase.");
    w.sample("vpbn_orphan_total", &[], 1);
}
"#;
        let got = findings(src);
        assert_eq!(got.len(), 3);
        assert!(got[0].message.contains("queries_total"));
        assert!(got[1].message.contains("vpbn_BadName"));
        assert!(got[2].message.contains("before its family is opened"));
    }

    #[test]
    fn span_counter_lookups_are_not_families() {
        let src = r#"fn f(s: &Span) { let n = s.counter("axis.range_scans"); }"#;
        assert!(findings(src).is_empty());
    }

    #[test]
    fn vendor_files_are_exempt() {
        let f = SourceFile::from_source(
            "vendor/criterion/src/lib.rs",
            r#"fn f(w: &mut W) { w.sample("anything", &[], 1); }"#,
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert!(out.is_empty());
    }
}
