//! `api-surface`: the VHRPC wire tables and the crate surface stay in
//! sync.
//!
//! The serve crate freezes three tables whose drift clippy cannot see
//! (DESIGN.md §15): the verb and status enums in
//! `crates/serve/src/wire.rs`, their README documentation, and the
//! blessed v1 query API. Four legs, each a separate finding:
//!
//! 1. **Table totality** — every `Verb`/`WireStatus` variant has an arm
//!    in its `code()` and `wire_name()` (a new variant must be priced
//!    and named before it ships).
//! 2. **README sync** — every string `wire_name()` returns has a row in
//!    a README table (first cell, backticks stripped).
//! 3. **Crate surface** — every `pub struct`/`pub enum` the wire module
//!    defines is re-exported from the serve crate root, so embedders
//!    never reach into `wire::` internals.
//! 4. **Frozen v1 API** — `vh-serve` library code imports only
//!    `vh_query` items that `crates/query/src/api.rs` re-exports: the
//!    server is a client of the frozen surface, not of engine
//!    internals.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::scan::Tok;
use crate::workspace::{FileClass, Workspace};

/// The wire tables' home.
const WIRE: &str = "crates/serve/src/wire.rs";
/// The serve crate root whose re-exports mirror the wire surface.
const SERVE_LIB: &str = "crates/serve/src/lib.rs";
/// The blessed v1 query API.
const API: &str = "crates/query/src/api.rs";
/// The audited table enums.
const TABLE_ENUMS: &[&str] = &["Verb", "WireStatus"];

/// Runs the lint over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(wire) = ws.file(WIRE) else {
        return; // no serve crate in this tree — nothing to enforce
    };
    let code = Code::of(wire);

    for enum_name in TABLE_ENUMS {
        check_table_enum(ws, &code, enum_name, out);
    }
    check_crate_surface(ws, &code, out);
    check_frozen_api(ws, out);
}

/// Legs 1 and 2 for one table enum.
fn check_table_enum(ws: &Workspace, code: &Code<'_>, enum_name: &str, out: &mut Vec<Finding>) {
    let Some(wire) = ws.file(WIRE) else { return };
    let variants = super::enum_variants(code, enum_name);
    if variants.is_empty() {
        wire.report(
            out,
            Lint::ApiSurface,
            1,
            format!("wire table enum `{enum_name}` not found in {WIRE}"),
        );
        return;
    }
    let Some((impl_start, impl_end)) = impl_block(code, enum_name) else {
        wire.report(
            out,
            Lint::ApiSurface,
            variants[0].1,
            format!("`impl {enum_name}` not found in {WIRE}"),
        );
        return;
    };
    for fn_name in ["code", "wire_name"] {
        let Some((body_start, body_end)) = super::fn_body_in(code, impl_start, impl_end, fn_name)
        else {
            wire.report(
                out,
                Lint::ApiSurface,
                variants[0].1,
                format!("`{enum_name}::{fn_name}()` not found in {WIRE}"),
            );
            continue;
        };
        let matched = super::matched_variants(code, body_start, body_end, enum_name);
        for (variant, line) in &variants {
            if !matched.iter().any(|m| m == variant) {
                wire.report(
                    out,
                    Lint::ApiSurface,
                    *line,
                    format!("`{enum_name}::{variant}` has no arm in `{fn_name}()` — the wire table is not total"),
                );
            }
        }
    }
    // Leg 2: every wire name is documented.
    let Some(readme) = &ws.readme else { return };
    let rows = readme_name_rows(readme);
    let Some((body_start, body_end)) = super::fn_body_in(code, impl_start, impl_end, "wire_name")
    else {
        return; // already reported above
    };
    for i in body_start..body_end {
        let Some(Tok::Str(name)) = code.kind(i) else {
            continue;
        };
        if !rows.iter().any(|r| r == name) {
            wire.report(
                out,
                Lint::ApiSurface,
                code.line(i),
                format!("wire name `{name}` has no row in a README.md table"),
            );
        }
    }
}

/// Leg 3: the serve crate root re-exports every wire pub type.
fn check_crate_surface(ws: &Workspace, code: &Code<'_>, out: &mut Vec<Finding>) {
    let (Some(wire), Some(lib)) = (ws.file(WIRE), ws.file(SERVE_LIB)) else {
        return;
    };
    let lib_code = Code::of(lib);
    let mut exported = Vec::new();
    for i in 0..lib_code.len() {
        if let Some(Tok::Ident(name)) = lib_code.kind(i) {
            exported.push(name.clone());
        }
    }
    for i in 0..code.len() {
        if !code.is_ident(i, "pub") {
            continue;
        }
        let is_type = code.is_ident(i + 1, "struct") || code.is_ident(i + 1, "enum");
        if !is_type {
            continue;
        }
        let Some(Tok::Ident(name)) = code.kind(i + 2) else {
            continue;
        };
        if !exported.iter().any(|e| e == name) {
            wire.report(
                out,
                Lint::ApiSurface,
                code.line(i + 2),
                format!("wire pub type `{name}` is not re-exported from {SERVE_LIB}"),
            );
        }
    }
}

/// Leg 4: serve lib code imports only blessed `vh_query` items.
fn check_frozen_api(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(api) = ws.file(API) else { return };
    let api_code = Code::of(api);
    let mut blessed = Vec::new();
    for i in 0..api_code.len() {
        if let Some(Tok::Ident(name)) = api_code.kind(i) {
            blessed.push(name.clone());
        }
    }
    for file in &ws.files {
        if file.class != FileClass::Lib || !file.rel.starts_with("crates/serve/src/") {
            continue;
        }
        let code = Code::of(file);
        for i in 0..code.len() {
            if !(code.is_ident(i, "use") && code.is_ident(i + 1, "vh_query")) {
                continue;
            }
            let mut j = i + 2;
            while j < code.len() && !code.is_punct(j, ';') {
                // A type name is terminal in the use-tree when the next
                // token is not `::` (path continues) — `,`, `}`, `;` and
                // `as` all end the segment.
                if let Some(Tok::Ident(name)) = code.kind(j) {
                    let terminal = !code.is_punct(j + 1, ':');
                    let is_type = name.chars().next().is_some_and(char::is_uppercase);
                    if terminal && is_type && !blessed.iter().any(|b| b == name) {
                        file.report(
                            out,
                            Lint::ApiSurface,
                            code.line(j),
                            format!(
                                "`vh_query::{name}` is not re-exported by {API} — \
                                 vh-serve must stay on the frozen v1 surface"
                            ),
                        );
                    }
                }
                j += 1;
            }
        }
    }
}

/// Code-token range inside `impl <name> { … }` (the inherent impl, not
/// trait impls, which carry a `for` token).
fn impl_block(code: &Code<'_>, name: &str) -> Option<(usize, usize)> {
    for i in 0..code.len() {
        if code.is_ident(i, "impl") && code.is_ident(i + 1, name) && code.is_punct(i + 2, '{') {
            return Some((i + 3, code.matching_brace(i + 2)));
        }
    }
    None
}

/// First-cell values of markdown table rows, backticks stripped:
/// ``| `point` | 1 | …`` → `point`.
fn readme_name_rows(readme: &str) -> Vec<String> {
    readme
        .lines()
        .filter_map(|l| {
            let cell = l.trim().strip_prefix('|')?.split('|').next()?.trim();
            let name = cell.trim_matches('`').trim();
            (!name.is_empty()).then(|| name.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    const GOOD_WIRE: &str = r#"
pub enum Verb { Point, Twig }
impl Verb {
    pub fn code(self) -> u8 {
        match self { Verb::Point => 1, Verb::Twig => 2 }
    }
    pub fn wire_name(self) -> &'static str {
        match self { Verb::Point => "point", Verb::Twig => "twig" }
    }
}
pub enum WireStatus { Ok }
impl WireStatus {
    pub fn code(self) -> u8 { match self { WireStatus::Ok => 0 } }
    pub fn wire_name(self) -> &'static str {
        match self { WireStatus::Ok => "ok" }
    }
}
pub struct Address { pub tenant: String }
"#;

    const GOOD_LIB: &str = "pub use wire::{Address, Verb, WireStatus};";
    const GOOD_README: &str = "| `point` | 1 |\n| `twig` | 2 |\n| `ok` | 0 |\n";

    fn run(wire: &str, lib: &str, readme: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![
                SourceFile::from_source(WIRE, wire),
                SourceFile::from_source(SERVE_LIB, lib),
            ],
            readme: Some(readme.to_string()),
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn a_synchronized_surface_is_clean() {
        assert_eq!(run(GOOD_WIRE, GOOD_LIB, GOOD_README), vec![]);
    }

    #[test]
    fn a_missing_arm_is_reported_once_per_function() {
        let wire = GOOD_WIRE.replace(", Verb::Twig => 2", "");
        let findings = run(&wire, GOOD_LIB, GOOD_README);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("`Verb::Twig` has no arm in `code()`"));
    }

    #[test]
    fn an_undocumented_wire_name_is_reported() {
        let readme = "| `point` | 1 |\n| `ok` | 0 |\n"; // no `twig` row
        let findings = run(GOOD_WIRE, GOOD_LIB, readme);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("wire name `twig`"));
    }

    #[test]
    fn a_missing_reexport_is_reported() {
        let findings = run(GOOD_WIRE, "pub use wire::{Verb, WireStatus};", GOOD_README);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("`Address` is not re-exported"));
    }

    #[test]
    fn an_unblessed_vh_query_import_is_reported() {
        let ws = Workspace {
            files: vec![
                SourceFile::from_source(WIRE, GOOD_WIRE),
                SourceFile::from_source(SERVE_LIB, GOOD_LIB),
                SourceFile::from_source(API, "pub use crate::engine::{Engine};"),
                SourceFile::from_source(
                    "crates/serve/src/server.rs",
                    "use vh_query::{Engine, SecretPlanner};",
                ),
            ],
            readme: Some(GOOD_README.to_string()),
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`vh_query::SecretPlanner`"));
        assert!(out[0].file.ends_with("server.rs"));
    }
}
