//! `no-panic`: lib-crate non-test code never panics on purpose.
//!
//! The workspace contract (DESIGN.md §7) is that every failure in
//! library code is a typed error; panics are reserved for documented
//! caller bugs, each carrying a `// vet: allow(no-panic) — <reason>`
//! comment. This lint flags `panic!`, `todo!`, `unimplemented!`, `dbg!`,
//! `.unwrap()` and `.expect(…)` in [`FileClass::Lib`] files outside
//! `#[cfg(test)]` regions.
//!
//! One deliberate blind spot: `.expect(…)` on a `self` receiver is
//! skipped, because the workspace's hand-rolled parsers define their own
//! `fn expect(&mut self, …)` cursor methods (e.g. `vh-obs`'s JSON
//! reader) that are ordinary fallible calls, not `Option::expect`.

use crate::findings::{Finding, Lint};
use crate::lints::Code;
use crate::workspace::{FileClass, SourceFile};

/// Macros that are always a panic in disguise.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "dbg"];

/// Runs the lint over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.class != FileClass::Lib {
        return;
    }
    let code = Code::of(file);
    for i in 0..code.len() {
        if code.suppressed(i) {
            continue;
        }
        // `panic!(` / `todo!(` / `unimplemented!(` / `dbg!(`
        if let Some(crate::scan::Tok::Ident(name)) = code.kind(i) {
            if PANIC_MACROS.contains(&name.as_str()) && code.is_punct(i + 1, '!') {
                file.report(
                    out,
                    Lint::NoPanic,
                    code.line(i),
                    format!("`{name}!` in lib-crate code (return a typed error instead)"),
                );
            }
        }
        // `.unwrap()` / `.expect(`
        if code.is_punct(i, '.') && code.is_punct(i + 2, '(') {
            let method = match code.kind(i + 1) {
                Some(crate::scan::Tok::Ident(m)) if m == "unwrap" || m == "expect" => m.clone(),
                _ => continue,
            };
            if method == "expect" && i > 0 && code.is_ident(i - 1, "self") {
                continue; // a cursor method, not Option/Result::expect
            }
            file.report(
                out,
                Lint::NoPanic,
                code.line(i + 1),
                format!(
                    "`.{method}()` in lib-crate code (propagate the error, or add \
                     `// vet: allow(no-panic) — <reason>` for a documented caller bug)"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(rel, src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn every_forbidden_form_fires() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    dbg!(x);
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a > b { panic!(\"boom\") }
    todo!()
}
fn g() { unimplemented!() }
";
        let got = findings("crates/x/src/lib.rs", src);
        let lines: Vec<u32> = got.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6, 8]);
        assert!(got.iter().all(|f| f.lint == Lint::NoPanic));
    }

    #[test]
    fn scope_and_suppression_rules() {
        let panicky = "fn f() { panic!() }";
        assert!(
            findings("crates/bench/src/lib.rs", panicky).is_empty(),
            "bench exempt"
        );
        assert!(
            findings("vendor/rand/src/lib.rs", panicky).is_empty(),
            "vendor exempt"
        );
        assert!(
            findings("tests/oracle.rs", panicky).is_empty(),
            "tests exempt"
        );
        assert!(
            findings("src/bin/vpbn.rs", panicky).is_empty(),
            "bins exempt"
        );
        assert_eq!(
            findings("src/lib.rs", panicky).len(),
            1,
            "facade lib in scope"
        );

        let in_tests = "#[cfg(test)]\nmod tests { fn f() { x.unwrap() } }";
        assert!(findings("crates/x/src/lib.rs", in_tests).is_empty());

        let allowed = "// vet: allow(no-panic) — documented caller bug\nx.unwrap();";
        assert!(findings("crates/x/src/lib.rs", allowed).is_empty());
    }

    #[test]
    fn lookalikes_do_not_fire() {
        let src = "\
fn f() {
    let s = \"panic! unwrap()\"; // panic! in a comment
    x.unwrap_or(0);
    x.unwrap_or_default();
    self.expect(b'{');
    should_panic();
}
";
        assert!(findings("crates/x/src/lib.rs", src).is_empty());
    }
}
