//! SARIF 2.1.0 rendering of findings, hand-rolled like the JSON report
//! (the workspace is dependency-free by design).
//!
//! The document carries one run with one rule per registered lint, so
//! GitHub code scanning groups findings by lint id and shows the lint's
//! one-line description next to each alert.

use crate::findings::{Finding, ALL_LINTS};

/// The SARIF 2.1.0 schema URI GitHub code scanning expects.
const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders findings as a SARIF 2.1.0 document.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::from("{\"$schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"vh-vet\",\"informationUri\":");
    out.push_str("\"https://github.com/\",\"rules\":[");
    for (i, lint) in ALL_LINTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":\"");
        out.push_str(lint.id());
        out.push_str("\",\"shortDescription\":{\"text\":\"");
        escape_into(&mut out, lint.describe());
        out.push_str("\"},\"defaultConfiguration\":{\"level\":\"");
        out.push_str(lint.level());
        out.push_str("\"}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = ALL_LINTS
            .iter()
            .position(|l| *l == f.lint)
            .unwrap_or_default();
        out.push_str("{\"ruleId\":\"");
        out.push_str(f.lint.id());
        out.push_str("\",\"ruleIndex\":");
        out.push_str(&rule_index.to_string());
        out.push_str(",\"level\":\"");
        out.push_str(f.lint.level());
        out.push_str("\",\"message\":{\"text\":\"");
        escape_into(&mut out, &f.message);
        out.push_str("\"},\"locations\":[{\"physicalLocation\":{");
        out.push_str("\"artifactLocation\":{\"uri\":\"");
        escape_into(&mut out, &f.file);
        out.push_str("\"},\"region\":{\"startLine\":");
        out.push_str(&f.line.to_string());
        out.push_str("}}}]}");
    }
    out.push_str("]}]}");
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Lint;

    #[test]
    fn the_document_carries_every_rule_and_pins_locations() {
        let findings = vec![
            Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                lint: Lint::LockOrder,
                message: "cycle \"a\" -> b".into(),
            },
            Finding {
                file: "src/lib.rs".into(),
                line: 3,
                lint: Lint::StaleAllow,
                message: "stale".into(),
            },
        ];
        let doc = to_sarif(&findings);
        assert!(doc.contains("sarif-2.1.0"));
        assert!(doc.contains("\"version\":\"2.1.0\""));
        for l in ALL_LINTS {
            assert!(
                doc.contains(&format!("{{\"id\":\"{}\"", l.id())),
                "{}",
                l.id()
            );
        }
        assert!(doc.contains("\"ruleId\":\"lock-order\""));
        assert!(doc.contains("cycle \\\"a\\\" -> b"));
        assert!(doc.contains("\"startLine\":7"));
        // stale-allow is warning level; lock-order is an error.
        assert!(doc.contains("\"ruleId\":\"stale-allow\",\"ruleIndex\":13,\"level\":\"warning\""));
        assert!(doc.contains("\"level\":\"error\""));
    }

    #[test]
    fn an_empty_run_is_still_a_valid_document() {
        let doc = to_sarif(&[]);
        assert!(doc.contains("\"results\":[]"));
        assert!(doc.ends_with("]}]}"));
    }
}
