//! The workspace semantic model: an item index over every lib-crate
//! source file.
//!
//! vh-vet's original lints are token-local; the lock-order,
//! hold-across-blocking and hot-path families need to see *across*
//! function boundaries. This module builds the layer they share: every
//! `fn` definition in lib scope, with its impl-block owner, body token
//! range, guard-returning signature, and `// vet: hot` marker. The
//! [`crate::callgraph`] and [`crate::locks`] modules build on top.
//!
//! The model is approximate by design (DESIGN.md §16): it is derived
//! from the token stream, not a parse tree, so generics, macros and
//! trait dispatch are resolved by name, not by type.

use std::collections::HashMap;

use crate::lints::Code;
use crate::scan::Tok;
use crate::workspace::{FileClass, Workspace};

/// How many lines above a `fn` a `// vet: hot` marker may sit — the
/// same window the oracle-twin lint uses for its comments.
pub const HOT_WINDOW: u32 = 5;

/// Guard types std hands back from lock acquisitions. A fn whose return
/// type names one of these re-exports a lock it takes internally.
pub const STD_GUARDS: &[&str] = &["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// One `fn` definition in lib scope.
pub struct FnDef {
    /// Index of the defining file in `Workspace::files`.
    pub file: usize,
    /// Bare fn name.
    pub name: String,
    /// Self type of the enclosing `impl` block, when any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token range of the body: `(open_brace, close_brace)`.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// A `*Guard` type named in the return type, when any. The fn then
    /// counts as a lock acquisition at its call sites.
    pub ret_guard: Option<String>,
    /// Defined inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Carries a `// vet: hot` marker: a hot-path purity root.
    pub hot: bool,
}

impl FnDef {
    /// `Owner::name` or the bare name, for findings.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The item index plus per-file code views, shared by the semantic
/// lint families.
pub struct Model<'w> {
    /// The loaded workspace.
    pub ws: &'w Workspace,
    /// Comment-free code view per file (all classes; only lib files
    /// are indexed for fns).
    pub(crate) codes: Vec<Code<'w>>,
    /// Every lib-scope fn definition.
    pub fns: Vec<FnDef>,
    /// Every impl-block self type seen in lib scope.
    pub owners: std::collections::HashSet<String>,
    by_name: HashMap<String, Vec<usize>>,
}

/// The crate a workspace-relative path belongs to (`crates/<name>/…`),
/// or `"root"` for the top-level `src/` tree.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("root")
}

impl<'w> Model<'w> {
    /// Indexes every lib-scope file of the workspace.
    pub fn build(ws: &'w Workspace) -> Model<'w> {
        let mut codes = Vec::with_capacity(ws.files.len());
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            let code = Code::of(file);
            if file.class == FileClass::Lib {
                index_fns(&code, fi, &mut fns);
            }
            codes.push(code);
        }
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut owners = std::collections::HashSet::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some(o) = &f.owner {
                owners.insert(o.clone());
            }
        }
        Model {
            ws,
            codes,
            fns,
            owners,
            by_name,
        }
    }

    /// Fn ids sharing a bare name (callers filter test definitions).
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The code view of the file defining `f`.
    pub(crate) fn code_of(&self, f: &FnDef) -> &Code<'w> {
        &self.codes[f.file]
    }

    /// Body ranges of *other* fns nested inside `outer`'s body. The
    /// lock and purity walks skip these so an inner helper's
    /// acquisitions are not charged to the outer fn.
    pub fn nested_bodies(&self, outer: usize) -> Vec<(usize, usize)> {
        let of = &self.fns[outer];
        let Some((start, end)) = of.body else {
            return Vec::new();
        };
        let mut out: Vec<(usize, usize)> = self
            .fns
            .iter()
            .enumerate()
            .filter(|&(i, f)| i != outer && f.file == of.file)
            .filter_map(|(_, f)| f.body)
            .filter(|&(s, e)| s > start && e < end)
            .collect();
        out.sort_unstable();
        out
    }
}

/// Scans one code view for `impl` blocks and `fn` definitions.
fn index_fns(code: &Code<'_>, file: usize, out: &mut Vec<FnDef>) {
    // Impl regions with their self-type, innermost last.
    let mut impls: Vec<(usize, usize, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code.is_ident(i, "impl") {
            if let Some((open, owner)) = impl_header(code, i) {
                impls.push((open, code.matching_brace(open), owner));
            }
        }
        i += 1;
    }
    for i in 0..code.len() {
        if !code.is_ident(i, "fn") {
            continue;
        }
        let Some(Tok::Ident(name)) = code.kind(i + 1) else {
            continue;
        };
        let name = name.clone();
        let Some(sig_end) = sig_end(code, i + 2) else {
            continue;
        };
        let body = if code.is_punct(sig_end, '{') {
            Some((sig_end, code.matching_brace(sig_end)))
        } else {
            None
        };
        let owner = impls
            .iter()
            .rev()
            .find(|&&(open, close, _)| open < i && i < close)
            .and_then(|(_, _, o)| o.clone());
        let line = code.line(i);
        let hot_from = line.saturating_sub(HOT_WINDOW);
        let hot = code
            .source()
            .hots
            .iter()
            .any(|&h| hot_from <= h && h <= line);
        out.push(FnDef {
            file,
            name,
            owner,
            line,
            body,
            ret_guard: ret_guard(code, i, sig_end),
            in_test: code.suppressed(i),
            hot,
        });
    }
}

/// Parses an `impl` header starting at `at` (the `impl` keyword):
/// returns the position of the opening `{` and the self type — the
/// ident after `for` when present, else the first ident after the
/// generic parameter list.
fn impl_header(code: &Code<'_>, at: usize) -> Option<(usize, Option<String>)> {
    let mut j = at + 1;
    // Skip `<…>` generics; `->` inside bounds must not close the list.
    if code.is_punct(j, '<') {
        let mut depth = 0usize;
        while j < code.len() {
            if code.is_punct(j, '-') && code.is_punct(j + 1, '>') {
                j += 2;
                continue;
            }
            if code.is_punct(j, '<') {
                depth += 1;
            } else if code.is_punct(j, '>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let mut owner_from = j;
    let mut k = j;
    loop {
        if k >= code.len() || code.is_punct(k, ';') {
            return None;
        }
        if code.is_ident(k, "for") {
            owner_from = k + 1;
        }
        if code.is_punct(k, '{') {
            break;
        }
        k += 1;
    }
    let owner = (owner_from..k).find_map(|p| match code.kind(p) {
        Some(Tok::Ident(s)) if s != "dyn" => Some(s.clone()),
        _ => None,
    });
    Some((k, owner))
}

/// Position of the `{` opening the body, or of the `;` ending a bodyless
/// declaration, scanning from just past the fn name. Depth-aware over
/// `(`/`[` so defaults and array types cannot fake the end.
fn sig_end(code: &Code<'_>, from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    while j < code.len() {
        match code.kind(j) {
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth = depth.saturating_sub(1),
            Some(Tok::Punct('{')) if depth == 0 => return Some(j),
            Some(Tok::Punct(';')) if depth == 0 => return Some(j),
            None => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// The first `*Guard` ident in the return type (between `->` and the
/// signature end), when any.
fn ret_guard(code: &Code<'_>, fn_at: usize, sig_end: usize) -> Option<String> {
    let mut j = fn_at;
    let mut depth = 0usize;
    let mut arrow = None;
    while j < sig_end {
        match code.kind(j) {
            Some(Tok::Punct('(' | '[')) => depth += 1,
            Some(Tok::Punct(')' | ']')) => depth = depth.saturating_sub(1),
            Some(Tok::Punct('-')) if depth == 0 && code.is_punct(j + 1, '>') => {
                arrow = Some(j + 2);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let from = arrow?;
    (from..sig_end).find_map(|p| match code.kind(p) {
        Some(Tok::Ident(s)) if s.ends_with("Guard") => Some(s.clone()),
        _ => None,
    })
}
