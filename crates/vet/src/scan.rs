//! A hand-rolled Rust token scanner.
//!
//! `vh-vet` needs just enough lexical structure to tell code from
//! comments and string literals, attach a line number to every token, and
//! recognise `#[cfg(test)]` regions — nothing a full parser provides is
//! required, and the workspace's no-external-deps rule forbids `syn`.
//! The scanner handles the Rust surface the workspace actually uses:
//! line and (nested) block comments, cooked/raw/byte string literals,
//! char literals vs. lifetimes, identifiers, integer/float literals and
//! single-character punctuation. Everything it does not model (shebangs,
//! frontmatter, exotic suffixes) degrades to `Punct`/`Num` tokens, which
//! the lints ignore.

/// What a token is. String and comment *contents* are preserved because
/// several lints match on them (`SAFETY:` comments, span-name literals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unsafe`, `fn`, `unwrap`, …).
    Ident(String),
    /// A string literal's contents, escapes left as written.
    Str(String),
    /// A comment's text with the `//`/`/*` markers stripped and the
    /// remainder trimmed. `doc` is true for `///`, `//!`, `/**`, `/*!`.
    Comment {
        /// Comment text without markers, trimmed.
        text: String,
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// A numeric literal, verbatim (`42`, `0x7f`, `1_000`).
    Num(String),
    /// One character of punctuation (`.`, `!`, `(`, `{`, …).
    Punct(char),
    /// A char literal or lifetime — carried for completeness, unused by
    /// the lints.
    Other,
}

/// One token with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based line of the token's first character.
    pub line: u32,
    /// The token itself.
    pub kind: Tok,
}

/// Scans `src` into a token stream. The scanner never fails: malformed
/// input (an unterminated string, say) yields a best-effort tail token,
/// which is the right behaviour for a linter that must keep going.
pub fn scan(src: &str) -> Vec<Token> {
    Scanner {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Scanner<'_> {
    fn run(mut self) -> Vec<Token> {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.cooked_string(),
                b'\'' => self.char_or_lifetime(),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    // Multi-byte UTF-8 only occurs inside strings/comments
                    // in this workspace; a stray lead byte is punctuation
                    // noise the lints never look at.
                    self.push(Tok::Punct(char::from(b)));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Tok) {
        self.out.push(Token {
            line: self.line,
            kind,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..end]);
        let doc = raw.starts_with('/') || raw.starts_with('!');
        let text = raw.trim_start_matches(['/', '!']).trim().to_string();
        self.push(Tok::Comment { text, doc });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        let mut depth = 1usize;
        let mut i = start;
        while i < self.bytes.len() && depth > 0 {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                i += 1;
            } else if self.bytes[i] == b'/' && self.bytes.get(i + 1) == Some(&b'*') {
                depth += 1;
                i += 2;
            } else if self.bytes[i] == b'*' && self.bytes.get(i + 1) == Some(&b'/') {
                depth -= 1;
                i += 2;
            } else {
                i += 1;
            }
        }
        let end = i.saturating_sub(2).max(start);
        let raw = String::from_utf8_lossy(&self.bytes[start..end]);
        let doc = raw.starts_with('*') || raw.starts_with('!');
        let text = raw
            .trim_start_matches(['*', '!'])
            .trim()
            .replace("\n", " ")
            .to_string();
        self.out.push(Token {
            line,
            kind: Tok::Comment { text, doc },
        });
        self.pos = i;
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` and `b'x'`.
    /// Returns false when the leading `r`/`b` begins a plain identifier,
    /// leaving the position untouched.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = self.pos + 1;
        if self.bytes[self.pos] == b'b' {
            if self.peek(1) == Some(b'\'') {
                // Byte char literal b'x' / b'\n'.
                self.pos += 1; // consume `b`, then reuse the char scanner
                self.char_literal();
                return true;
            }
            if self.peek(1) == Some(b'r') {
                i += 1;
            } else if self.peek(1) != Some(b'"') {
                return false;
            }
        }
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'"') {
            return false;
        }
        if hashes == 0 && self.bytes[self.pos] != b'r' && self.peek(1) == Some(b'"') {
            // b"…" — cooked with escapes.
            self.pos += 1;
            self.cooked_string();
            return true;
        }
        // Raw: scan to `"` followed by `hashes` hashes, no escapes.
        let content_start = i + 1;
        let line = self.line;
        let mut j = content_start;
        while j < self.bytes.len() {
            if self.bytes[j] == b'\n' {
                self.line += 1;
                j += 1;
                continue;
            }
            if self.bytes[j] == b'"'
                && self.bytes[j + 1..]
                    .iter()
                    .take(hashes)
                    .eq(std::iter::repeat_n(&b'#', hashes))
            {
                break;
            }
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[content_start..j.min(self.bytes.len())]);
        self.out.push(Token {
            line,
            kind: Tok::Str(text.into_owned()),
        });
        self.pos = (j + 1 + hashes).min(self.bytes.len());
        true
    }

    /// Cooked string; the scanner is positioned at the opening quote.
    fn cooked_string(&mut self) {
        let line = self.line;
        let start = self.pos + 1;
        let mut i = start;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'"' => break,
                b'\n' => {
                    self.line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..i.min(self.bytes.len())]);
        self.out.push(Token {
            line,
            kind: Tok::Str(text.into_owned()),
        });
        self.pos = (i + 1).min(self.bytes.len());
    }

    fn char_or_lifetime(&mut self) {
        // A lifetime is `'` + ident not followed by a closing `'`.
        let is_lifetime = match self.peek(1) {
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // 'a' is a char literal; 'a is a lifetime; 'static too.
                let mut j = self.pos + 2;
                while self
                    .bytes
                    .get(j)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    j += 1;
                }
                self.bytes.get(j) != Some(&b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.push(Tok::Other);
            self.pos += 2;
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
        } else {
            self.char_literal();
        }
    }

    fn char_literal(&mut self) {
        // At the opening `'`; consume through the closing `'`.
        let mut i = self.pos + 1;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'\'' => {
                    i += 1;
                    break;
                }
                b'\n' => break, // malformed; don't run away
                _ => i += 1,
            }
        }
        self.push(Tok::Other);
        self.pos = i;
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Tok::Ident(text));
    }

    fn number(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Tok::Num(text));
    }
}

/// Marks the token ranges covered by `#[cfg(test)]` (or any `cfg(...)`
/// attribute mentioning `test`) so lints can skip test-only code. Returns
/// one flag per token: `true` means the token is inside a test region.
///
/// The recognition is brace-based: after a test-cfg attribute, the next
/// `{` opens the suppressed region, which ends at its matching `}`. This
/// covers `#[cfg(test)] mod tests { … }` and cfg-gated functions, the two
/// shapes the workspace uses.
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut suppressed = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_test_cfg_attr(tokens, i) {
            // Find the `{` that opens the gated item, then its match. A
            // brace-less gated item (`#[cfg(test)] use …;`) ends at the
            // first `;` instead.
            let mut j = i;
            while j < tokens.len()
                && tokens[j].kind != Tok::Punct('{')
                && tokens[j].kind != Tok::Punct(';')
            {
                j += 1;
            }
            if tokens.get(j).map(|t| &t.kind) == Some(&Tok::Punct(';')) {
                for flag in suppressed.iter_mut().take(j + 1).skip(i) {
                    *flag = true;
                }
                i = j + 1;
                continue;
            }
            let mut depth = 0usize;
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].kind {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            for flag in suppressed
                .iter_mut()
                .take(k.min(tokens.len() - 1) + 1)
                .skip(i)
            {
                *flag = true;
            }
            i = k + 1;
        } else {
            i += 1;
        }
    }
    suppressed
}

/// Does the token at `i` start a `#[cfg(…test…)]` or `#[test]` attribute?
fn is_test_cfg_attr(tokens: &[Token], i: usize) -> bool {
    if tokens[i].kind != Tok::Punct('#') {
        return false;
    }
    let Some(t1) = tokens.get(i + 1) else {
        return false;
    };
    if t1.kind != Tok::Punct('[') {
        return false;
    }
    // `#[test]`
    if let (Some(t2), Some(t3)) = (tokens.get(i + 2), tokens.get(i + 3)) {
        if t2.kind == Tok::Ident("test".into()) && t3.kind == Tok::Punct(']') {
            return true;
        }
        // `#[cfg(...)]` with `test` anywhere inside the balanced brackets.
        if t2.kind == Tok::Ident("cfg".into()) && t3.kind == Tok::Punct('(') {
            let mut depth = 0usize;
            let mut saw_test = false;
            for t in &tokens[i + 3..] {
                match &t.kind {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(s) if s == "test" => saw_test = true,
                    _ => {}
                }
            }
            return saw_test;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r#"
            let a = "panic!(unwrap)"; // unwrap in a comment
            /* block panic! */
            let b = 'x';
            let c = b"bytes";
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = r##"let s = r#"a "quoted" unwrap()"#; s.len()"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn comment_markers_inside_raw_strings_do_not_open_comments() {
        let src = r###"let p = r#"// not a comment /* nor this"#; q.unwrap()"###;
        let toks = scan(src);
        assert!(
            !toks.iter().any(|t| matches!(t.kind, Tok::Comment { .. })),
            "raw string contents must stay opaque: {toks:?}"
        );
        // The code *after* the raw string is still scanned normally.
        assert!(idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner unwrap() */ still comment */ fn after() {}";
        let toks = scan(src);
        let comments = toks
            .iter()
            .filter(|t| matches!(t.kind, Tok::Comment { .. }))
            .count();
        assert_eq!(comments, 1, "one nested comment, not two: {toks:?}");
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"still".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        assert_eq!(ids.iter().filter(|s| *s == "f").count(), 1);
    }

    #[test]
    fn comment_text_and_doc_flag_are_preserved() {
        let toks = scan("/// SAFETY: fine\n// vet: allow(no-panic) — ok\nlet x = 1;");
        let comments: Vec<(String, bool)> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Comment { text, doc } => Some((text, doc)),
                _ => None,
            })
            .collect();
        assert_eq!(comments[0], ("SAFETY: fine".to_string(), true));
        assert_eq!(
            comments[1],
            ("vet: allow(no-panic) — ok".to_string(), false)
        );
    }

    #[test]
    fn line_numbers_track_newlines_in_all_token_kinds() {
        let src = "let a = \"multi\nline\";\nlet b = 2; /* c\nd */ let e = 3;";
        let toks = scan(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.kind == Tok::Ident(name.into()))
                .map(|t| t.line)
        };
        assert_eq!(line_of("a"), Some(1));
        assert_eq!(line_of("b"), Some(3));
        assert_eq!(line_of("e"), Some(4));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn gone() {}\n}\nfn live2() {}";
        let toks = scan(src);
        let sup = test_regions(&toks);
        let flag_of = |name: &str| {
            toks.iter()
                .position(|t| t.kind == Tok::Ident(name.into()))
                .map(|i| sup[i])
        };
        assert_eq!(flag_of("live"), Some(false));
        assert_eq!(flag_of("gone"), Some(true));
        assert_eq!(flag_of("live2"), Some(false));
    }

    #[test]
    fn cfg_any_with_test_is_suppressed() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nmod t { fn gone() {} }\nfn live() {}";
        let toks = scan(src);
        let sup = test_regions(&toks);
        let gone = toks
            .iter()
            .position(|t| t.kind == Tok::Ident("gone".into()))
            .map(|i| sup[i]);
        let live = toks
            .iter()
            .position(|t| t.kind == Tok::Ident("live".into()))
            .map(|i| sup[i]);
        assert_eq!(gone, Some(true));
        assert_eq!(live, Some(false));
    }
}
