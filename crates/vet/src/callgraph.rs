//! An approximate intra-workspace call graph over the token stream.
//!
//! Call sites are recognised syntactically — `name(…)`, `Type::name(…)`
//! and `.name(…)` — and resolved to [`crate::model::FnDef`]s by name,
//! with a locality tier: candidates in the same file win over the same
//! crate, which wins over the whole workspace. Method calls never
//! resolve past their own crate (receiver types are unknown, and a
//! workspace-wide name match on `.get(…)` or `.len(…)` would drown the
//! graph in false edges); free and `Type::`-qualified calls do, since
//! their names are globally meaningful. `Type::name` prefers an
//! impl-owner match; an unmatched uppercase qualifier is treated as a
//! std type and left unresolved. Soundness caveats: DESIGN.md §16.

use crate::model::{FnDef, Model};
use crate::scan::Tok;

/// Names that look like calls but never resolve to workspace fns:
/// keywords and ubiquitous enum constructors.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "Some", "Ok", "Err", "None",
];

/// Primitive type names: lowercase, so the uppercase-qualifier std-type
/// rule misses them, yet `usize::from(…)` must never resolve to a
/// workspace `from`.
const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str",
];

/// One syntactic call site inside a fn body.
pub struct CallSite {
    /// Called name.
    pub callee: String,
    /// `Type` of a `Type::name(…)` call.
    pub qual: Option<String>,
    /// A `.name(…)` method call.
    pub method: bool,
    /// The ident directly left of the dot of a method call, when the
    /// receiver is that simple (`engine.run(…)` → `engine`).
    pub recv: Option<String>,
    /// Code-token position of the callee name.
    pub pos: usize,
    /// 1-based source line.
    pub line: u32,
    /// `name()` with no arguments — how `.read()`/`.write()` lock
    /// acquisitions are told apart from blocking I/O reads and writes.
    pub empty_args: bool,
}

/// Call sites and their resolutions, indexed like `Model::fns`.
pub struct CallGraph {
    /// Per fn: the syntactic call sites in body order.
    pub sites: Vec<Vec<CallSite>>,
    /// Per fn, per site: resolved candidate fn ids (empty when the name
    /// is external or filtered).
    pub resolved: Vec<Vec<Vec<usize>>>,
}

impl CallGraph {
    /// Extracts and resolves every call site of the model's fns.
    pub fn build(model: &Model<'_>) -> CallGraph {
        let mut sites = Vec::with_capacity(model.fns.len());
        for (id, f) in model.fns.iter().enumerate() {
            sites.push(extract_sites(model, id, f));
        }
        let resolved = sites
            .iter()
            .enumerate()
            .map(|(id, ss)| {
                ss.iter()
                    .map(|s| resolve(model, &model.fns[id], id, s))
                    .collect()
            })
            .collect();
        CallGraph { sites, resolved }
    }
}

/// Scans `f`'s body for call sites, skipping nested fn bodies.
fn extract_sites(model: &Model<'_>, id: usize, f: &FnDef) -> Vec<CallSite> {
    let Some((start, end)) = f.body else {
        return Vec::new();
    };
    let code = model.code_of(f);
    let nested = model.nested_bodies(id);
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne + 1;
            continue;
        }
        let Some(Tok::Ident(name)) = code.kind(i) else {
            i += 1;
            continue;
        };
        if !code.is_punct(i + 1, '(') || NOT_CALLS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        // `fn name(` is a definition, not a call.
        if code.is_ident(i.wrapping_sub(1), "fn") {
            i += 1;
            continue;
        }
        let method = code.is_punct(i.wrapping_sub(1), '.');
        let recv = if method {
            match code.kind(i.wrapping_sub(2)) {
                Some(Tok::Ident(r)) => Some(r.clone()),
                _ => None,
            }
        } else {
            None
        };
        let qual = if !method
            && code.is_punct(i.wrapping_sub(1), ':')
            && code.is_punct(i.wrapping_sub(2), ':')
        {
            match code.kind(i.wrapping_sub(3)) {
                Some(Tok::Ident(q)) => Some(q.clone()),
                _ => None,
            }
        } else {
            None
        };
        out.push(CallSite {
            callee: name.clone(),
            qual,
            method,
            recv,
            pos: i,
            line: code.line(i),
            empty_args: code.is_punct(i + 2, ')'),
        });
        i += 1;
    }
    out
}

/// Resolves one call site to candidate fn definitions.
fn resolve(model: &Model<'_>, caller: &FnDef, caller_id: usize, site: &CallSite) -> Vec<usize> {
    let all: Vec<usize> = model
        .named(&site.callee)
        .iter()
        .copied()
        .filter(|&i| !model.fns[i].in_test && model.fns[i].body.is_some())
        // A method call resolving to its own enclosing fn is almost
        // always a std-container name collision (`entries.retain(…)`
        // inside `ShardedLru::retain`), not recursion — drop it.
        .filter(|&i| !(site.method && i == caller_id))
        .collect();
    if all.is_empty() {
        return all;
    }
    if let Some(q) = &site.qual {
        if q == "Self" {
            // `Self::name(…)`: the impl's own associated fns — same
            // file, any owner.
            return all
                .iter()
                .copied()
                .filter(|&i| model.fns[i].file == caller.file)
                .collect();
        }
        let owned: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| model.fns[i].owner.as_deref() == Some(q))
            .collect();
        if !owned.is_empty() {
            return owned;
        }
        if q.starts_with(char::is_uppercase) || PRIMITIVES.contains(&q.as_str()) {
            // `Vec::new`, `String::from`, `usize::from`, …: a std type,
            // not a module path into the workspace.
            return Vec::new();
        }
    }
    if site.method {
        // Receiver typing: `self.name(…)` stays inside the caller's
        // own impl, and a receiver named after a workspace type
        // (`engine.run(…)` when `impl Engine` exists) resolves only to
        // that type's methods — crossing crates, since the match is by
        // type rather than locality.
        match site.recv.as_deref() {
            Some("self") if caller.owner.is_some() => {
                return all
                    .into_iter()
                    .filter(|&i| model.fns[i].owner == caller.owner)
                    .collect();
            }
            Some(recv) => {
                if let Some(ty) = receiver_type(model, recv) {
                    return all
                        .into_iter()
                        .filter(|&i| model.fns[i].owner.as_deref() == Some(&ty))
                        .collect();
                }
            }
            _ => {}
        }
    }
    let all: Vec<usize> = if site.method || site.qual.is_some() {
        all
    } else {
        // A bare `name(…)` call can only reach free fns: associated
        // fns need a `Self::`/`Type::` path.
        all.into_iter()
            .filter(|&i| model.fns[i].owner.is_none())
            .collect()
    };
    let same_file: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| model.fns[i].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let caller_crate = crate::model::crate_of(&model.ws.files[caller.file].rel);
    let same_crate: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| crate::model::crate_of(&model.ws.files[model.fns[i].file].rel) == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if site.method {
        return Vec::new();
    }
    all
}

/// The workspace type a receiver ident names, if capitalising its first
/// letter lands on a known impl-block owner (`engine` → `Engine`).
fn receiver_type(model: &Model<'_>, recv: &str) -> Option<String> {
    let mut chars = recv.chars();
    let first = chars.next()?;
    let ty: String = first.to_ascii_uppercase().to_string() + chars.as_str();
    (ty != recv && model.owners.contains(&ty)).then_some(ty)
}
