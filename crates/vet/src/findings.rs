//! Findings: what a lint reports, and the text/JSON renderings.

use std::fmt;

/// The lints `vh-vet` knows, in reporting order.
///
/// Each lint's id is the name accepted by the
/// `// vet: allow(<id>) — <reason>` escape hatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `panic!`/`todo!`/`unimplemented!`/`dbg!`/`.unwrap()`/`.expect()`
    /// in lib-crate non-test code.
    NoPanic,
    /// An `unsafe` block or fn without a `// SAFETY:` comment.
    SafetyComment,
    /// A span name used in `vh-query` that is missing from `vh-obs`'s
    /// stable span vocabulary.
    SpanVocab,
    /// A `match` over the `Edit` mutation enum with a catch-all arm or
    /// a missing variant (WAL encode/replay/tracing must be total).
    EditExhaustive,
    /// A `VhError` variant missing from `code()`/`exit_code()`, or an
    /// exit code missing its README table row.
    ErrorExit,
    /// A VHRPC wire-table drift: a `Verb`/`WireStatus` variant without
    /// `code()`/`wire_name()` arms or a README row, a `wire` pub type
    /// not re-exported from the serve crate root, or a `vh_query`
    /// import outside the frozen v1 API.
    ApiSurface,
    /// A Prometheus metric name that is not namespaced snake_case, or a
    /// sample emitted before its family's `# HELP`/`# TYPE` opener.
    PromName,
    /// A legacy `Engine` wrapper that does not forward to `Engine::run`
    /// or lacks deprecation docs.
    DeprecatedWrapper,
    /// A `*_swar`/`*_branchless` kernel — or a bodied cache `maintain`
    /// impl — without an `// oracle:` comment naming a twin defined in
    /// the same file.
    OracleTwin,
    /// Two lock classes acquired in opposite orders somewhere across
    /// the workspace call graph: a potential deadlock.
    LockOrder,
    /// A lock guard live across a blocking operation (socket I/O, WAL
    /// append, `Engine::run`/`apply`) without a documented allow.
    HoldAcrossBlocking,
    /// A `// vet: hot` function whose call-graph closure heap-allocates
    /// or can panic through indexing.
    HotPath,
    /// A malformed or unknown `// vet: allow(…)` comment.
    VetAllow,
    /// A well-formed allow-comment that no longer suppresses anything
    /// (warning level — the escape hatch must not rot).
    StaleAllow,
}

/// Every lint, in reporting order.
pub const ALL_LINTS: &[Lint] = &[
    Lint::NoPanic,
    Lint::SafetyComment,
    Lint::SpanVocab,
    Lint::EditExhaustive,
    Lint::ErrorExit,
    Lint::ApiSurface,
    Lint::PromName,
    Lint::DeprecatedWrapper,
    Lint::OracleTwin,
    Lint::LockOrder,
    Lint::HoldAcrossBlocking,
    Lint::HotPath,
    Lint::VetAllow,
    Lint::StaleAllow,
];

impl Lint {
    /// The lint's stable kebab-case id (used in findings, JSON and
    /// allow-comments).
    pub fn id(self) -> &'static str {
        match self {
            Lint::NoPanic => "no-panic",
            Lint::SafetyComment => "safety-comment",
            Lint::SpanVocab => "span-vocab",
            Lint::EditExhaustive => "edit-exhaustive",
            Lint::ErrorExit => "error-exit",
            Lint::ApiSurface => "api-surface",
            Lint::PromName => "prom-name",
            Lint::DeprecatedWrapper => "deprecated-wrapper",
            Lint::OracleTwin => "oracle-twin",
            Lint::LockOrder => "lock-order",
            Lint::HoldAcrossBlocking => "hold-across-blocking",
            Lint::HotPath => "hot-path",
            Lint::VetAllow => "vet-allow",
            Lint::StaleAllow => "stale-allow",
        }
    }

    /// SARIF severity level. Everything vh-vet enforces is an error
    /// except `stale-allow`, which reports rot rather than a violation.
    pub fn level(self) -> &'static str {
        match self {
            Lint::StaleAllow => "warning",
            _ => "error",
        }
    }

    /// One-line description, shown by `vh-vet --list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::NoPanic => {
                "no panic!/todo!/unimplemented!/dbg!/.unwrap()/.expect() in lib-crate non-test code"
            }
            Lint::SafetyComment => "every unsafe block/fn carries a // SAFETY: comment",
            Lint::SpanVocab => {
                "every span name used in vh-query appears in vh-obs's STABLE_SPAN_NAMES"
            }
            Lint::EditExhaustive => {
                "every match over the Edit mutation enum names each variant (no catch-all arms)"
            }
            Lint::ErrorExit => {
                "every VhError variant has code()/exit_code() arms and a README exit-table row"
            }
            Lint::ApiSurface => {
                "VHRPC wire tables are total, README-documented, re-exported, and vh-serve imports only the frozen v1 vh_query API"
            }
            Lint::PromName => {
                "Prometheus metric names are vpbn_/vh_-prefixed snake_case with families opened before samples"
            }
            Lint::DeprecatedWrapper => {
                "legacy Engine wrappers forward to Engine::run and carry deprecation docs"
            }
            Lint::OracleTwin => {
                "every *_swar/*_branchless kernel and cache maintain impl has an // oracle: comment naming a twin defined in the same file"
            }
            Lint::LockOrder => {
                "no two lock classes are acquired in opposite orders anywhere in the call graph"
            }
            Lint::HoldAcrossBlocking => {
                "no lock guard is held across socket I/O, WAL appends, or Engine::run/apply"
            }
            Lint::HotPath => {
                "the call-graph closure of every // vet: hot fn is free of heap allocation and panicking indexing"
            }
            Lint::VetAllow => "vet: allow comments name a known lint and give a reason",
            Lint::StaleAllow => {
                "every vet: allow comment still suppresses a finding (stale allows must be deleted)"
            }
        }
    }

    /// Parses a lint id as written in an allow-comment.
    pub fn from_id(id: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.id() == id)
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The one-line text rendering: `file:line: [lint] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Renders findings as the JSON document the CI job uploads:
/// `{"tool":"vh-vet","count":N,"findings":[{file,line,lint,message}…]}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"tool\":\"vh-vet\",\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":\"");
        escape_into(&mut out, &f.file);
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"lint\":\"");
        escape_into(&mut out, f.lint.id());
        out.push_str("\",\"message\":\"");
        escape_into(&mut out, &f.message);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let d = (b >> shift) & 0xf;
                    let d = u8::try_from(d).unwrap_or(0);
                    out.push(char::from_digit(u32::from(d), 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for l in ALL_LINTS {
            assert_eq!(Lint::from_id(l.id()), Some(*l));
        }
        assert_eq!(Lint::from_id("nope"), None);
    }

    #[test]
    fn text_rendering_is_grep_friendly() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            lint: Lint::NoPanic,
            message: "`.unwrap()` in lib-crate code".into(),
        };
        assert_eq!(
            f.render(),
            "crates/x/src/lib.rs:7: [no-panic] `.unwrap()` in lib-crate code"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 1,
            lint: Lint::VetAllow,
            message: "tab\there\nnewline".into(),
        };
        let j = to_json(&[f]);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there\\nnewline"));
        assert!(j.starts_with("{\"tool\":\"vh-vet\",\"count\":1,"));
        let empty = to_json(&[]);
        assert_eq!(empty, "{\"tool\":\"vh-vet\",\"count\":0,\"findings\":[]}");
    }
}
