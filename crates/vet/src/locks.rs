//! The lock-acquisition model: which lock class every `.lock()` /
//! `.read()` / `.write()` site takes, how long the returned guard
//! lives, and which operations block.
//!
//! A *lock class* is named by the receiver field of the acquisition
//! (`self.engine.lock()` → `engine`, `self.ranges.lock()` → `ranges`);
//! a fn whose return type names a `*Guard` re-exports an acquisition to
//! its callers (`Tenant::engine()` hands back class `engine`, and a
//! custom RAII guard such as `AdmitGuard` names its own class). Guard
//! lifetimes follow Rust's drop rules approximately: a `let`-bound
//! guard lives to the end of its enclosing block (or an explicit
//! `drop(name)`), an expression-embedded guard to the end of its
//! statement. The walk is linear over the token stream — loops are not
//! unrolled and early returns are not path-split (DESIGN.md §16).

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, CallSite};
use crate::lints::Code;
use crate::model::{FnDef, Model, STD_GUARDS};
use crate::scan::Tok;

/// Method/fn names treated as blocking: socket and file I/O, WAL
/// appends, engine entry points, channels and sleeps. `read`/`write`
/// only count when called *with* arguments (the empty-argument forms
/// are `RwLock` acquisitions).
const BLOCKING: &[&str] = &[
    "read",
    "write",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "accept",
    "connect",
    "recv",
    "send",
    "sleep",
    "append",
    "run",
    "apply",
    "apply_all",
    "recover",
    "replay",
    "sync_all",
    "sync_data",
];

/// One direct lock acquisition inside a fn body.
pub struct Acquire {
    /// The lock class (receiver field name).
    pub class: String,
    /// 1-based source line.
    pub line: u32,
}

/// One acquired-while-held edge: `acquired` was taken while a guard of
/// class `held` was live.
pub struct Edge {
    /// The class already held.
    pub held: String,
    /// The class being acquired.
    pub acquired: String,
    /// File index of the acquisition site.
    pub file: usize,
    /// 1-based line of the acquisition site.
    pub line: u32,
    /// Taken by a literal `.lock()`/`.read()`/`.write()` (or a
    /// guard-returning call) rather than propagated through a callee's
    /// transitive acquisition set.
    pub direct: bool,
}

/// A guard held across a blocking operation.
pub struct HoldSite {
    /// Classes of every guard live at the site.
    pub held: Vec<String>,
    /// File index.
    pub file: usize,
    /// 1-based line of the blocking operation.
    pub line: u32,
    /// What blocks: the op name, plus the callee chain when indirect.
    pub what: String,
}

/// Lock facts for the whole workspace, indexed like `Model::fns`.
pub struct LockFacts {
    /// Per fn: the lock class its returned guard represents, when the
    /// fn hands a guard back to its caller.
    pub returned_class: Vec<Option<String>>,
    /// Per fn: every class it may acquire, directly or transitively.
    pub trans_acquires: Vec<BTreeSet<String>>,
    /// Per fn: the root blocking op reachable from it, when any.
    pub blocks: Vec<Option<String>>,
    /// Every acquired-while-held edge found by the guard walk.
    pub edges: Vec<Edge>,
    /// Every guard-across-blocking site found by the guard walk.
    pub holds: Vec<HoldSite>,
}

impl LockFacts {
    /// Runs the lock model over every fn in the model.
    pub fn build(model: &Model<'_>, graph: &CallGraph) -> LockFacts {
        let n = model.fns.len();
        let mut direct: Vec<Vec<Acquire>> = Vec::with_capacity(n);
        for (id, f) in model.fns.iter().enumerate() {
            direct.push(direct_acquires(model, graph, id, f));
        }
        let returned_class: Vec<Option<String>> = model
            .fns
            .iter()
            .enumerate()
            .map(|(id, f)| returned_class(f, &direct[id]))
            .collect();

        // Transitive acquisition sets, to a fixpoint.
        let mut trans: Vec<BTreeSet<String>> = direct
            .iter()
            .enumerate()
            .map(|(id, d)| {
                let mut s: BTreeSet<String> = d.iter().map(|a| a.class.clone()).collect();
                if let Some(c) = &returned_class[id] {
                    s.insert(c.clone());
                }
                s
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                for cands in &graph.resolved[id] {
                    for &c in cands {
                        if c == id {
                            continue;
                        }
                        let add: Vec<String> = trans[c]
                            .iter()
                            .filter(|cl| !trans[id].contains(*cl))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            trans[id].extend(add);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Blocking reachability, to a fixpoint.
        let mut blocks: Vec<Option<String>> = model
            .fns
            .iter()
            .enumerate()
            .map(|(id, _)| {
                graph.sites[id]
                    .iter()
                    .find(|s| is_blocking_site(s))
                    .map(|s| s.callee.clone())
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                if blocks[id].is_some() {
                    continue;
                }
                'sites: for cands in &graph.resolved[id] {
                    for &c in cands {
                        if c != id {
                            if let Some(op) = blocks[c].clone() {
                                blocks[id] = Some(op);
                                changed = true;
                                break 'sites;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut edges = Vec::new();
        let mut holds = Vec::new();
        for (id, f) in model.fns.iter().enumerate() {
            // Test code is exempt from the concurrency contracts, like
            // it is from no-panic: tests serialise on purpose.
            if f.in_test {
                continue;
            }
            walk_guards(
                model,
                graph,
                id,
                f,
                &returned_class,
                &trans,
                &blocks,
                &mut edges,
                &mut holds,
            );
        }
        edges.sort_by(|a, b| {
            (a.file, a.line, &a.held, &a.acquired).cmp(&(b.file, b.line, &b.held, &b.acquired))
        });
        edges.dedup_by(|a, b| {
            a.file == b.file && a.line == b.line && a.held == b.held && a.acquired == b.acquired
        });
        holds.sort_by(|a, b| (a.file, a.line).cmp(&(b.file, b.line)));
        holds.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.what == b.what);

        LockFacts {
            returned_class,
            trans_acquires: trans,
            blocks,
            edges,
            holds,
        }
    }
}

/// Is this call site a direct lock acquisition (`.lock()` or the
/// empty-argument `RwLock` `.read()`/`.write()`)?
fn is_acquire_site(site: &CallSite) -> bool {
    site.method && site.empty_args && matches!(site.callee.as_str(), "lock" | "read" | "write")
}

/// Is this call site blocking *by name*? (Resolution-independent; a
/// resolved callee that blocks internally is handled by the fixpoint.)
fn is_blocking_site(site: &CallSite) -> bool {
    if is_acquire_site(site) {
        return false;
    }
    match site.callee.as_str() {
        "read" | "write" => !site.empty_args,
        name => BLOCKING.contains(&name),
    }
}

/// Every direct acquisition in `f`'s body, with its receiver class.
fn direct_acquires(model: &Model<'_>, graph: &CallGraph, id: usize, f: &FnDef) -> Vec<Acquire> {
    let code = model.code_of(f);
    graph.sites[id]
        .iter()
        .filter(|s| is_acquire_site(s))
        .map(|s| Acquire {
            class: receiver_class(code, s.pos),
            line: s.line,
        })
        .collect()
}

/// The lock class a guard-returning fn hands to its callers: for a std
/// guard, the class of the last direct acquisition in its body (the one
/// that escapes); for a custom RAII guard, the guard type's own name.
fn returned_class(f: &FnDef, direct: &[Acquire]) -> Option<String> {
    let guard = f.ret_guard.as_deref()?;
    if STD_GUARDS.contains(&guard) {
        direct
            .last()
            .map(|a| a.class.clone())
            .or_else(|| Some(f.name.clone()))
    } else {
        Some(guard.to_string())
    }
}

/// Names the receiver of the method call at code-position `pos`: the
/// ident to the left of the dot, skipping index (`[…]`) and call
/// (`(…)`) groups — `self.shards[i].lock()` → `shards`.
fn receiver_class(code: &Code<'_>, pos: usize) -> String {
    let mut k = pos.wrapping_sub(2); // token before the `.`
    loop {
        match code.kind(k) {
            Some(Tok::Punct(']')) => match matching_open(code, k, '[', ']') {
                Some(open) => k = open.wrapping_sub(1),
                None => return "anon".into(),
            },
            Some(Tok::Punct(')')) => match matching_open(code, k, '(', ')') {
                Some(open) => match code.kind(open.wrapping_sub(1)) {
                    Some(Tok::Ident(s)) => return s.clone(),
                    _ => k = open.wrapping_sub(1),
                },
                None => return "anon".into(),
            },
            Some(Tok::Ident(s)) => return s.clone(),
            _ => return "anon".into(),
        }
    }
}

/// Backward brace matching: position of the `open` matching the `close`
/// at `at`.
fn matching_open(code: &Code<'_>, at: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = at;
    loop {
        if code.is_punct(k, close) {
            depth += 1;
        } else if code.is_punct(k, open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// One live guard during the body walk.
struct Live {
    class: String,
    binding: Option<String>,
    /// Brace depth the guard's scope belongs to.
    depth: usize,
    /// Expression-embedded (dies at the end of the statement).
    stmt: bool,
}

/// Walks `f`'s body in token order, tracking live guards and emitting
/// acquired-while-held edges and guard-across-blocking sites.
#[allow(clippy::too_many_arguments)]
fn walk_guards(
    model: &Model<'_>,
    graph: &CallGraph,
    id: usize,
    f: &FnDef,
    returned: &[Option<String>],
    trans: &[BTreeSet<String>],
    blocks: &[Option<String>],
    edges: &mut Vec<Edge>,
    holds: &mut Vec<HoldSite>,
) {
    let Some((start, end)) = f.body else {
        return;
    };
    let code = model.code_of(f);
    let nested = model.nested_bodies(id);
    let sites = &graph.sites[id];
    let resolved = &graph.resolved[id];
    let site_at = |pos: usize| sites.iter().position(|s| s.pos == pos);

    let mut live: Vec<Live> = Vec::new();
    let mut brace = 0usize;
    let mut paren = 0usize;
    let mut pending_let: Option<String> = None;
    let mut i = start;
    while i <= end {
        if let Some(&(_, ne)) = nested.iter().find(|&&(ns, _)| ns == i) {
            i = ne + 1;
            continue;
        }
        match code.kind(i) {
            Some(Tok::Punct('{')) => brace += 1,
            Some(Tok::Punct('}')) => {
                brace = brace.saturating_sub(1);
                live.retain(|g| g.depth <= brace);
            }
            Some(Tok::Punct('(' | '[')) => paren += 1,
            Some(Tok::Punct(')' | ']')) => paren = paren.saturating_sub(1),
            Some(Tok::Punct(';' | ',')) if paren == 0 => {
                live.retain(|g| !g.stmt);
                pending_let = None;
            }
            Some(Tok::Ident(s)) if s == "let" => {
                pending_let = let_binding(code, i + 1);
            }
            Some(Tok::Ident(s))
                if s == "drop" && code.is_punct(i + 1, '(') && code.is_punct(i + 3, ')') =>
            {
                if let Some(Tok::Ident(victim)) = code.kind(i + 2) {
                    let victim = victim.clone();
                    live.retain(|g| g.binding.as_deref() != Some(victim.as_str()));
                }
            }
            _ => {}
        }
        if let Some(si) = site_at(i) {
            let site = &sites[si];
            let cands = &resolved[si];
            let acquired = if is_acquire_site(site) {
                Some(receiver_class(code, site.pos))
            } else {
                cands
                    .iter()
                    .find_map(|&c| model.fns[c].ret_guard.as_ref().and(returned[c].clone()))
            };
            // Edges: direct/guard-returning acquisition, then classes
            // propagated through the callee's transitive set.
            for g in &live {
                if let Some(a) = &acquired {
                    edges.push(Edge {
                        held: g.class.clone(),
                        acquired: a.clone(),
                        file: f.file,
                        line: site.line,
                        direct: true,
                    });
                }
                for &c in cands {
                    if c == id {
                        continue;
                    }
                    for cl in &trans[c] {
                        if *cl == g.class || Some(cl) == acquired.as_ref() {
                            continue;
                        }
                        edges.push(Edge {
                            held: g.class.clone(),
                            acquired: cl.clone(),
                            file: f.file,
                            line: site.line,
                            direct: false,
                        });
                    }
                }
            }
            // Blocking: by name, or through a resolved callee.
            let blocking = if is_blocking_site(site) {
                Some(site.callee.clone())
            } else {
                cands.iter().filter(|&&c| c != id).find_map(|&c| {
                    blocks[c]
                        .as_ref()
                        .map(|op| format!("{} \u{2192} {op}", model.fns[c].qual_name()))
                })
            };
            if let Some(what) = blocking {
                if !live.is_empty() {
                    let mut held: Vec<String> = live.iter().map(|g| g.class.clone()).collect();
                    held.sort();
                    held.dedup();
                    holds.push(HoldSite {
                        held,
                        file: f.file,
                        line: site.line,
                        what,
                    });
                }
            }
            if let Some(class) = acquired {
                // A guard born inside an argument list or closure is a
                // temporary: the outer `let` does not bind it.
                let binding = if paren == 0 { pending_let.take() } else { None };
                let stmt = binding.is_none();
                live.push(Live {
                    class,
                    binding,
                    depth: brace,
                    stmt,
                });
            }
        }
        i += 1;
    }
}

/// The ident a `let` binds, scanning right from just past the keyword:
/// skips `mut`, pattern constructors and grouping punctuation.
fn let_binding(code: &Code<'_>, from: usize) -> Option<String> {
    for p in from..from + 8 {
        match code.kind(p) {
            Some(Tok::Ident(s)) if matches!(s.as_str(), "mut" | "Ok" | "Some" | "Err") => {}
            Some(Tok::Ident(s)) => return Some(s.clone()),
            Some(Tok::Punct('(' | '&')) => {}
            _ => return None,
        }
    }
    None
}
