//! `vh-vet` — the workspace invariant checker CLI.
//!
//! ```text
//! vh-vet [--root <dir>] [--json <file>] [--sarif <file>] [--quiet] [--list]
//! ```
//!
//! Walks the workspace (default: the current directory), runs every lint
//! and prints one `file:line: [lint] message` line per finding. With
//! `--json <file>` the findings are additionally written as the JSON
//! document the CI job uploads as an artifact; `--sarif <file>` writes
//! the SARIF 2.1.0 report GitHub code scanning ingests. Exit codes
//! follow the suite's classes: 0 clean, 1 findings, 2 usage, 3 I/O.

use std::path::PathBuf;
use std::process::ExitCode;

use vh_vet::{to_json, to_sarif, vet_workspace, ALL_LINTS};

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    quiet: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        sarif: None,
        quiet: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--json needs a file path".to_string())?,
                ));
            }
            "--sarif" => {
                args.sarif = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--sarif needs a file path".to_string())?,
                ));
            }
            "--quiet" | "-q" => args.quiet = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!(
                    "vh-vet: workspace invariant checker\n\n\
                     usage: vh-vet [--root <dir>] [--json <file>] [--sarif <file>] [--quiet] [--list]\n\n\
                     Lints (suppress one occurrence with \
                     `// vet: allow(<lint>) — <reason>`):"
                );
                for l in ALL_LINTS {
                    println!("  {:<20} {}", l.id(), l.describe());
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vh-vet: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for l in ALL_LINTS {
            println!("{:<20} {}", l.id(), l.describe());
        }
        return ExitCode::SUCCESS;
    }
    let findings = match vet_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vh-vet: {e}");
            return ExitCode::from(3);
        }
    };
    let reports = [
        (&args.json, to_json as fn(&[vh_vet::Finding]) -> String),
        (&args.sarif, to_sarif as fn(&[vh_vet::Finding]) -> String),
    ];
    for (path, render) in reports {
        let Some(path) = path else {
            continue;
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(path, render(&findings)) {
            eprintln!("vh-vet: cannot write {}: {e}", path.display());
            return ExitCode::from(3);
        }
    }
    if !args.quiet {
        for f in &findings {
            println!("{}", f.render());
        }
    }
    if findings.is_empty() {
        if !args.quiet {
            println!("vh-vet: workspace clean");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("vh-vet: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
