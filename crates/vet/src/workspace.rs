//! Workspace walking, file classification and the allow-comment contract.

use crate::findings::{Finding, Lint};
use crate::scan::{scan, test_regions, Tok, Token};
use std::cell::Cell;
use std::fmt;
use std::path::{Path, PathBuf};

/// What kind of target a `.rs` file belongs to. Lints pick their scope
/// from this: e.g. `no-panic` applies only to [`FileClass::Lib`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library source of a workspace crate (`crates/*/src/**`, `src/**`).
    Lib,
    /// Binary source (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Examples (`examples/**`).
    Example,
    /// The benchmark harness (`crates/bench/**`, `benches/**`) — a
    /// measurement tool, exempt from the panic-freedom contract.
    Bench,
    /// Vendored offline stand-ins (`vendor/**`) — not this repo's code.
    Vendor,
}

/// A parsed `// vet: allow(<lint>) — <reason>` comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: u32,
    /// The named lint, if the id was recognised.
    pub lint: Option<Lint>,
    /// The id exactly as written (for diagnostics).
    pub id_text: String,
    /// Whether a non-empty reason follows the dash.
    pub has_reason: bool,
    /// Set when the allow actually gated a finding this run; a valid
    /// allow that stays unused is reported as `stale-allow`.
    pub used: Cell<bool>,
}

impl Allow {
    /// A well-formed allow suppresses findings of its lint on the same
    /// line or the line directly below the comment.
    pub fn is_valid(&self) -> bool {
        self.lint.is_some() && self.has_reason
    }
}

/// One scanned source file with everything the lints need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]` region.
    pub suppressed: Vec<bool>,
    /// Parsed allow-comments, in line order.
    pub allows: Vec<Allow>,
    /// Lines carrying a `// vet: hot` marker (hot-path purity roots).
    pub hots: Vec<u32>,
    /// Scope class.
    pub class: FileClass,
}

impl SourceFile {
    /// Scans `src` into a lintable file.
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let tokens = scan(src);
        let suppressed = test_regions(&tokens);
        let allows = parse_allows(&tokens);
        let hots = parse_hots(&tokens);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            suppressed,
            allows,
            hots,
            class: classify(rel),
        }
    }

    /// Is a finding of `lint` at `line` suppressed by a valid
    /// allow-comment on the same line or the line directly above?
    /// Every allow consulted here is marked used, which is what keeps
    /// it off the `stale-allow` report.
    pub fn allowed(&self, lint: Lint, line: u32) -> bool {
        let mut hit = false;
        for a in &self.allows {
            if a.is_valid() && a.lint == Some(lint) && (a.line == line || a.line + 1 == line) {
                a.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// True when every token sits in a suppressed (test-only) region.
    pub fn fully_suppressed(&self) -> bool {
        self.suppressed.iter().all(|&s| s)
    }

    /// Emits `finding` unless an allow-comment covers it.
    pub fn report(&self, out: &mut Vec<Finding>, lint: Lint, line: u32, message: String) {
        if !self.allowed(lint, line) {
            out.push(Finding {
                file: self.rel.clone(),
                line,
                lint,
                message,
            });
        }
    }
}

/// Classifies a workspace-relative path into a lint scope.
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("vendor/") {
        return FileClass::Vendor;
    }
    if rel.starts_with("crates/bench/") || rel.contains("/benches/") {
        return FileClass::Bench;
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return FileClass::Test;
    }
    if rel.starts_with("examples/") || rel.contains("/examples/") {
        return FileClass::Example;
    }
    if rel.starts_with("src/bin/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
        || rel == "build.rs"
    {
        return FileClass::Bin;
    }
    FileClass::Lib
}

/// Parses every `vet: allow(...)` comment in the stream. Comments that
/// merely mention the phrase elsewhere (docs about the contract) are
/// only treated as allows when the comment *starts* with `vet:`.
fn parse_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in tokens {
        let Tok::Comment { text, .. } = &t.kind else {
            continue;
        };
        let Some(rest) = text.strip_prefix("vet:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (id_text, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((id, tail)) => (id.trim().to_string(), tail),
            None => (String::new(), rest),
        };
        // The reason is whatever follows a dash separator (`—`, `--`, `-`).
        let tail = tail.trim_start();
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|d| tail.strip_prefix(d))
            .map(str::trim)
            .unwrap_or("");
        out.push(Allow {
            line: t.line,
            lint: Lint::from_id(&id_text),
            id_text,
            has_reason: !reason.is_empty(),
            used: Cell::new(false),
        });
    }
    out
}

/// Lines of `// vet: hot` marker comments. The marker names a hot-path
/// purity root: the next `fn` within a few lines gets the contract.
fn parse_hots(tokens: &[Token]) -> Vec<u32> {
    let mut out = Vec::new();
    for t in tokens {
        let Tok::Comment { text, .. } = &t.kind else {
            continue;
        };
        let Some(rest) = text.strip_prefix("vet:") else {
            continue;
        };
        let rest = rest.trim_start();
        let is_marker = match rest.strip_prefix("hot") {
            Some(tail) => !tail.starts_with(|c: char| c.is_alphanumeric() || c == '-'),
            None => false,
        };
        if is_marker {
            out.push(t.line);
        }
    }
    out
}

/// An unrecoverable `vh-vet` failure (I/O only — lints never fail).
#[derive(Debug)]
pub enum VetError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for VetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VetError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for VetError {}

/// Directory names never descended into: build artifacts, VCS metadata,
/// and the vet fixture corpus (a deliberately-bad mini-workspace).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// The loaded workspace: every `.rs` file plus the README text.
pub struct Workspace {
    /// Scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// `README.md` contents, when present.
    pub readme: Option<String>,
}

impl Workspace {
    /// Walks `root` and scans every `.rs` file outside the skip list
    /// (`target/`, `.git/`, dot-directories and fixture corpora).
    pub fn load(root: &Path) -> Result<Workspace, VetError> {
        let mut paths = Vec::new();
        collect_rs_files(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in paths {
            let abs = root.join(&rel);
            let src = std::fs::read_to_string(&abs).map_err(|source| VetError::Io {
                path: abs.clone(),
                source,
            })?;
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            files.push(SourceFile::from_source(&rel_str, &src));
        }
        suppress_test_mod_files(&mut files);
        let readme = std::fs::read_to_string(root.join("README.md")).ok();
        Ok(Workspace { files, readme })
    }

    /// The file at a workspace-relative path, if it was walked.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// The directory a file's `mod x;` declarations resolve against.
fn module_dir(rel: &str) -> String {
    let (dir, name) = match rel.rsplit_once('/') {
        Some((d, n)) => (d, n),
        None => ("", rel),
    };
    let stem = name.strip_suffix(".rs").unwrap_or(name);
    if matches!(stem, "lib" | "main" | "mod") {
        dir.to_string()
    } else if dir.is_empty() {
        stem.to_string()
    } else {
        format!("{dir}/{stem}")
    }
}

/// `#[cfg(test)] mod helpers;` gates a whole *separate* file behind the
/// test cfg. `test_regions` suppresses the declaration's own tokens,
/// but the declared file was scanned independently — mark it (and any
/// `mod` files it declares in turn) fully suppressed, so test-only code
/// never leaks into lint input. Iterates to a fixpoint for nested
/// test-module trees.
fn suppress_test_mod_files(files: &mut [SourceFile]) {
    loop {
        let mut targets: Vec<String> = Vec::new();
        for f in files.iter() {
            let all_test = !f.tokens.is_empty() && f.fully_suppressed();
            let dir = module_dir(&f.rel);
            let code: Vec<usize> = f
                .tokens
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.kind, Tok::Comment { .. }))
                .map(|(i, _)| i)
                .collect();
            for w in 0..code.len().saturating_sub(2) {
                let (i, j, k) = (code[w], code[w + 1], code[w + 2]);
                if !matches!(&f.tokens[i].kind, Tok::Ident(s) if s == "mod") {
                    continue;
                }
                if !(all_test || f.suppressed[i]) {
                    continue;
                }
                let Tok::Ident(name) = &f.tokens[j].kind else {
                    continue;
                };
                if f.tokens[k].kind != Tok::Punct(';') {
                    continue;
                }
                if dir.is_empty() {
                    targets.push(format!("{name}.rs"));
                    targets.push(format!("{name}/mod.rs"));
                } else {
                    targets.push(format!("{dir}/{name}.rs"));
                    targets.push(format!("{dir}/{name}/mod.rs"));
                }
            }
        }
        let mut changed = false;
        for f in files.iter_mut() {
            if targets.iter().any(|t| *t == f.rel) && !f.fully_suppressed() {
                for s in &mut f.suppressed {
                    *s = true;
                }
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), VetError> {
    let entries = std::fs::read_dir(dir).map_err(|source| VetError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| VetError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_layout() {
        assert_eq!(classify("crates/core/src/exec.rs"), FileClass::Lib);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(classify("src/error.rs"), FileClass::Lib);
        assert_eq!(classify("src/bin/vpbn.rs"), FileClass::Bin);
        assert_eq!(classify("src/main.rs"), FileClass::Bin);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileClass::Bench);
        assert_eq!(
            classify("crates/bench/src/bin/exp_axes.rs"),
            FileClass::Bench
        );
        assert_eq!(classify("tests/oracle.rs"), FileClass::Test);
        assert_eq!(classify("crates/vet/tests/corpus.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("vendor/rayon/src/lib.rs"), FileClass::Vendor);
    }

    #[test]
    fn allow_comments_parse_and_gate_findings() {
        let src = "\
// vet: allow(no-panic) — message is part of the API contract
x.unwrap();
y.unwrap(); // vet: allow(no-panic) - same line form
// vet: allow(no-panic)
z.unwrap();
// vet: allow(not-a-lint) — reason
w.unwrap();
";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 4);
        assert!(f.allowed(Lint::NoPanic, 2), "preceding-line allow");
        assert!(f.allowed(Lint::NoPanic, 3), "same-line allow");
        assert!(!f.allowed(Lint::NoPanic, 5), "missing reason does not gate");
        assert!(!f.allowed(Lint::NoPanic, 7), "unknown lint does not gate");
        assert!(!f.allowed(Lint::SafetyComment, 2), "other lints unaffected");
    }

    #[test]
    fn cfg_test_mod_declarations_suppress_the_declared_file() {
        let mut files = vec![
            SourceFile::from_source(
                "crates/x/src/lib.rs",
                "#[cfg(test)]\nmod helpers;\nmod real;\npub fn live() {}",
            ),
            SourceFile::from_source(
                "crates/x/src/helpers.rs",
                "pub fn gone(x: Option<u32>) -> u32 { x.unwrap() }",
            ),
            SourceFile::from_source("crates/x/src/real.rs", "pub fn stays() {}"),
        ];
        suppress_test_mod_files(&mut files);
        assert!(
            files[1].fully_suppressed(),
            "the cfg(test)-gated mod's file is test code"
        );
        assert!(
            !files[2].fully_suppressed(),
            "an ungated sibling mod stays live"
        );
        assert!(!files[0].fully_suppressed());
    }

    #[test]
    fn test_mod_suppression_reaches_nested_declarations() {
        // helpers is test-gated; whatever helpers declares in turn —
        // including a `name/mod.rs` directory module — is test code too.
        let mut files = vec![
            SourceFile::from_source("crates/x/src/lib.rs", "#[cfg(test)]\nmod helpers;"),
            SourceFile::from_source("crates/x/src/helpers.rs", "pub mod deeper;"),
            SourceFile::from_source("crates/x/src/helpers/deeper/mod.rs", "pub fn gone() {}"),
        ];
        suppress_test_mod_files(&mut files);
        assert!(files[1].fully_suppressed(), "first hop");
        assert!(
            files[2].fully_suppressed(),
            "fixpoint reaches the second hop"
        );
    }

    #[test]
    fn plain_mod_declarations_do_not_suppress_anything() {
        let mut files = vec![
            SourceFile::from_source("crates/x/src/lib.rs", "mod real;\nmod other;"),
            SourceFile::from_source("crates/x/src/real.rs", "pub fn stays() {}"),
            SourceFile::from_source("crates/x/src/other.rs", "pub fn also() {}"),
        ];
        suppress_test_mod_files(&mut files);
        assert!(files.iter().all(|f| !f.fully_suppressed()));
    }
}
