//! The live gate: vets the real workspace on every `cargo test`.
//!
//! A stray `unwrap()` in a lib crate, an uncommented `unsafe`, an
//! off-vocabulary span name or a desynchronised `VhError` table fails
//! this test immediately — CI wiring is a second line of defence, not
//! the first.

#![allow(clippy::expect_used)]

use std::path::Path;

#[test]
fn the_workspace_is_vet_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/vet sits two levels below the workspace root");
    let findings = vh_vet::vet_workspace(root).expect("workspace walks cleanly");
    assert!(
        findings.is_empty(),
        "vh-vet findings in the live workspace:\n{}",
        findings
            .iter()
            .map(vh_vet::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
