//! Drives the `vh-vet` binary over the fixture corpus and asserts one
//! finding per seeded violation, with the exit codes and JSON document
//! the CI contract promises.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The fixture mini-workspace next to this test.
fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_vet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vh-vet"))
        .args(args)
        .output()
        .expect("vh-vet binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Every seeded violation, as `(file, line, lint)`. The corpus README
/// documents what each one is; this list is the contract the test pins.
const SEEDED: &[(&str, u32, &str)] = &[
    ("crates/demo/src/cache.rs", 16, "oracle-twin"),
    ("crates/demo/src/kernels.rs", 6, "oracle-twin"),
    ("crates/demo/src/kernels.rs", 11, "oracle-twin"),
    ("crates/demo/src/lib.rs", 12, "safety-comment"),
    ("crates/query/src/edit.rs", 21, "edit-exhaustive"),
    ("crates/query/src/edit.rs", 29, "edit-exhaustive"),
    ("crates/query/src/engine.rs", 12, "span-vocab"),
    ("crates/query/src/engine.rs", 19, "deprecated-wrapper"),
    ("crates/query/src/engine.rs", 25, "deprecated-wrapper"),
    ("crates/query/src/engine.rs", 32, "deprecated-wrapper"),
    ("crates/query/src/metrics.rs", 11, "prom-name"),
    ("crates/query/src/metrics.rs", 12, "prom-name"),
    ("crates/query/src/metrics.rs", 13, "prom-name"),
    ("crates/serve/src/server.rs", 4, "api-surface"),
    ("crates/serve/src/wire.rs", 10, "api-surface"),
    ("crates/serve/src/wire.rs", 53, "api-surface"),
    ("crates/serve/src/wire.rs", 59, "api-surface"),
    ("src/error.rs", 19, "error-exit"),
    ("src/error.rs", 39, "error-exit"),
    ("src/lib.rs", 11, "no-panic"),
    ("src/lib.rs", 12, "no-panic"),
    ("src/lib.rs", 13, "no-panic"),
    ("src/lib.rs", 15, "no-panic"),
    ("src/lib.rs", 17, "no-panic"),
    ("src/lib.rs", 22, "no-panic"),
    ("src/lib.rs", 34, "vet-allow"),
    ("src/lib.rs", 35, "no-panic"),
    ("src/lib.rs", 41, "vet-allow"),
    ("src/lib.rs", 42, "no-panic"),
];

#[test]
fn every_lint_fires_exactly_where_seeded() {
    let root = fixtures_root();
    let out = run_vet(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "findings mean exit 1");
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with("vh-vet:")).collect();
    assert_eq!(
        lines.len(),
        SEEDED.len(),
        "one finding per seeded violation:\n{text}"
    );
    for (i, (file, line, lint)) in SEEDED.iter().enumerate() {
        let prefix = format!("{file}:{line}: [{lint}]");
        assert!(
            lines[i].starts_with(&prefix),
            "finding {i}: expected `{prefix}…`, got `{}`",
            lines[i]
        );
    }
}

#[test]
fn json_report_matches_the_text_findings() {
    let root = fixtures_root();
    let json_path = std::env::temp_dir().join(format!("vh-vet-corpus-{}.json", std::process::id()));
    let out = run_vet(&[
        "--root",
        root.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(stdout(&out), "", "--quiet silences the text report");
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    let _ = std::fs::remove_file(&json_path);

    assert!(json.starts_with(&format!(
        "{{\"tool\":\"vh-vet\",\"count\":{},",
        SEEDED.len()
    )));
    // One JSON finding object per seeded violation, in report order.
    for (file, line, lint) in SEEDED {
        let entry = format!("{{\"file\":\"{file}\",\"line\":{line},\"lint\":\"{lint}\",");
        assert!(json.contains(&entry), "JSON misses {file}:{line} [{lint}]");
    }
    for lint in [
        "no-panic",
        "safety-comment",
        "span-vocab",
        "edit-exhaustive",
        "error-exit",
        "api-surface",
        "prom-name",
        "deprecated-wrapper",
        "oracle-twin",
        "vet-allow",
    ] {
        let expected = SEEDED.iter().filter(|(_, _, l)| l == &lint).count();
        let got = json.matches(&format!("\"lint\":\"{lint}\"")).count();
        assert_eq!(got, expected, "JSON count for {lint}");
    }
}

#[test]
fn allow_comments_suppress_and_test_code_is_exempt() {
    // The fixture seeds a *valid* allow (`documented`) and a
    // `#[cfg(test)]` unwrap; neither may appear in the findings.
    let root = fixtures_root();
    let out = run_vet(&["--root", root.to_str().unwrap()]);
    let text = stdout(&out);
    assert!(
        !text.contains("src/lib.rs:28"),
        "the documented allow at line 27 must gate line 28:\n{text}"
    );
    assert!(
        !text.contains("src/lib.rs:49"),
        "the cfg(test) unwrap at line 49 must stay silent:\n{text}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let out = run_vet(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown argument"), "{err}");
}

#[test]
fn unreadable_roots_exit_three() {
    let out = run_vet(&["--root", "/nonexistent/vh-vet-no-such-dir"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn list_names_every_lint() {
    let out = run_vet(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for lint in [
        "no-panic",
        "safety-comment",
        "span-vocab",
        "edit-exhaustive",
        "error-exit",
        "api-surface",
        "prom-name",
        "deprecated-wrapper",
        "oracle-twin",
        "vet-allow",
    ] {
        assert!(text.contains(lint), "--list misses {lint}");
    }
}
