//! Drives the `vh-vet` binary over the fixture corpus and asserts one
//! finding per seeded violation, with the exit codes and JSON document
//! the CI contract promises.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The fixture mini-workspace next to this test.
fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_vet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vh-vet"))
        .args(args)
        .output()
        .expect("vh-vet binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Every seeded violation, as `(file, line, lint)`. The corpus README
/// documents what each one is; this list is the contract the test pins.
const SEEDED: &[(&str, u32, &str)] = &[
    ("crates/demo/src/cache.rs", 16, "oracle-twin"),
    ("crates/demo/src/hot.rs", 8, "hot-path"),
    ("crates/demo/src/hot.rs", 16, "hot-path"),
    ("crates/demo/src/hot.rs", 28, "hot-path"),
    ("crates/demo/src/hot.rs", 39, "stale-allow"),
    ("crates/demo/src/hot.rs", 44, "hot-path"),
    ("crates/demo/src/kernels.rs", 6, "oracle-twin"),
    ("crates/demo/src/kernels.rs", 11, "oracle-twin"),
    ("crates/demo/src/lib.rs", 12, "safety-comment"),
    ("crates/query/src/edit.rs", 21, "edit-exhaustive"),
    ("crates/query/src/edit.rs", 29, "edit-exhaustive"),
    ("crates/query/src/engine.rs", 12, "span-vocab"),
    ("crates/query/src/engine.rs", 19, "deprecated-wrapper"),
    ("crates/query/src/engine.rs", 25, "deprecated-wrapper"),
    ("crates/query/src/engine.rs", 32, "deprecated-wrapper"),
    ("crates/query/src/metrics.rs", 11, "prom-name"),
    ("crates/query/src/metrics.rs", 12, "prom-name"),
    ("crates/query/src/metrics.rs", 13, "prom-name"),
    ("crates/serve/src/hold.rs", 27, "hold-across-blocking"),
    ("crates/serve/src/hold.rs", 33, "hold-across-blocking"),
    ("crates/serve/src/hold.rs", 40, "hold-across-blocking"),
    ("crates/serve/src/hold.rs", 58, "stale-allow"),
    ("crates/serve/src/locks.rs", 21, "lock-order"),
    ("crates/serve/src/locks.rs", 28, "lock-order"),
    ("crates/serve/src/locks.rs", 36, "lock-order"),
    ("crates/serve/src/server.rs", 4, "api-surface"),
    ("crates/serve/src/wire.rs", 10, "api-surface"),
    ("crates/serve/src/wire.rs", 53, "api-surface"),
    ("crates/serve/src/wire.rs", 59, "api-surface"),
    ("src/error.rs", 19, "error-exit"),
    ("src/error.rs", 39, "error-exit"),
    ("src/lib.rs", 11, "no-panic"),
    ("src/lib.rs", 12, "no-panic"),
    ("src/lib.rs", 13, "no-panic"),
    ("src/lib.rs", 15, "no-panic"),
    ("src/lib.rs", 17, "no-panic"),
    ("src/lib.rs", 22, "no-panic"),
    ("src/lib.rs", 34, "vet-allow"),
    ("src/lib.rs", 35, "no-panic"),
    ("src/lib.rs", 41, "vet-allow"),
    ("src/lib.rs", 42, "no-panic"),
    ("src/lib.rs", 55, "stale-allow"),
];

#[test]
fn every_lint_fires_exactly_where_seeded() {
    let root = fixtures_root();
    let out = run_vet(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "findings mean exit 1");
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with("vh-vet:")).collect();
    assert_eq!(
        lines.len(),
        SEEDED.len(),
        "one finding per seeded violation:\n{text}"
    );
    for (i, (file, line, lint)) in SEEDED.iter().enumerate() {
        let prefix = format!("{file}:{line}: [{lint}]");
        assert!(
            lines[i].starts_with(&prefix),
            "finding {i}: expected `{prefix}…`, got `{}`",
            lines[i]
        );
    }
}

#[test]
fn json_report_matches_the_text_findings() {
    let root = fixtures_root();
    let json_path = std::env::temp_dir().join(format!("vh-vet-corpus-{}.json", std::process::id()));
    let out = run_vet(&[
        "--root",
        root.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(stdout(&out), "", "--quiet silences the text report");
    let json = std::fs::read_to_string(&json_path).expect("JSON artifact written");
    let _ = std::fs::remove_file(&json_path);

    assert!(json.starts_with(&format!(
        "{{\"tool\":\"vh-vet\",\"count\":{},",
        SEEDED.len()
    )));
    // One JSON finding object per seeded violation, in report order.
    for (file, line, lint) in SEEDED {
        let entry = format!("{{\"file\":\"{file}\",\"line\":{line},\"lint\":\"{lint}\",");
        assert!(json.contains(&entry), "JSON misses {file}:{line} [{lint}]");
    }
    for lint in [
        "no-panic",
        "safety-comment",
        "span-vocab",
        "edit-exhaustive",
        "error-exit",
        "api-surface",
        "prom-name",
        "deprecated-wrapper",
        "oracle-twin",
        "lock-order",
        "hold-across-blocking",
        "hot-path",
        "vet-allow",
        "stale-allow",
    ] {
        let expected = SEEDED.iter().filter(|(_, _, l)| l == &lint).count();
        let got = json.matches(&format!("\"lint\":\"{lint}\"")).count();
        assert_eq!(got, expected, "JSON count for {lint}");
    }
}

#[test]
fn sarif_report_matches_the_text_findings() {
    let root = fixtures_root();
    let sarif_path =
        std::env::temp_dir().join(format!("vh-vet-corpus-{}.sarif", std::process::id()));
    let out = run_vet(&[
        "--root",
        root.to_str().unwrap(),
        "--sarif",
        sarif_path.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let sarif = std::fs::read_to_string(&sarif_path).expect("SARIF artifact written");
    let _ = std::fs::remove_file(&sarif_path);

    assert!(
        sarif.contains("sarif-2.1.0.json") && sarif.contains("\"version\":\"2.1.0\""),
        "SARIF header:\n{sarif}"
    );
    assert!(sarif.contains("\"name\":\"vh-vet\""));
    // One result per seeded violation, each carrying its rule and line.
    assert_eq!(
        sarif.matches("\"ruleId\":").count(),
        SEEDED.len(),
        "one SARIF result per seeded violation"
    );
    for (file, line, lint) in SEEDED {
        assert!(
            sarif.contains(&format!("\"ruleId\":\"{lint}\"")),
            "SARIF misses rule {lint}"
        );
        assert!(
            sarif.contains(&format!("\"uri\":\"{file}\""))
                && sarif.contains(&format!("\"startLine\":{line}")),
            "SARIF misses {file}:{line}"
        );
    }
    // Warnings stay warnings in SARIF: stale-allow results demote.
    let stale = SEEDED
        .iter()
        .filter(|(_, _, l)| *l == "stale-allow")
        .count();
    assert_eq!(
        sarif.matches("\"level\":\"warning\"").count(),
        stale + 1, // the rule's defaultConfiguration plus each result
        "stale-allow results carry warning level"
    );
}

/// The drift gate: a lint registered in `ALL_LINTS` without a seeded
/// fixture violation would silently stop being exercised end-to-end.
#[test]
fn every_registered_lint_has_a_seeded_fixture_violation() {
    for lint in vh_vet::ALL_LINTS {
        let id = lint.id();
        assert!(
            SEEDED.iter().any(|(_, _, l)| *l == id),
            "lint `{id}` has no seeded violation in the fixture corpus"
        );
    }
}

#[test]
fn allow_comments_suppress_and_test_code_is_exempt() {
    // The fixture seeds a *valid* allow (`documented`) and a
    // `#[cfg(test)]` unwrap; neither may appear in the findings.
    let root = fixtures_root();
    let out = run_vet(&["--root", root.to_str().unwrap()]);
    let text = stdout(&out);
    assert!(
        !text.contains("src/lib.rs:28"),
        "the documented allow at line 27 must gate line 28:\n{text}"
    );
    assert!(
        !text.contains("src/lib.rs:49"),
        "the cfg(test) unwrap at line 49 must stay silent:\n{text}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let out = run_vet(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("unknown argument"), "{err}");
}

#[test]
fn unreadable_roots_exit_three() {
    let out = run_vet(&["--root", "/nonexistent/vh-vet-no-such-dir"]);
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn list_names_every_lint() {
    let out = run_vet(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for lint in [
        "no-panic",
        "safety-comment",
        "span-vocab",
        "edit-exhaustive",
        "error-exit",
        "api-surface",
        "prom-name",
        "deprecated-wrapper",
        "oracle-twin",
        "lock-order",
        "hold-across-blocking",
        "hot-path",
        "vet-allow",
        "stale-allow",
    ] {
        assert!(text.contains(lint), "--list misses {lint}");
    }
}
