//! Trimmed copy of the VHRPC wire tables, with seeded drift.

/// Request verbs.
pub enum Verb {
    /// Point query.
    Point,
    /// Twig query.
    Twig,
    /// Mutation.
    Edit,
}

impl Verb {
    /// Wire opcode — total, stays silent.
    pub fn code(self) -> u8 {
        match self {
            Verb::Point => 1,
            Verb::Twig => 2,
            Verb::Edit => 3,
        }
    }

    /// Wire name — the `Edit` arm is missing (seeded).
    pub fn wire_name(self) -> &'static str {
        match self {
            Verb::Point => "point",
            Verb::Twig => "twig",
        }
    }
}

/// Response statuses.
pub enum WireStatus {
    /// Success.
    Ok,
    /// Shed under quota.
    Shed,
}

impl WireStatus {
    /// Wire code — total, stays silent.
    pub fn code(self) -> u8 {
        match self {
            WireStatus::Ok => 0,
            WireStatus::Shed => 8,
        }
    }

    /// Wire name — `shed` has no README table row (seeded).
    pub fn wire_name(self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::Shed => "shed",
        }
    }
}

/// A decoded address — not re-exported from the crate root (seeded).
pub struct Address {
    /// Tenant ordinal.
    pub tenant: u32,
}
