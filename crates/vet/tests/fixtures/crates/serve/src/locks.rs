//! Lock-ordering fixture: three registry locks acquired pairwise so the
//! third fn inverts the order and closes a cycle (seeded — one
//! `lock-order` finding per edge of the cycle).

use std::sync::Mutex;

/// Shared server state guarded by three locks.
pub struct Gate {
    /// Tenant registry.
    pub registry: Mutex<u32>,
    /// Admission counters.
    pub admission: Mutex<u32>,
    /// Metrics ranges.
    pub ranges: Mutex<u32>,
}

impl Gate {
    /// Acquires registry, then admission while holding it.
    pub fn admit(&self) -> u32 {
        let r = self.registry.lock();
        let a = self.admission.lock();
        0
    }

    /// Acquires admission, then ranges while holding it.
    pub fn observe(&self) -> u32 {
        let a = self.admission.lock();
        let m = self.ranges.lock();
        0
    }

    /// Inverts the order: ranges before registry, closing the
    /// registry → admission → ranges → registry cycle.
    pub fn report(&self) -> u32 {
        let m = self.ranges.lock();
        let r = self.registry.lock();
        0
    }
}
