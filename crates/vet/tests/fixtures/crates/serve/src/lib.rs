//! Serve crate root; the re-export list misses `Address` (seeded).

pub use wire::{Verb, WireStatus};
