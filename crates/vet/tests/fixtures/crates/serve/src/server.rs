//! Imports an engine internal that the frozen v1 API does not bless
//! (seeded): `SecretPlanner` is absent from `crates/query/src/api.rs`.

use vh_query::{Engine, SecretPlanner};

/// Holds a tenant engine.
pub struct Srv {
    /// The tenant's engine.
    pub engine: Engine,
}
