//! Hold-across-blocking fixture: guards living across socket writes and
//! WAL appends, directly and through a helper (seeded), plus one
//! documented hold that must stay silent and one stale allow.

use std::sync::Mutex;

/// Minimal WAL stand-in.
pub struct Wal;

impl Wal {
    /// Appends one record (blocking: an fsync'd WAL write).
    pub fn append(&self, _rec: &[u8]) {}
}

/// A relay holding connection state and a write-ahead log.
pub struct Relay {
    /// Connection state.
    pub state: Mutex<u32>,
    /// Write-ahead log.
    pub wal: Wal,
}

impl Relay {
    /// Seeded: the state guard lives across the socket write.
    pub fn emit(&self, out: &mut std::net::TcpStream) {
        let g = self.state.lock();
        out.write_all(b"frame");
    }

    /// Seeded: the state guard lives across the WAL append.
    pub fn persist(&self) {
        let g = self.state.lock();
        self.wal.append(b"rec");
    }

    /// Seeded: the blocking write hides one call deep — the finding
    /// lands on the `forward` call while the guard is live.
    pub fn flush_all(&self, out: &mut std::net::TcpStream) {
        let g = self.state.lock();
        self.forward(out);
    }

    /// Writes the buffered frames out (blocking, transitively).
    fn forward(&self, out: &mut std::net::TcpStream) {
        out.write_all(b"tail");
    }

    /// A documented hold: the allow gates the append, zero findings.
    pub fn checkpoint(&self) {
        let g = self.state.lock();
        // vet: allow(hold-across-blocking) — fixture: the checkpoint must serialise its own append
        self.wal.append(b"ckpt");
    }

    /// Seeded `stale-allow`: the allow gates a line where nothing
    /// blocks any more.
    pub fn tally(&self) -> u32 {
        // vet: allow(hold-across-blocking) — fixture: stale, the blocking call moved away
        7
    }
}
