//! Fixture span vocabulary (subset of the real one).

/// The stable span vocabulary the fixture engine must stick to.
pub const STABLE_SPAN_NAMES: &[&str] = &["query", "parse", "exec"];
