//! The frozen v1 request API (fixture copy): the blessed names.

pub use crate::engine::{Engine, QueryRequest};
