//! Seeded `edit-exhaustive` violations: a wildcard arm in the WAL
//! encoder and a catch-all binding in the kind label, both over the
//! mutation enum below (a trimmed fixture copy of the real one).

/// The mutation model (fixture copy).
pub enum Edit {
    /// Insert a parsed fragment.
    InsertSubtree { xml: String },
    /// Delete a subtree.
    DeleteSubtree { target: String },
    /// Replace a text value.
    SetValue { value: String },
}

/// Violation: the wildcard would silently drop a future variant from
/// the log.
pub fn encode(e: &Edit) -> u8 {
    match e {
        Edit::InsertSubtree { .. } => 1,
        Edit::DeleteSubtree { .. } => 2,
        _ => 0,
    }
}

/// Violation: the binding arm hides unlabelled edit kinds from traces.
pub fn kind(e: &Edit) -> &'static str {
    match e {
        Edit::InsertSubtree { .. } => "insert-subtree",
        other => "unknown",
    }
}

/// Clean: a tag-byte dispatch whose const patterns and binding arm are
/// fine — `Edit::` appears only on the expression side.
pub fn decode(tag: u8) -> Option<Edit> {
    const TAG_SET: u8 = 4;
    match tag {
        TAG_SET => Some(Edit::SetValue { value: String::new() }),
        other => None,
    }
}
