//! Fixture engine seeding `span-vocab` and `deprecated-wrapper`.
//!
//! Seeded findings: one off-vocabulary span name, an `eval*` wrapper
//! without deprecation docs, one that does not forward to `run`, and a
//! `#[doc(hidden)]` getter without deprecation docs.

impl Engine {
    /// The current entry point (no constraints apply to it).
    pub fn run(&self, q: &str) -> Outcome {
        let mut trace = TraceBuilder::enabled("query");
        trace.begin("parse");
        trace.begin("rogue-stage");
        trace.begin("exec");
        self.pipeline(q, trace)
    }

    /// Evaluates a query the old way — forwards correctly but the doc
    /// comment never marks it as legacy: one finding.
    pub fn eval(&self, q: &str) -> Outcome {
        self.run(q)
    }

    /// Deprecated: prefer [`Engine::run`] — but the body re-implements
    /// evaluation instead of forwarding: one finding.
    pub fn eval_fast(&self, q: &str) -> Outcome {
        self.pipeline(q, TraceBuilder::disabled())
    }

    /// Cache counters, hidden from docs without a replacement pointer:
    /// one finding.
    #[doc(hidden)]
    pub fn old_counters(&self) -> u64 {
        self.counters
    }
}
