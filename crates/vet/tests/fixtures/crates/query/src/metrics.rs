//! Fixture exposition seeding `prom-name`.
//!
//! Seeded findings: a namespace-less counter, an uppercase gauge name,
//! and a sample whose family is never opened. The first family/sample
//! pair is disciplined and must stay silent.

/// Exports fixture metrics.
pub fn export(w: &mut PromWriter) {
    w.counter("vpbn_queries_total", "Queries attempted.");
    w.sample("vpbn_queries_total", &[], 1);
    w.counter("queries_total", "Missing namespace.");
    w.gauge("vpbn_BadName", "Uppercase metric name.");
    w.sample("vpbn_orphan_total", &[], 2);
}
