//! Hot-path fixture: annotated kernels whose closures allocate or index
//! (seeded), one clean kernel that must stay silent, one dangling
//! marker, and one stale allow.

/// Seeded: a hot kernel that allocates.
// vet: hot
pub fn gather(n: usize) -> usize {
    let mut out = Vec::new();
    out.extend([n]);
    out.len()
}

/// Seeded: a hot kernel that formats into a fresh String.
// vet: hot
pub fn label(n: usize) -> usize {
    let s = format!("{n}");
    s.len()
}

/// Seeded at the helper: the hot head reaches the indexing below.
// vet: hot
pub fn head(xs: &[usize]) -> usize {
    tail(xs)
}

/// Indexes without a bound in sight.
fn tail(xs: &[usize]) -> usize {
    xs[0]
}

/// Clean: mask math only, stays silent.
// vet: hot
pub fn pure_mask(x: u64) -> u64 {
    (x ^ (x >> 1)) & 0x00ff_00ff_00ff_00ff
}

/// Seeded `stale-allow`: gates a line that is already pure.
pub fn settled(x: u64) -> u64 {
    // vet: allow(hot-path) — fixture: stale, the indexing was rewritten away
    x.rotate_left(8)
}

// Seeded: a dangling marker with no fn in the window below it.
// vet: hot
