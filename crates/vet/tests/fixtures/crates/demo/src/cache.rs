//! Cache-maintenance impls for the oracle-twin corpus: one bodied
//! `maintain` missing its recompute-oracle comment (seeded violation),
//! one compliant impl with its twin, and a bodyless trait declaration
//! that must stay exempt.

/// The trait declaration: bodyless `maintain` is a contract, not a
/// splice, and must not fire.
pub trait MaintainView: Sized {
    fn maintain(&self, delta: &u32) -> Option<Self>;
}

pub struct Stale;

impl MaintainView for Stale {
    /// Splices without any proof (seeded violation).
    fn maintain(&self, _delta: &u32) -> Option<Self> {
        Some(Stale)
    }
}

pub struct Fresh;

// oracle: rebuild_fresh_oracle
impl MaintainView for Fresh {
    fn maintain(&self, _delta: &u32) -> Option<Self> {
        Some(Fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::Fresh;

    /// Recompute twin of the compliant impl.
    fn rebuild_fresh_oracle() -> Fresh {
        Fresh
    }
}
