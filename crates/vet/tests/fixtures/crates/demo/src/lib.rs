//! Fixture crate seeding `safety-comment`: one justified and one naked
//! `unsafe` block.

/// Justified: covered by the `SAFETY:` comment, zero findings.
pub fn justified(bytes: &[u8]) -> &str {
    // SAFETY: fixture — callers pass ASCII only, so the bytes are UTF-8.
    unsafe { std::str::from_utf8_unchecked(bytes) }
}

/// Naked: one `safety-comment` finding.
pub fn naked(bytes: &[u8]) -> &str {
    unsafe { std::str::from_utf8_unchecked(bytes) }
}
