//! Branch-free kernels for the oracle-twin corpus: one SWAR kernel
//! missing its oracle comment, one naming a twin that does not exist,
//! and one compliant pair that must stay silent.

/// Sums bytes a word at a time (no oracle comment: seeded violation).
pub fn sum_swar(xs: &[u8]) -> u64 {
    xs.iter().map(|&b| u64::from(b)).sum()
}

/// oracle: cmp_scalar
pub fn cmp_branchless(a: u32, b: u32) -> u32 {
    u32::from(a < b)
}

/// Picks the larger word without branching.
///
/// oracle: max_scalar
pub fn max_swar(a: u64, b: u64) -> u64 {
    let take_b = u64::from(b > a);
    b * take_b + a * (1 - take_b)
}

/// Scalar twin of [`max_swar`].
pub fn max_scalar(a: u64, b: u64) -> u64 {
    if b > a {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    /// Test-region kernels are exempt.
    fn helper_swar() -> u64 {
        0
    }
}
