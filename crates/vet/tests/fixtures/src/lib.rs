//! Fixture library seeding every `no-panic` form plus the allow-comment
//! edge cases (`vet-allow`).
//!
//! Seeded findings: six `no-panic` forms in `panics`/`unfinished`, one
//! suppressed occurrence in `documented`, a reason-less allow and an
//! unknown-lint allow (each a `vet-allow` finding whose occurrence still
//! fires), and a `#[cfg(test)]` region that must stay silent.

/// Fires all six forbidden forms.
pub fn panics(x: Option<u32>) -> u32 {
    dbg!(x);
    let a = x.unwrap();
    let b = x.expect("fixture");
    if a > b {
        panic!("boom");
    }
    todo!()
}

/// Fires `unimplemented!`.
pub fn unfinished() {
    unimplemented!()
}

/// A properly documented caller bug: suppressed, zero findings.
pub fn documented(x: Option<u32>) -> u32 {
    // vet: allow(no-panic) — fixture: documented caller bug
    x.unwrap()
}

/// A reason-less allow suppresses nothing: one `vet-allow` finding plus
/// the `no-panic` finding it failed to gate.
pub fn reasonless(x: Option<u32>) -> u32 {
    // vet: allow(no-panic)
    x.unwrap()
}

/// An unknown lint id: one `vet-allow` finding plus the ungated
/// `no-panic` finding.
pub fn unknown_lint(x: Option<u32>) -> u32 {
    // vet: allow(no-such-lint) — reason given but the lint is made up
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u32).unwrap();
    }
}

/// Seeded `stale-allow`: the unwrap this once gated is long gone.
pub fn healed(x: Option<u32>) -> u32 {
    // vet: allow(no-panic) — fixture: stale, the unwrap was removed
    x.map_or(0, |v| v + 1)
}
