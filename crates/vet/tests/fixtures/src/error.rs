//! Fixture error facade, deliberately out of sync (seeds `error-exit`).
//!
//! Seeded violations:
//! * `Storage` has no arm in `code()` (the wildcard does not count);
//! * exit code 9 has no row in the fixture README's exit table.

/// The fixture suite's error type.
pub enum VhError {
    /// CLI misuse.
    Usage(String),
    /// Filesystem failure.
    Io {
        /// The offending path.
        path: String,
    },
    /// Query failure.
    Query(String),
    /// Storage failure.
    Storage(String),
}

impl VhError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            VhError::Usage(_) => "CLI_USAGE",
            VhError::Io { .. } => "CLI_IO",
            VhError::Query(_) => "QUERY",
            _ => "OTHER",
        }
    }

    /// Process exit code for the CLI.
    pub fn exit_code(&self) -> u8 {
        match self {
            VhError::Usage(_) => 2,
            VhError::Io { .. } => 3,
            VhError::Query(_) => 2,
            VhError::Storage(_) => 9,
        }
    }
}
