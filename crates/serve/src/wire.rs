//! The VHRPC wire protocol: CRC-framed binary messages whose request
//! header carries a **prefix-coded address**.
//!
//! # Frame
//!
//! ```text
//! frame   := magic · len · crc · payload
//! magic   := "VHRPC" 0x01                  (6 bytes, protocol version 1)
//! len     := u32 LE                        (payload length, ≤ 16 MiB)
//! crc     := u32 LE                        (CRC32 of payload, zlib flavour)
//! ```
//!
//! A frame defect (bad magic, oversized length, checksum mismatch) means
//! the byte stream itself can no longer be trusted, so the peer answers
//! with a [`WireStatus::BadFrame`] error frame and closes the
//! connection. Request-level problems (unknown tenant, malformed body,
//! query errors) are answered in-band and the connection stays up.
//!
//! # Address
//!
//! Every request starts with a three-segment address
//! `tenant.document.query-class`, each segment encoded as the vh-pbn
//! **order-preserving ordinal** of `len + 1` followed by the raw bytes
//! (the `+ 1` keeps the empty segment encodable — ordinal 0 is the
//! codec's reserved front marker). Two properties carry over from the
//! PBN codec:
//!
//! * encoded addresses compare in `(tenant, document, class)` order
//!   under plain `memcmp`, and
//! * a tenant's encoded first segment is a **byte prefix** of every
//!   address that routes to it — and of no other tenant's addresses,
//!   because the leading ordinal pins the segment length. The server
//!   routes with a SWAR `starts_with` over these prefixes and never has
//!   to decode the address of a request it will shed.
//!
//! # Request / response payloads
//!
//! ```text
//! request  := address · verb:u8 · body
//! response := status:u8 · body
//! str      := u32 LE length · UTF-8 bytes
//! ```

use vh_pbn::{decode_ordinal_value, encode_ordinal_value};
use vh_storage::crc::crc32;

/// Frame magic: protocol name plus version byte.
pub const MAGIC: &[u8; 6] = b"VHRPC\x01";

/// Frame header length: magic + payload length + payload CRC.
pub const HEADER_LEN: usize = 6 + 4 + 4;

/// Hard ceiling on one frame's payload (16 MiB): a length field above
/// this is a framing defect, not a request to allocate.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Longest admissible address segment, in bytes.
pub const MAX_SEGMENT: usize = 4096;

// ------------------------------------------------------------- framing ---

/// Why a frame could not be accepted from the byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDefect {
    /// The first six bytes were not `VHRPC\x01`.
    BadMagic,
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// The payload checksum did not match the header.
    BadCrc {
        /// CRC the header declared.
        declared: u32,
        /// CRC of the payload actually received.
        actual: u32,
    },
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDefect::BadMagic => write!(f, "bad frame magic (want VHRPC v1)"),
            FrameDefect::Oversize(n) => {
                write!(
                    f,
                    "declared payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}"
                )
            }
            FrameDefect::BadCrc { declared, actual } => {
                write!(
                    f,
                    "payload CRC {actual:#010x} does not match header {declared:#010x}"
                )
            }
        }
    }
}

/// Wraps `payload` in a VHRPC frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame header and returns `(payload_len, declared_crc)`.
pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(usize, u32), FrameDefect> {
    if &header[..6] != MAGIC {
        return Err(FrameDefect::BadMagic);
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameDefect::Oversize(len));
    }
    let crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok((len, crc))
}

/// Checks the received payload against the CRC the header declared.
pub fn verify_payload(declared: u32, payload: &[u8]) -> Result<(), FrameDefect> {
    let actual = crc32(payload);
    if actual != declared {
        return Err(FrameDefect::BadCrc { declared, actual });
    }
    Ok(())
}

// ------------------------------------------------------------- statuses ---

/// Response status byte — the wire's error-code table.
///
/// Codes 1–8 are stable: clients and the vh-vet `api-surface` lint both
/// key off this table, and the README documents it verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// The request succeeded.
    Ok,
    /// The byte stream was unframeable; the connection closes.
    BadFrame,
    /// The address was malformed or its class contradicts the verb.
    BadAddress,
    /// No registered tenant's prefix matches the address.
    UnknownTenant,
    /// The verb byte is not in the verb table.
    UnknownVerb,
    /// The verb body was malformed (bad length, bad UTF-8, bad edit).
    BadRequest,
    /// The engine rejected the query (syntax, unknown document, …).
    QueryError,
    /// The engine's own resource limits tripped mid-evaluation.
    ResourceExhausted,
    /// Admission control refused the request (quota or concurrency).
    Shed,
}

/// Every status, in wire-code order.
pub const ALL_STATUSES: [WireStatus; 9] = [
    WireStatus::Ok,
    WireStatus::BadFrame,
    WireStatus::BadAddress,
    WireStatus::UnknownTenant,
    WireStatus::UnknownVerb,
    WireStatus::BadRequest,
    WireStatus::QueryError,
    WireStatus::ResourceExhausted,
    WireStatus::Shed,
];

impl WireStatus {
    /// The status byte sent on the wire.
    pub fn code(self) -> u8 {
        match self {
            WireStatus::Ok => 0,
            WireStatus::BadFrame => 1,
            WireStatus::BadAddress => 2,
            WireStatus::UnknownTenant => 3,
            WireStatus::UnknownVerb => 4,
            WireStatus::BadRequest => 5,
            WireStatus::QueryError => 6,
            WireStatus::ResourceExhausted => 7,
            WireStatus::Shed => 8,
        }
    }

    /// Decodes a status byte.
    pub fn from_code(code: u8) -> Option<WireStatus> {
        ALL_STATUSES.into_iter().find(|s| s.code() == code)
    }

    /// Stable lowercase name, as documented in the README table.
    pub fn wire_name(self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::BadFrame => "bad-frame",
            WireStatus::BadAddress => "bad-address",
            WireStatus::UnknownTenant => "unknown-tenant",
            WireStatus::UnknownVerb => "unknown-verb",
            WireStatus::BadRequest => "bad-request",
            WireStatus::QueryError => "query-error",
            WireStatus::ResourceExhausted => "resource-exhausted",
            WireStatus::Shed => "shed",
        }
    }
}

// ---------------------------------------------------------------- verbs ---

/// Request verb — the wire's operation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// XPath over the physical document; responds with the node count.
    Point,
    /// XPath over a virtual view (spec + path); responds with the count.
    Twig,
    /// FLWR query; responds with the compact-serialized result.
    Flwr,
    /// Apply one encoded [`vh_query::Edit`]; responds with the WAL seq.
    Edit,
    /// Dump the tenant engine's composite snapshot as JSON.
    Snapshot,
    /// The server's own `vh_serve_*` Prometheus exposition.
    Metrics,
}

/// Every verb, in wire-code order.
pub const ALL_VERBS: [Verb; 6] = [
    Verb::Point,
    Verb::Twig,
    Verb::Flwr,
    Verb::Edit,
    Verb::Snapshot,
    Verb::Metrics,
];

impl Verb {
    /// The verb byte sent on the wire.
    pub fn code(self) -> u8 {
        match self {
            Verb::Point => 1,
            Verb::Twig => 2,
            Verb::Flwr => 3,
            Verb::Edit => 4,
            Verb::Snapshot => 5,
            Verb::Metrics => 6,
        }
    }

    /// Decodes a verb byte.
    pub fn from_code(code: u8) -> Option<Verb> {
        ALL_VERBS.into_iter().find(|v| v.code() == code)
    }

    /// Stable lowercase name, as documented in the README table.
    pub fn wire_name(self) -> &'static str {
        match self {
            Verb::Point => "point",
            Verb::Twig => "twig",
            Verb::Flwr => "flwr",
            Verb::Edit => "edit",
            Verb::Snapshot => "snapshot",
            Verb::Metrics => "metrics",
        }
    }

    /// The query-class the address's third segment must carry: the
    /// admission controller prices classes, not individual verbs.
    pub fn class(self) -> &'static str {
        match self {
            Verb::Point | Verb::Twig | Verb::Flwr => "query",
            Verb::Edit => "edit",
            Verb::Snapshot | Verb::Metrics => "admin",
        }
    }
}

// -------------------------------------------------------------- address ---

/// A decoded `tenant.document.query-class` address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// First segment: selects the tenant engine.
    pub tenant: String,
    /// Second segment: the engine-registered document URI.
    pub document: String,
    /// Third segment: the admission class (`query` / `edit` / `admin`).
    pub class: String,
}

impl Address {
    /// Builds an address.
    pub fn new(
        tenant: impl Into<String>,
        document: impl Into<String>,
        class: impl Into<String>,
    ) -> Address {
        Address {
            tenant: tenant.into(),
            document: document.into(),
            class: class.into(),
        }
    }
}

/// A request-level rejection: the status to answer with, plus a human
/// message carried in the response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The response status.
    pub status: WireStatus,
    /// Diagnostic message for the client.
    pub message: String,
}

impl Reject {
    /// Builds a rejection.
    pub fn new(status: WireStatus, message: impl Into<String>) -> Reject {
        Reject {
            status,
            message: message.into(),
        }
    }
}

/// Encodes one address segment: order-preserving ordinal of `len + 1`,
/// then the raw bytes.
pub fn encode_segment(segment: &str, out: &mut Vec<u8>) -> Result<(), Reject> {
    let bytes = segment.as_bytes();
    if bytes.len() > MAX_SEGMENT {
        return Err(Reject::new(
            WireStatus::BadAddress,
            format!(
                "address segment of {} bytes exceeds {MAX_SEGMENT}",
                bytes.len()
            ),
        ));
    }
    encode_ordinal_value(bytes.len() as u32 + 1, out)
        .map_err(|e| Reject::new(WireStatus::BadAddress, format!("segment length: {e}")))?;
    out.extend_from_slice(bytes);
    Ok(())
}

/// Decodes one segment starting at `bytes`, returning it with the number
/// of bytes consumed.
pub fn decode_segment(bytes: &[u8]) -> Result<(String, usize), Reject> {
    let (len_plus_one, ord_len) = decode_ordinal_value(bytes)
        .map_err(|e| Reject::new(WireStatus::BadAddress, format!("segment length: {e}")))?;
    let len = (len_plus_one - 1) as usize;
    if len > MAX_SEGMENT {
        return Err(Reject::new(
            WireStatus::BadAddress,
            format!("address segment of {len} bytes exceeds {MAX_SEGMENT}"),
        ));
    }
    let rest = &bytes[ord_len..];
    if rest.len() < len {
        return Err(Reject::new(
            WireStatus::BadAddress,
            "address segment truncated",
        ));
    }
    let s = std::str::from_utf8(&rest[..len])
        .map_err(|_| Reject::new(WireStatus::BadAddress, "address segment is not UTF-8"))?;
    Ok((s.to_owned(), ord_len + len))
}

impl Address {
    /// The encoded three-segment address.
    pub fn encode(&self) -> Result<Vec<u8>, Reject> {
        let mut out =
            Vec::with_capacity(self.tenant.len() + self.document.len() + self.class.len() + 6);
        encode_segment(&self.tenant, &mut out)?;
        encode_segment(&self.document, &mut out)?;
        encode_segment(&self.class, &mut out)?;
        Ok(out)
    }

    /// Just the tenant segment — the routing prefix the server matches
    /// with a SWAR `starts_with`.
    pub fn routing_prefix(tenant: &str) -> Result<Vec<u8>, Reject> {
        let mut out = Vec::with_capacity(tenant.len() + 2);
        encode_segment(tenant, &mut out)?;
        Ok(out)
    }

    /// Decodes an address from the front of a request payload, returning
    /// it with the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Address, usize), Reject> {
        let (tenant, a) = decode_segment(bytes)?;
        let (document, b) = decode_segment(&bytes[a..])?;
        let (class, c) = decode_segment(&bytes[a + b..])?;
        Ok((
            Address {
                tenant,
                document,
                class,
            },
            a + b + c,
        ))
    }
}

// ------------------------------------------------------------- requests ---

/// The verb-specific part of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// [`Verb::Point`].
    Point {
        /// XPath over the physical document.
        path: String,
    },
    /// [`Verb::Twig`].
    Twig {
        /// vDataGuide specification of the virtual view.
        spec: String,
        /// XPath over the view.
        path: String,
    },
    /// [`Verb::Flwr`].
    Flwr {
        /// FLWR query text.
        query: String,
    },
    /// [`Verb::Edit`] — the edit in its WAL payload encoding.
    Edit {
        /// `vh_query::Edit::encode()` bytes.
        payload: Vec<u8>,
    },
    /// [`Verb::Snapshot`].
    Snapshot,
    /// [`Verb::Metrics`].
    Metrics,
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Routing address.
    pub address: Address,
    /// Operation payload.
    pub body: RequestBody,
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn take_len(bytes: &[u8], at: &mut usize) -> Result<usize, Reject> {
    let rest = &bytes[*at..];
    if rest.len() < 4 {
        return Err(Reject::new(
            WireStatus::BadRequest,
            "length field truncated",
        ));
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    *at += 4;
    if bytes.len() - *at < len {
        return Err(Reject::new(
            WireStatus::BadRequest,
            "length-prefixed field truncated",
        ));
    }
    Ok(len)
}

fn take_bytes<'a>(bytes: &'a [u8], at: &mut usize) -> Result<&'a [u8], Reject> {
    let len = take_len(bytes, at)?;
    let out = &bytes[*at..*at + len];
    *at += len;
    Ok(out)
}

fn take_str(bytes: &[u8], at: &mut usize) -> Result<String, Reject> {
    let raw = take_bytes(bytes, at)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| Reject::new(WireStatus::BadRequest, "string field is not UTF-8"))
}

fn expect_end(bytes: &[u8], at: usize) -> Result<(), Reject> {
    if at != bytes.len() {
        return Err(Reject::new(
            WireStatus::BadRequest,
            format!("{} trailing bytes after request body", bytes.len() - at),
        ));
    }
    Ok(())
}

impl Request {
    /// The verb this body belongs to.
    pub fn verb(&self) -> Verb {
        match self.body {
            RequestBody::Point { .. } => Verb::Point,
            RequestBody::Twig { .. } => Verb::Twig,
            RequestBody::Flwr { .. } => Verb::Flwr,
            RequestBody::Edit { .. } => Verb::Edit,
            RequestBody::Snapshot => Verb::Snapshot,
            RequestBody::Metrics => Verb::Metrics,
        }
    }

    /// Encodes the request payload (address, verb, body — unframed).
    pub fn encode(&self) -> Result<Vec<u8>, Reject> {
        let mut out = self.address.encode()?;
        out.push(self.verb().code());
        match &self.body {
            RequestBody::Point { path } => put_str(path, &mut out),
            RequestBody::Twig { spec, path } => {
                put_str(spec, &mut out);
                put_str(path, &mut out);
            }
            RequestBody::Flwr { query } => put_str(query, &mut out),
            RequestBody::Edit { payload } => put_bytes(payload, &mut out),
            RequestBody::Snapshot | RequestBody::Metrics => {}
        }
        Ok(out)
    }

    /// Decodes a request payload. The address's class segment must match
    /// the verb's [`Verb::class`] — a mismatch is a [`WireStatus::BadAddress`],
    /// so a client cannot smuggle an edit past a query-class quota.
    pub fn decode(payload: &[u8]) -> Result<Request, Reject> {
        let (address, mut at) = Address::decode(payload)?;
        let Some(&verb_code) = payload.get(at) else {
            return Err(Reject::new(WireStatus::UnknownVerb, "missing verb byte"));
        };
        at += 1;
        let Some(verb) = Verb::from_code(verb_code) else {
            return Err(Reject::new(
                WireStatus::UnknownVerb,
                format!("unknown verb {verb_code:#04x}"),
            ));
        };
        if address.class != verb.class() {
            return Err(Reject::new(
                WireStatus::BadAddress,
                format!(
                    "address class '{}' does not admit verb '{}' (class '{}')",
                    address.class,
                    verb.wire_name(),
                    verb.class()
                ),
            ));
        }
        let body = match verb {
            Verb::Point => RequestBody::Point {
                path: take_str(payload, &mut at)?,
            },
            Verb::Twig => RequestBody::Twig {
                spec: take_str(payload, &mut at)?,
                path: take_str(payload, &mut at)?,
            },
            Verb::Flwr => RequestBody::Flwr {
                query: take_str(payload, &mut at)?,
            },
            Verb::Edit => RequestBody::Edit {
                payload: take_bytes(payload, &mut at)?.to_vec(),
            },
            Verb::Snapshot => RequestBody::Snapshot,
            Verb::Metrics => RequestBody::Metrics,
        };
        expect_end(payload, at)?;
        Ok(Request { address, body })
    }
}

// ------------------------------------------------------------ responses ---

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Point/Twig: the number of selected nodes.
    Count(u64),
    /// Flwr/Snapshot/Metrics: a text payload.
    Text(String),
    /// Edit: the WAL sequence number the edit was logged under.
    Seq(u64),
    /// Any non-`Ok` status, with its diagnostic message.
    Error {
        /// The wire status (never [`WireStatus::Ok`]).
        status: WireStatus,
        /// Diagnostic message.
        message: String,
    },
}

/// Response body tags distinguishing the `Ok` payload shapes.
const TAG_COUNT: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_SEQ: u8 = 3;

impl Response {
    /// Encodes the response payload (status, body — unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Count(n) => {
                out.push(WireStatus::Ok.code());
                out.push(TAG_COUNT);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::Seq(n) => {
                out.push(WireStatus::Ok.code());
                out.push(TAG_SEQ);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::Text(s) => {
                out.push(WireStatus::Ok.code());
                out.push(TAG_TEXT);
                put_str(s, &mut out);
            }
            Response::Error { status, message } => {
                out.push(status.code());
                put_str(message, &mut out);
            }
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Response, Reject> {
        let Some(&status_code) = payload.first() else {
            return Err(Reject::new(WireStatus::BadFrame, "empty response payload"));
        };
        let Some(status) = WireStatus::from_code(status_code) else {
            return Err(Reject::new(
                WireStatus::BadFrame,
                format!("unknown response status {status_code}"),
            ));
        };
        let mut at = 1;
        if status != WireStatus::Ok {
            let message = take_str(payload, &mut at)?;
            expect_end(payload, at)?;
            return Ok(Response::Error { status, message });
        }
        let Some(&tag) = payload.get(at) else {
            return Err(Reject::new(WireStatus::BadFrame, "missing response tag"));
        };
        at += 1;
        let resp = match tag {
            TAG_COUNT | TAG_SEQ => {
                let rest = &payload[at..];
                if rest.len() < 8 {
                    return Err(Reject::new(WireStatus::BadFrame, "count field truncated"));
                }
                let mut n = [0u8; 8];
                n.copy_from_slice(&rest[..8]);
                at += 8;
                let n = u64::from_le_bytes(n);
                if tag == TAG_COUNT {
                    Response::Count(n)
                } else {
                    Response::Seq(n)
                }
            }
            TAG_TEXT => Response::Text(take_str(payload, &mut at)?),
            other => {
                return Err(Reject::new(
                    WireStatus::BadFrame,
                    format!("unknown response tag {other}"),
                ))
            }
        };
        expect_end(payload, at)?;
        Ok(resp)
    }

    /// Builds an error response from a rejection.
    pub fn reject(r: Reject) -> Response {
        Response::Error {
            status: r.status,
            message: r.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Address {
        Address::new("acme", "books.xml", "query")
    }

    #[test]
    fn frames_round_trip() {
        let payload = b"hello world".to_vec();
        let framed = frame(&payload);
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&framed[..HEADER_LEN]);
        let (len, crc) = parse_header(&header).expect("valid header");
        assert_eq!(len, payload.len());
        verify_payload(crc, &framed[HEADER_LEN..]).expect("crc matches");
    }

    #[test]
    fn corrupt_frames_are_detected() {
        let framed = frame(b"payload");
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bad[..HEADER_LEN]);
        assert_eq!(parse_header(&header), Err(FrameDefect::BadMagic));

        let mut flipped = framed;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        header.copy_from_slice(&flipped[..HEADER_LEN]);
        let (_, crc) = parse_header(&header).expect("header still fine");
        assert!(matches!(
            verify_payload(crc, &flipped[HEADER_LEN..]),
            Err(FrameDefect::BadCrc { .. })
        ));
    }

    #[test]
    fn oversize_lengths_are_rejected_before_allocation() {
        let mut header = [0u8; HEADER_LEN];
        header[..6].copy_from_slice(MAGIC);
        header[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_header(&header),
            Err(FrameDefect::Oversize(_))
        ));
    }

    #[test]
    fn addresses_round_trip_and_preserve_order() {
        let encoded = addr().encode().expect("encodes");
        let (back, used) = Address::decode(&encoded).expect("decodes");
        assert_eq!(back, addr());
        assert_eq!(used, encoded.len());

        // memcmp on encoded addresses = (tenant, document, class) order.
        let a = Address::new("acme", "a.xml", "query").encode().unwrap();
        let b = Address::new("acme", "b.xml", "query").encode().unwrap();
        let c = Address::new("bcme", "a.xml", "query").encode().unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn tenant_prefix_routes_only_its_own_addresses() {
        let prefix = Address::routing_prefix("acme").expect("encodes");
        let own = Address::new("acme", "x", "query").encode().unwrap();
        let longer = Address::new("acmeX", "x", "query").encode().unwrap();
        let shorter = Address::new("acm", "x", "query").encode().unwrap();
        assert!(vh_pbn::keys::starts_with_swar(&own, &prefix));
        // The leading length ordinal keeps "acme" from matching "acmeX"
        // or "acm" — no separator byte needed.
        assert!(!vh_pbn::keys::starts_with_swar(&longer, &prefix));
        assert!(!vh_pbn::keys::starts_with_swar(&shorter, &prefix));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request {
                address: addr(),
                body: RequestBody::Point {
                    path: "//title".into(),
                },
            },
            Request {
                address: addr(),
                body: RequestBody::Twig {
                    spec: "title { author }".into(),
                    path: "//author".into(),
                },
            },
            Request {
                address: addr(),
                body: RequestBody::Flwr {
                    query: "for $x in doc(\"a\")//b return <c/>".into(),
                },
            },
            Request {
                address: Address::new("acme", "books.xml", "edit"),
                body: RequestBody::Edit {
                    payload: vec![1, 2, 3, 250],
                },
            },
            Request {
                address: Address::new("acme", "books.xml", "admin"),
                body: RequestBody::Snapshot,
            },
            Request {
                address: Address::new("acme", "", "admin"),
                body: RequestBody::Metrics,
            },
        ];
        for req in reqs {
            let enc = req.encode().expect("encodes");
            let back = Request::decode(&enc).expect("decodes");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn class_mismatch_is_a_bad_address() {
        // An edit verb under a "query"-class address must be refused:
        // that is the hole that would let edits ride a query quota.
        let mut payload = addr().encode().unwrap();
        payload.push(Verb::Edit.code());
        put_bytes(&[1, 2, 3], &mut payload);
        let err = Request::decode(&payload).expect_err("class mismatch");
        assert_eq!(err.status, WireStatus::BadAddress);
    }

    #[test]
    fn unknown_verbs_and_trailing_bytes_are_rejected() {
        let mut payload = addr().encode().unwrap();
        payload.push(0x7F);
        let err = Request::decode(&payload).expect_err("unknown verb");
        assert_eq!(err.status, WireStatus::UnknownVerb);

        let mut ok = Request {
            address: addr(),
            body: RequestBody::Point { path: "//a".into() },
        }
        .encode()
        .unwrap();
        ok.push(0);
        let err = Request::decode(&ok).expect_err("trailing byte");
        assert_eq!(err.status, WireStatus::BadRequest);
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Count(42),
            Response::Seq(7),
            Response::Text("<results/>".into()),
            Response::Error {
                status: WireStatus::Shed,
                message: "token bucket empty".into(),
            },
        ] {
            let enc = resp.encode();
            assert_eq!(Response::decode(&enc).expect("decodes"), resp);
        }
    }

    #[test]
    fn verb_and_status_tables_are_dense_and_stable() {
        for (i, v) in ALL_VERBS.into_iter().enumerate() {
            assert_eq!(v.code() as usize, i + 1);
            assert_eq!(Verb::from_code(v.code()), Some(v));
        }
        for (i, s) in ALL_STATUSES.into_iter().enumerate() {
            assert_eq!(s.code() as usize, i);
            assert_eq!(WireStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(Verb::from_code(0), None);
        assert_eq!(WireStatus::from_code(9), None);
    }
}
