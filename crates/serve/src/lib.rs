#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-serve — a multi-tenant query server over the frozen v1 request API
//!
//! Everything the engine exposes flows through
//! `Engine::run(QueryRequest) -> QueryOutcome`; this crate puts a wire
//! in front of it. The moving parts:
//!
//! * [`wire`] — the **VHRPC** framing (`VHRPC\x01` magic, CRC32-guarded
//!   payloads) and the prefix-coded `tenant.document.query-class`
//!   address, whose segments reuse vh-pbn's order-preserving ordinal
//!   encoding. Encoded addresses sort correctly under `memcmp` and
//!   carry their tenant as an unambiguous byte prefix.
//! * [`registry`] — tenants resolved by a SWAR `starts_with` over those
//!   prefixes, each holding its own [`vh_query::Engine`] behind a mutex.
//! * [`admission`] — per-tenant token buckets and concurrency caps.
//!   Overload is *shed* with a distinct wire status, never dropped.
//! * [`metrics`] — live `vh_serve_*` counters and per-stage latency
//!   histograms in Prometheus text format, scrapable both by the
//!   `metrics` verb and a plain HTTP `GET` on the same port.
//! * [`server`] — the thread-per-core accept loop over
//!   `std::net::TcpListener`; [`client`] — the matching blocking client.
//!
//! ```no_run
//! use vh_query::Engine;
//! use vh_serve::{Client, Registry, Server, ServerConfig, TenantQuota};
//!
//! let mut registry = Registry::new();
//! let mut engine = Engine::new();
//! engine.register_xml("a.xml", "<a><b/></a>").unwrap();
//! registry.add_tenant("acme", engine, TenantQuota::default()).unwrap();
//!
//! let server = Server::bind("127.0.0.1:0", registry, ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.start().unwrap();
//!
//! let mut client = Client::connect(addr, "acme").unwrap();
//! assert_eq!(client.point("a.xml", "//b").unwrap(), 1);
//! handle.shutdown();
//! ```

pub mod admission;
pub mod client;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmitGuard, ShedReason, TenantQuota};
pub use client::{http_metrics, Client, ClientError};
pub use metrics::{LatencyHisto, ServeMetrics, LATENCY_BOUNDS_NS};
pub use registry::{Registry, Tenant};
pub use server::{snapshot_json, Server, ServerConfig, ServerHandle};
pub use wire::{Address, FrameDefect, Reject, Request, RequestBody, Response, Verb, WireStatus};
