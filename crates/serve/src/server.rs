//! The thread-per-core VHRPC server over `std::net::TcpListener`.
//!
//! Each worker owns a clone of the listener and runs a nonblocking
//! accept loop; an accepted connection is served to completion on that
//! worker (persistent connections, one frame in flight at a time — the
//! protocol is strictly request/response). Shutdown is cooperative: a
//! shared flag that every accept loop and every blocked read polls.
//!
//! The listener port doubles as a diagnostics endpoint: a connection
//! whose first bytes spell `GET ` is answered with an HTTP `200` whose
//! body is the live [`ServeMetrics`] exposition, so a stock Prometheus
//! scraper can point at the VHRPC port directly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vh_query::{Edit, Engine, QueryError, QueryRequest};

use crate::metrics::ServeMetrics;
use crate::registry::{Registry, Tenant};
use crate::wire::{
    frame, parse_header, verify_payload, Request, RequestBody, Response, WireStatus, HEADER_LEN,
};

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker (accept + serve) threads. Defaults to the machine's
    /// available parallelism; a connection occupies its worker for its
    /// lifetime, so size this at least to the expected client count.
    pub workers: usize,
    /// Socket read poll interval: how often a blocked read re-checks
    /// the shutdown flag.
    pub poll_interval: Duration,
    /// How long a connection may sit mid-frame without producing a
    /// byte before it is dropped as dead.
    pub stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            poll_interval: Duration::from_millis(10),
            stall_timeout: Duration::from_secs(2),
        }
    }
}

struct Shared {
    registry: Registry,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    config: ServerConfig,
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                registry,
                metrics: ServeMetrics::new(),
                shutdown: AtomicBool::new(false),
                config,
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns the worker threads and returns the running handle.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        self.listener.set_nonblocking(true)?;
        let workers = self.shared.config.workers.max(1);
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let listener = self.listener.try_clone()?;
            let shared = Arc::clone(&self.shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("vh-serve-{w}"))
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(ServerHandle {
            addr: self.addr,
            shared: self.shared,
            threads,
        })
    }
}

/// A running server: owns the worker threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live server metrics.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// The tenant registry (immutable once serving).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Raises the shutdown flag and joins every worker. In-flight
    /// requests finish; idle connections close at the next poll tick.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                serve_connection(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean EOF before the first byte of the buffer.
    ClosedIdle,
    /// EOF, stall, or I/O failure partway through the buffer.
    Died,
    /// The server is shutting down.
    Shutdown,
}

/// Fills `buf` from the stream, tolerating read-timeout ticks so idle
/// persistent connections can wait indefinitely while a *stalled* frame
/// (bytes started, then silence) is dropped after `stall_timeout`.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    mid_message: bool,
) -> ReadOutcome {
    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::Acquire) {
            return ReadOutcome::Shutdown;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && !mid_message {
                    ReadOutcome::ClosedIdle
                } else {
                    ReadOutcome::Died
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let stalled = filled > 0 || mid_message;
                if stalled && last_progress.elapsed() >= shared.config.stall_timeout {
                    return ReadOutcome::Died;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Died,
        }
    }
    ReadOutcome::Full
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    loop {
        let mut header = [0u8; HEADER_LEN];
        match read_full(&mut stream, &mut header, shared, false) {
            ReadOutcome::Full => {}
            ReadOutcome::ClosedIdle | ReadOutcome::Shutdown => return,
            ReadOutcome::Died => {
                shared
                    .metrics
                    .dropped_connections_total
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // HTTP sniffing: a metrics scrape, not a VHRPC frame.
        if header.starts_with(b"GET ") {
            serve_http_metrics(&mut stream, &header, shared);
            return;
        }
        let t_decode = Instant::now();
        let (len, crc) = match parse_header(&header) {
            Ok(ok) => ok,
            Err(defect) => {
                // The stream is unframeable: answer and hang up.
                let resp = Response::Error {
                    status: WireStatus::BadFrame,
                    message: defect.to_string(),
                };
                let _ = stream.write_all(&frame(&resp.encode()));
                shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .dropped_connections_total
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, shared, true) {
            ReadOutcome::Full => {}
            ReadOutcome::Shutdown => return,
            ReadOutcome::ClosedIdle | ReadOutcome::Died => {
                shared
                    .metrics
                    .dropped_connections_total
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if let Err(defect) = verify_payload(crc, &payload) {
            let resp = Response::Error {
                status: WireStatus::BadFrame,
                message: defect.to_string(),
            };
            let _ = stream.write_all(&frame(&resp.encode()));
            shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .dropped_connections_total
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let response = handle_payload(&payload, shared, t_decode);
        if stream.write_all(&frame(&response.encode())).is_err() {
            shared
                .metrics
                .dropped_connections_total
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Answers an HTTP GET on the VHRPC port with the metrics exposition.
fn serve_http_metrics(stream: &mut TcpStream, already: &[u8], shared: &Shared) {
    // Drain the rest of the request head (bounded) so the client's
    // socket isn't reset before it reads our response.
    let mut head = already.to_vec();
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + shared.config.stall_timeout;
    while !head.windows(4).any(|w| w == b"\r\n\r\n")
        && head.len() < 8192
        && Instant::now() < deadline
    {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let body = shared.metrics.render();
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(resp.as_bytes());
}

/// Decodes, routes, admits, and executes one request payload.
fn handle_payload(payload: &[u8], shared: &Shared, t_decode: Instant) -> Response {
    // Route on the raw bytes first: an unknown tenant is answered
    // without spending a full decode on it.
    let tenant = shared.registry.route(payload);
    let request = match Request::decode(payload) {
        Ok(r) => r,
        Err(reject) => {
            shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
            return Response::reject(reject);
        }
    };
    shared
        .metrics
        .decode_ns
        .observe(t_decode.elapsed().as_nanos() as u64);
    let Some(tenant) = tenant else {
        shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            status: WireStatus::UnknownTenant,
            message: format!("no tenant routes '{}'", request.address.tenant),
        };
    };
    let guard = match tenant.admission().try_admit(&request.address.class) {
        Ok(g) => g,
        Err(reason) => {
            match reason {
                crate::admission::ShedReason::Quota => shared
                    .metrics
                    .shed_quota_total
                    .fetch_add(1, Ordering::Relaxed),
                crate::admission::ShedReason::Concurrency => shared
                    .metrics
                    .shed_concurrency_total
                    .fetch_add(1, Ordering::Relaxed),
            };
            return Response::Error {
                status: WireStatus::Shed,
                message: format!("tenant '{}' over {} budget", tenant.name(), reason.label()),
            };
        }
    };
    shared
        .metrics
        .admitted_total
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    let t_exec = Instant::now();
    // vet: allow(hold-across-blocking) — the admission guard *is* the in-flight count: it must span the engine call so shedding sees true concurrency, and it serialises nothing (per-tenant cap)
    let response = execute(&request, tenant, shared);
    shared
        .metrics
        .exec_ns
        .observe(t_exec.elapsed().as_nanos() as u64);
    shared
        .metrics
        .total_ns
        .observe(t_decode.elapsed().as_nanos() as u64);
    shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    if matches!(response, Response::Error { .. }) {
        shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
    }
    drop(guard);
    response
}

fn query_status(e: &QueryError) -> WireStatus {
    match e {
        QueryError::ResourceExhausted { .. } => WireStatus::ResourceExhausted,
        _ => WireStatus::QueryError,
    }
}

fn execute(request: &Request, tenant: &Tenant, shared: &Shared) -> Response {
    let doc = &request.address.document;
    match &request.body {
        RequestBody::Point { path } => {
            let engine = tenant.engine();
            // vet: allow(hold-across-blocking) — Engine is Send + !Sync; per-tenant serialisation under the registry mutex is the documented execution model (one writer per tenant)
            match engine.run(&QueryRequest::path(doc, path)) {
                Ok(out) => Response::Count(out.nodes.map_or(0, |n| n.len() as u64)),
                Err(e) => Response::Error {
                    status: query_status(&e),
                    message: e.to_string(),
                },
            }
        }
        RequestBody::Twig { spec, path } => {
            let engine = tenant.engine();
            // vet: allow(hold-across-blocking) — same per-tenant serialisation contract as the Point arm
            match engine.run(&QueryRequest::virtual_path(doc, spec, path)) {
                Ok(out) => Response::Count(out.nodes.map_or(0, |n| n.len() as u64)),
                Err(e) => Response::Error {
                    status: query_status(&e),
                    message: e.to_string(),
                },
            }
        }
        RequestBody::Flwr { query } => {
            let engine = tenant.engine();
            // vet: allow(hold-across-blocking) — same per-tenant serialisation contract as the Point arm
            match engine.run(&QueryRequest::flwr(query.as_str())) {
                Ok(out) => Response::Text(out.to_string_compact()),
                Err(e) => Response::Error {
                    status: query_status(&e),
                    message: e.to_string(),
                },
            }
        }
        RequestBody::Edit { payload } => {
            let edit = match Edit::decode(payload) {
                Ok(e) => e,
                Err(e) => {
                    return Response::Error {
                        status: WireStatus::BadRequest,
                        message: format!("edit payload: {e}"),
                    }
                }
            };
            if edit.uri() != doc {
                return Response::Error {
                    status: WireStatus::BadRequest,
                    message: format!(
                        "edit targets '{}' but the address names '{doc}'",
                        edit.uri()
                    ),
                };
            }
            let mut engine = tenant.engine();
            // vet: allow(hold-across-blocking) — edits must serialise against queries on the same tenant; the WAL append inside apply() is the tenant's own durability, not shared I/O
            match engine.apply(edit) {
                Ok(receipt) => Response::Seq(receipt.seq),
                Err(e) => Response::Error {
                    status: query_status(&e),
                    message: e.to_string(),
                },
            }
        }
        RequestBody::Snapshot => {
            let engine = tenant.engine();
            Response::Text(snapshot_json(&engine))
        }
        RequestBody::Metrics => Response::Text(shared.metrics.render()),
    }
}

/// Renders the engine's composite snapshot as a small flat JSON object
/// (hand-rolled: the workspace carries no serde).
pub fn snapshot_json(engine: &Engine) -> String {
    let snap = engine.snapshot();
    let fields: [(&str, u64); 12] = [
        ("queries", snap.queries.queries),
        ("failures", snap.queries.failures),
        ("edits", snap.queries.edits),
        ("edit_failures", snap.queries.edit_failures),
        ("result_nodes", snap.queries.result_nodes),
        ("cache_hits", snap.cache.total_hits()),
        ("cache_misses", snap.cache.total_misses()),
        ("maintained", snap.cache.maintained),
        ("recomputed", snap.cache.recomputed),
        ("fallback_evictions", snap.cache.fallback_evictions),
        ("buffer_hits", snap.buffers.hits),
        ("buffer_misses", snap.buffers.misses),
    ];
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
    out
}
