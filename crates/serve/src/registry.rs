//! The tenant registry: maps the encoded address prefix of each tenant
//! to its engine and admission state.
//!
//! Routing never decodes the address. A tenant's routing key is its
//! encoded first segment ([`crate::wire::Address::routing_prefix`]);
//! because the segment encoding is length-pinned by its leading
//! ordinal, one tenant's key can never be a byte prefix of another's,
//! and a single SWAR `starts_with` per tenant resolves the route.

use std::sync::{Mutex, MutexGuard, PoisonError};

use vh_pbn::keys::starts_with_swar;
use vh_query::Engine;

use crate::admission::{Admission, TenantQuota};
use crate::wire::{Address, Reject};

/// One registered tenant.
pub struct Tenant {
    name: String,
    prefix: Vec<u8>,
    // `Engine` is `Send` but not `Sync` (storage counters are `Cell`s),
    // so cross-worker sharing goes through a mutex, exactly like the
    // vh-workload read/write scenario.
    engine: Mutex<Engine>,
    admission: Admission,
}

impl Tenant {
    /// The tenant's name (the address's first segment, decoded).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoded routing prefix.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// Locks the tenant engine (poison-tolerant: a panicked request
    /// must not take the tenant down with it).
    pub fn engine(&self) -> MutexGuard<'_, Engine> {
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The tenant's admission controller.
    pub fn admission(&self) -> &Admission {
        &self.admission
    }
}

/// All tenants one server instance routes between.
#[derive(Default)]
pub struct Registry {
    tenants: Vec<Tenant>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a tenant. Fails on a duplicate name (two tenants with
    /// the same name would share a routing prefix).
    pub fn add_tenant(
        &mut self,
        name: &str,
        engine: Engine,
        quota: TenantQuota,
    ) -> Result<(), Reject> {
        if self.tenants.iter().any(|t| t.name == name) {
            return Err(Reject::new(
                crate::wire::WireStatus::BadAddress,
                format!("tenant '{name}' is already registered"),
            ));
        }
        let prefix = Address::routing_prefix(name)?;
        self.tenants.push(Tenant {
            name: name.to_owned(),
            prefix,
            engine: Mutex::new(engine),
            admission: Admission::new(quota),
        });
        Ok(())
    }

    /// Routes raw request-payload bytes (which begin with the encoded
    /// address) to the owning tenant, without decoding anything.
    pub fn route(&self, payload: &[u8]) -> Option<&Tenant> {
        self.tenants
            .iter()
            .find(|t| starts_with_swar(payload, &t.prefix))
    }

    /// Looks a tenant up by name.
    pub fn tenant(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Registered tenant names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tenants.iter().map(|t| t.name.as_str())
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Request, RequestBody};

    fn request_bytes(tenant: &str) -> Vec<u8> {
        Request {
            address: Address::new(tenant, "books.xml", "query"),
            body: RequestBody::Point {
                path: "//title".into(),
            },
        }
        .encode()
        .map_err(|e| e.message)
        .unwrap_or_default()
    }

    #[test]
    fn routing_is_by_encoded_prefix_not_string_prefix() {
        let mut r = Registry::new();
        r.add_tenant("acme", Engine::new(), TenantQuota::default())
            .map_err(|e| e.message)
            .ok();
        r.add_tenant("acmeX", Engine::new(), TenantQuota::default())
            .map_err(|e| e.message)
            .ok();
        assert_eq!(r.len(), 2);
        // "acme" and "acmeX" are string-prefix related but route
        // unambiguously: the leading length ordinal differs.
        assert_eq!(
            r.route(&request_bytes("acme")).map(Tenant::name),
            Some("acme")
        );
        assert_eq!(
            r.route(&request_bytes("acmeX")).map(Tenant::name),
            Some("acmeX")
        );
        assert!(r.route(&request_bytes("nobody")).is_none());
    }

    #[test]
    fn duplicate_tenants_are_refused() {
        let mut r = Registry::new();
        assert!(r
            .add_tenant("acme", Engine::new(), TenantQuota::default())
            .is_ok());
        assert!(r
            .add_tenant("acme", Engine::new(), TenantQuota::default())
            .is_err());
    }
}
