//! Live `vh_serve_*` server metrics: lock-free counters and per-stage
//! latency histograms, rendered as a Prometheus text exposition on both
//! the `metrics` verb and the HTTP `/metrics` endpoint.

use std::sync::atomic::{AtomicU64, Ordering};

use vh_obs::prom::PromWriter;

/// Histogram bucket upper bounds in nanoseconds: 1µs … 1s, decades.
pub const LATENCY_BOUNDS_NS: [f64; 7] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

/// A fixed-bucket latency histogram over [`LATENCY_BOUNDS_NS`].
#[derive(Debug, Default)]
pub struct LatencyHisto {
    buckets: [AtomicU64; LATENCY_BOUNDS_NS.len() + 1],
    sum_ns: AtomicU64,
}

impl LatencyHisto {
    /// Records one observation.
    pub fn observe(&self, ns: u64) {
        let slot = LATENCY_BOUNDS_NS
            .iter()
            .position(|&b| (ns as f64) <= b)
            .unwrap_or(LATENCY_BOUNDS_NS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    fn snapshot(&self) -> ([u64; LATENCY_BOUNDS_NS.len() + 1], u64) {
        let mut counts = [0u64; LATENCY_BOUNDS_NS.len() + 1];
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        (counts, self.sum_ns.load(Ordering::Relaxed))
    }
}

/// The server's live counters. One instance is shared by every worker
/// thread; all fields are plain atomics, so scraping never blocks the
/// request path.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests admitted and not yet answered.
    pub in_flight: AtomicU64,
    /// Requests past admission control, cumulative.
    pub admitted_total: AtomicU64,
    /// Requests shed by the token bucket.
    pub shed_quota_total: AtomicU64,
    /// Requests shed by the concurrency cap.
    pub shed_concurrency_total: AtomicU64,
    /// Requests answered with a non-`ok`, non-`shed` status.
    pub errored_total: AtomicU64,
    /// Connections accepted, cumulative.
    pub connections_total: AtomicU64,
    /// Connections that died mid-frame (client crash, timeout, defect).
    pub dropped_connections_total: AtomicU64,
    /// Time from first payload byte to decoded request.
    pub decode_ns: LatencyHisto,
    /// Time inside the tenant engine (query, edit, snapshot).
    pub exec_ns: LatencyHisto,
    /// Time from decoded request to response bytes written.
    pub total_ns: LatencyHisto,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_quota_total.load(Ordering::Relaxed)
            + self.shed_concurrency_total.load(Ordering::Relaxed)
    }

    /// The `vh_serve_*` Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut w = PromWriter::new();
        w.gauge(
            "vh_serve_in_flight",
            "Requests admitted and not yet answered.",
        );
        w.sample(
            "vh_serve_in_flight",
            &[],
            self.in_flight.load(Ordering::Relaxed),
        );
        w.counter(
            "vh_serve_admitted_total",
            "Requests past admission control.",
        );
        w.sample(
            "vh_serve_admitted_total",
            &[],
            self.admitted_total.load(Ordering::Relaxed),
        );
        w.counter("vh_serve_shed_total", "Requests shed by admission control.");
        w.sample(
            "vh_serve_shed_total",
            &[("reason", "quota")],
            self.shed_quota_total.load(Ordering::Relaxed),
        );
        w.sample(
            "vh_serve_shed_total",
            &[("reason", "concurrency")],
            self.shed_concurrency_total.load(Ordering::Relaxed),
        );
        w.counter(
            "vh_serve_errored_total",
            "Requests answered with a non-ok, non-shed status.",
        );
        w.sample(
            "vh_serve_errored_total",
            &[],
            self.errored_total.load(Ordering::Relaxed),
        );
        w.counter("vh_serve_connections_total", "Connections accepted.");
        w.sample(
            "vh_serve_connections_total",
            &[],
            self.connections_total.load(Ordering::Relaxed),
        );
        w.counter(
            "vh_serve_dropped_connections_total",
            "Connections that died mid-frame.",
        );
        w.sample(
            "vh_serve_dropped_connections_total",
            &[],
            self.dropped_connections_total.load(Ordering::Relaxed),
        );
        w.histogram(
            "vh_serve_stage_ns",
            "Per-stage request latency in nanoseconds.",
        );
        for (stage, histo) in [
            ("decode", &self.decode_ns),
            ("exec", &self.exec_ns),
            ("total", &self.total_ns),
        ] {
            let (counts, sum) = histo.snapshot();
            w.histogram_samples(
                "vh_serve_stage_ns",
                &[("stage", stage)],
                &LATENCY_BOUNDS_NS,
                &counts,
                sum,
            );
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = LatencyHisto::default();
        h.observe(500); // ≤ 1e3
        h.observe(5_000); // ≤ 1e4
        h.observe(2_000_000_000); // overflow
        let (counts, sum) = h.snapshot();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[LATENCY_BOUNDS_NS.len()], 1);
        assert_eq!(sum, 500 + 5_000 + 2_000_000_000);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn the_exposition_carries_every_family() {
        let m = ServeMetrics::new();
        m.admitted_total.fetch_add(3, Ordering::Relaxed);
        m.shed_quota_total.fetch_add(1, Ordering::Relaxed);
        m.exec_ns.observe(1234);
        let text = m.render();
        for family in [
            "vh_serve_in_flight",
            "vh_serve_admitted_total",
            "vh_serve_shed_total",
            "vh_serve_errored_total",
            "vh_serve_connections_total",
            "vh_serve_dropped_connections_total",
            "vh_serve_stage_ns_bucket",
            "vh_serve_stage_ns_sum",
            "vh_serve_stage_ns_count",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(text.contains("vh_serve_shed_total{reason=\"quota\"} 1"));
        assert!(text.contains("stage=\"exec\""));
    }
}
