//! A small blocking VHRPC client over one persistent connection.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use vh_query::Edit;

use crate::wire::{
    frame, parse_header, verify_payload, Address, Request, RequestBody, Response, WireStatus,
    HEADER_LEN,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed at the socket level.
    Io(std::io::Error),
    /// The server answered with a non-`ok` status.
    Rejected {
        /// The wire status.
        status: WireStatus,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server's bytes did not parse as a protocol response.
    Protocol(String),
}

impl ClientError {
    /// The wire status of a rejection, if that is what this is.
    pub fn status(&self) -> Option<WireStatus> {
        match self {
            ClientError::Rejected { status, .. } => Some(*status),
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Rejected { status, message } => {
                write!(f, "server rejected [{}]: {message}", status.wire_name())
            }
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One tenant's view of a server, over one persistent connection.
pub struct Client {
    stream: TcpStream,
    tenant: String,
}

impl Client {
    /// Connects to `addr` as `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            tenant: tenant.into(),
        })
    }

    /// The tenant this client addresses.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn call(&mut self, document: &str, body: RequestBody) -> Result<Response, ClientError> {
        let request = Request {
            address: Address::new(
                self.tenant.clone(),
                document,
                match body {
                    RequestBody::Edit { .. } => "edit",
                    RequestBody::Snapshot | RequestBody::Metrics => "admin",
                    _ => "query",
                },
            ),
            body,
        };
        let payload = request
            .encode()
            .map_err(|r| ClientError::Protocol(r.message))?;
        self.stream.write_all(&frame(&payload))?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let (len, crc) = parse_header(&header).map_err(|d| ClientError::Protocol(d.to_string()))?;
        let mut resp_payload = vec![0u8; len];
        self.stream.read_exact(&mut resp_payload)?;
        verify_payload(crc, &resp_payload).map_err(|d| ClientError::Protocol(d.to_string()))?;
        match Response::decode(&resp_payload).map_err(|r| ClientError::Protocol(r.message))? {
            Response::Error { status, message } => Err(ClientError::Rejected { status, message }),
            ok => Ok(ok),
        }
    }

    /// XPath over the physical document; returns the node count.
    pub fn point(&mut self, document: &str, path: &str) -> Result<u64, ClientError> {
        match self.call(document, RequestBody::Point { path: path.into() })? {
            Response::Count(n) => Ok(n),
            other => Err(ClientError::Protocol(format!(
                "point answered {other:?}, want a count"
            ))),
        }
    }

    /// XPath over a virtual view; returns the node count.
    pub fn twig(&mut self, document: &str, spec: &str, path: &str) -> Result<u64, ClientError> {
        match self.call(
            document,
            RequestBody::Twig {
                spec: spec.into(),
                path: path.into(),
            },
        )? {
            Response::Count(n) => Ok(n),
            other => Err(ClientError::Protocol(format!(
                "twig answered {other:?}, want a count"
            ))),
        }
    }

    /// FLWR query; returns the compact-serialized result document.
    pub fn flwr(&mut self, document: &str, query: &str) -> Result<String, ClientError> {
        match self.call(
            document,
            RequestBody::Flwr {
                query: query.into(),
            },
        )? {
            Response::Text(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "flwr answered {other:?}, want text"
            ))),
        }
    }

    /// Applies one edit; returns its WAL sequence number.
    pub fn edit(&mut self, edit: &Edit) -> Result<u64, ClientError> {
        let document = edit.uri().to_owned();
        match self.call(
            &document,
            RequestBody::Edit {
                payload: edit.encode(),
            },
        )? {
            Response::Seq(n) => Ok(n),
            other => Err(ClientError::Protocol(format!(
                "edit answered {other:?}, want a seq"
            ))),
        }
    }

    /// The tenant engine's composite snapshot as JSON.
    pub fn snapshot(&mut self, document: &str) -> Result<String, ClientError> {
        match self.call(document, RequestBody::Snapshot)? {
            Response::Text(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "snapshot answered {other:?}, want text"
            ))),
        }
    }

    /// The server's live `vh_serve_*` metrics exposition.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call("", RequestBody::Metrics)? {
            Response::Text(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "metrics answered {other:?}, want text"
            ))),
        }
    }
}

/// Fetches the metrics exposition over plain HTTP (`GET /metrics`) —
/// what a stock Prometheus scraper does against the VHRPC port.
pub fn http_metrics(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no HTTP header/body separator in response",
        )),
    }
}
