//! Per-tenant admission control: a token bucket prices sustained load,
//! a concurrency cap bounds instantaneous load.
//!
//! Admission is the server's *graceful* overload response — a shed
//! request costs one bucket probe and one wire error frame
//! ([`crate::wire::WireStatus::Shed`]), never a dropped connection. It
//! is distinct from the engine's own [`vh_query::Limits`] guards, which
//! trip *inside* an admitted query and surface as
//! [`crate::wire::WireStatus::ResourceExhausted`]: admission protects
//! the server from too many requests, limits protect it from one
//! request that is too big.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Per-tenant admission knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantQuota {
    /// Token-bucket capacity: the burst a tenant may spend instantly.
    pub burst: f64,
    /// Bucket refill rate in tokens per second (sustained budget).
    pub per_sec: f64,
    /// Maximum requests in flight at once (all classes combined).
    pub max_concurrent: usize,
    /// Tokens one `edit`-class request costs (`query` costs 1,
    /// `admin` costs 0 — snapshots and metrics are never shed by the
    /// bucket, only by the concurrency cap).
    pub edit_cost: f64,
}

impl Default for TenantQuota {
    /// Generous defaults: a tenant under the default quota should never
    /// see a shed on a loopback benchmark — overload shedding is opt-in
    /// via tighter quotas.
    fn default() -> Self {
        TenantQuota {
            burst: 100_000.0,
            per_sec: 1_000_000.0,
            max_concurrent: 1024,
            edit_cost: 4.0,
        }
    }
}

impl TenantQuota {
    /// No admission control at all (bucket and cap effectively off).
    pub fn unlimited() -> Self {
        TenantQuota {
            burst: f64::MAX,
            per_sec: f64::MAX,
            max_concurrent: usize::MAX,
            edit_cost: 0.0,
        }
    }

    /// The token cost of one request of the given address class.
    pub fn cost_of(&self, class: &str) -> f64 {
        match class {
            "edit" => self.edit_cost,
            "admin" => 0.0,
            _ => 1.0,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket had fewer tokens than the request's cost.
    Quota,
    /// The tenant already has `max_concurrent` requests in flight.
    Concurrency,
}

impl ShedReason {
    /// Stable label used in metrics and shed messages.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::Quota => "quota",
            ShedReason::Concurrency => "concurrency",
        }
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// One tenant's admission state.
pub struct Admission {
    quota: TenantQuota,
    bucket: Mutex<Bucket>,
    in_flight: AtomicUsize,
}

impl std::fmt::Debug for Admission {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Admission")
            .field("quota", &self.quota)
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl Admission {
    /// A fresh controller with a full bucket.
    pub fn new(quota: TenantQuota) -> Admission {
        Admission {
            quota,
            bucket: Mutex::new(Bucket {
                tokens: quota.burst,
                last_refill: Instant::now(),
            }),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The configured quota.
    pub fn quota(&self) -> &TenantQuota {
        &self.quota
    }

    /// Requests currently admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Tries to admit one request of the given class. On success the
    /// returned guard holds the concurrency slot until dropped; tokens
    /// are spent either way (not refunded on failure downstream — a
    /// failed query still did the work).
    pub fn try_admit(&self, class: &str) -> Result<AdmitGuard<'_>, ShedReason> {
        // Concurrency first: a CAS loop bounded by the cap, so two racing
        // requests cannot both take the last slot.
        let mut cur = self.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.quota.max_concurrent {
                return Err(ShedReason::Concurrency);
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let guard = AdmitGuard {
            in_flight: &self.in_flight,
        };
        let cost = self.quota.cost_of(class);
        if cost > 0.0 {
            let mut bucket = self
                .bucket
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let now = Instant::now();
            let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
            bucket.tokens = (bucket.tokens + elapsed * self.quota.per_sec).min(self.quota.burst);
            bucket.last_refill = now;
            if bucket.tokens < cost {
                // Guard drops here, releasing the slot we just took.
                return Err(ShedReason::Quota);
            }
            bucket.tokens -= cost;
        }
        Ok(guard)
    }
}

/// RAII concurrency slot: dropping it re-opens the slot.
pub struct AdmitGuard<'a> {
    in_flight: &'a AtomicUsize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_admits_a_burst_without_shedding() {
        let a = Admission::new(TenantQuota::default());
        for _ in 0..1000 {
            let g = a.try_admit("query").map_err(|r| r.label());
            assert!(g.is_ok());
        }
        assert_eq!(a.in_flight(), 0, "guards released their slots");
    }

    #[test]
    fn an_empty_bucket_sheds_with_the_quota_reason() {
        let quota = TenantQuota {
            burst: 2.0,
            per_sec: 0.0, // never refills: deterministic
            max_concurrent: 16,
            edit_cost: 4.0,
        };
        let a = Admission::new(quota);
        assert!(a.try_admit("query").is_ok());
        assert!(a.try_admit("query").is_ok());
        assert_eq!(a.try_admit("query").err(), Some(ShedReason::Quota));
        // Admin requests bypass the bucket but not the slot count.
        assert!(a.try_admit("admin").is_ok());
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn edits_cost_more_than_queries() {
        let quota = TenantQuota {
            burst: 4.0,
            per_sec: 0.0,
            max_concurrent: 16,
            edit_cost: 4.0,
        };
        let a = Admission::new(quota);
        assert!(a.try_admit("edit").is_ok());
        assert_eq!(a.try_admit("query").err(), Some(ShedReason::Quota));
    }

    #[test]
    fn the_concurrency_cap_bounds_live_guards() {
        let quota = TenantQuota {
            max_concurrent: 2,
            ..TenantQuota::default()
        };
        let a = Admission::new(quota);
        let g1 = a.try_admit("query").map_err(|r| r.label());
        let g2 = a.try_admit("query").map_err(|r| r.label());
        assert!(g1.is_ok() && g2.is_ok());
        assert_eq!(a.try_admit("query").err(), Some(ShedReason::Concurrency));
        drop(g1);
        assert!(a.try_admit("query").is_ok(), "slot re-opens on drop");
        drop(g2);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn a_shed_quota_probe_releases_its_slot() {
        let quota = TenantQuota {
            burst: 0.0,
            per_sec: 0.0,
            max_concurrent: 1,
            edit_cost: 1.0,
        };
        let a = Admission::new(quota);
        assert_eq!(a.try_admit("query").err(), Some(ShedReason::Quota));
        // The failed probe must not leak its concurrency slot.
        assert_eq!(a.in_flight(), 0);
        assert!(a.try_admit("admin").is_ok(), "cap slot is free again");
    }
}
