//! Protocol fuzz suite: random byte mutations of valid VHRPC frames must
//! produce clean wire errors — never a panic, a hang, or a poisoned
//! server. Also pins the bounded-read guard: a header declaring a huge
//! payload is refused before any allocation happens.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use vh_query::Engine;
use vh_serve::wire::{frame, Address, Request, RequestBody, Response, WireStatus, HEADER_LEN};
use vh_serve::{Client, Registry, Server, ServerConfig, ServerHandle, TenantQuota};

const DOC: &str = "books.xml";
const XML: &str = "<data><book><title>X</title><author><name>C</name></author></book>\
                   <book><title>Y</title><author><name>D</name></author></book></data>";

fn start_server() -> ServerHandle {
    let mut engine = Engine::new();
    engine.register_xml(DOC, XML).expect("fixture parses");
    let mut registry = Registry::new();
    registry
        .add_tenant("acme", engine, TenantQuota::default())
        .expect("tenant registers");
    let config = ServerConfig {
        workers: 4,
        poll_interval: Duration::from_millis(2),
        stall_timeout: Duration::from_millis(50),
    };
    Server::bind("127.0.0.1:0", registry, config)
        .expect("binds loopback")
        .start()
        .expect("starts")
}

fn valid_request_frame() -> Vec<u8> {
    let payload = Request {
        address: Address::new("acme", DOC, "query"),
        body: RequestBody::Point {
            path: "//title".into(),
        },
    }
    .encode()
    .expect("encodes");
    frame(&payload)
}

/// Sends raw bytes, reads whatever comes back (bounded). Returns the
/// decoded response if the server answered with a full frame.
fn exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    stream.write_all(bytes).ok()?;
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).ok()?;
    let (len, crc) = vh_serve::wire::parse_header(&header).ok()?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).ok()?;
    vh_serve::wire::verify_payload(crc, &payload).ok()?;
    Response::decode(&payload).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte mutations anywhere in a valid frame: the server
    /// answers with a clean status (or legitimately waits for more
    /// bytes), and is still serviceable for the next well-formed
    /// request on a fresh connection.
    #[test]
    fn mutated_frames_get_clean_errors(pos in 0usize..1000, xor in 1u8..=255) {
        let handle = start_server();
        let addr = handle.local_addr();
        let mut bytes = valid_request_frame();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;

        // Three legal outcomes: an error response (magic/CRC/decode
        // defect), silence (the flip raised the declared length and the
        // server is waiting for bytes that never come — the stall
        // timeout reclaims the worker), or — only if the flip landed in
        // the CRC'd payload AND forged a matching checksum, which a
        // single flip cannot — a success. Panics and hangs are the
        // failures this property exists to rule out.
        let _ = exchange(addr, &bytes);

        // Serviceability is the real property: a fresh client still
        // gets the right answer.
        let mut client = Client::connect(addr, "acme").map_err(|e| TestCaseError::fail(e.to_string()))?;
        let n = client.point(DOC, "//title").map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(n, 2);
        handle.shutdown();
    }

    /// Arbitrary garbage payloads never panic the request decoder.
    #[test]
    fn request_decoder_total_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Request::decode(&bytes);
    }

    /// Arbitrary garbage payloads never panic the response decoder.
    #[test]
    fn response_decoder_total_on_garbage(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Response::decode(&bytes);
    }

    /// Truncations of a valid request payload decode to clean errors.
    #[test]
    fn truncated_requests_are_rejected_cleanly(cut in 0usize..200) {
        let payload = Request {
            address: Address::new("acme", DOC, "query"),
            body: RequestBody::Twig {
                spec: "title { author }".into(),
                path: "//author".into(),
            },
        }
        .encode()
        .map_err(|e| TestCaseError::fail(e.message))?;
        let cut = cut % payload.len();
        if cut < payload.len() {
            let r = Request::decode(&payload[..cut]);
            prop_assert!(r.is_err(), "truncation to {} bytes must not decode", cut);
        }
    }
}

#[test]
fn bounded_read_guard_refuses_oversize_declarations() {
    let handle = start_server();
    let addr = handle.local_addr();

    // A header declaring a 4 GiB payload: the server must answer
    // bad-frame from the header alone — it never tries to read (or
    // allocate) the declared body.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"VHRPC\x01");
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    match exchange(addr, &bytes) {
        Some(Response::Error { status, .. }) => assert_eq!(status, WireStatus::BadFrame),
        other => panic!("oversize declaration answered {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn corrupt_crc_closes_the_connection_but_not_the_server() {
    let handle = start_server();
    let addr = handle.local_addr();

    let mut bytes = valid_request_frame();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01; // payload flip: CRC now mismatches
    match exchange(addr, &bytes) {
        Some(Response::Error { status, .. }) => assert_eq!(status, WireStatus::BadFrame),
        other => panic!("corrupt payload answered {other:?}"),
    }

    // The server sheds the poisoned connection, not its own health.
    let mut client = Client::connect(addr, "acme").expect("reconnects");
    assert_eq!(client.point(DOC, "//title").expect("still serves"), 2);
    assert!(
        handle
            .metrics()
            .dropped_connections_total
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown();
}
