//! End-to-end server tests over real loopback sockets: multi-tenant
//! routing, admission shedding, engine-limit propagation, live metrics,
//! the snapshot verb, edits through the wire, and crash-mid-connection
//! serviceability.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use vh_query::{Edit, Engine, Limits};
use vh_serve::wire::{frame, Address, Request, RequestBody, WireStatus};
use vh_serve::{http_metrics, Client, Registry, Server, ServerConfig, ServerHandle, TenantQuota};
use vh_workload::{generate_books, BooksConfig};

const DOC: &str = "books.xml";
const SPEC: &str = "title { author { name } }";

fn books_engine(books: usize, seed: u64) -> Engine {
    let mut engine = Engine::new();
    engine.register(generate_books(
        DOC,
        &BooksConfig {
            books,
            max_authors: 3,
            rare_fraction: 0.1,
            seed,
        },
    ));
    engine
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        poll_interval: Duration::from_millis(2),
        stall_timeout: Duration::from_millis(100),
    }
}

fn two_tenant_server() -> ServerHandle {
    let mut registry = Registry::new();
    registry
        .add_tenant("acme", books_engine(12, 7), TenantQuota::default())
        .expect("acme registers");
    registry
        .add_tenant("boggle", books_engine(5, 9), TenantQuota::default())
        .expect("boggle registers");
    Server::bind("127.0.0.1:0", registry, config(6))
        .expect("binds")
        .start()
        .expect("starts")
}

#[test]
fn tenants_are_isolated_by_prefix_routing() {
    let handle = two_tenant_server();
    let addr = handle.local_addr();

    let mut acme = Client::connect(addr, "acme").expect("acme connects");
    let mut boggle = Client::connect(addr, "boggle").expect("boggle connects");
    let a = acme.point(DOC, "//book").expect("acme point");
    let b = boggle.point(DOC, "//book").expect("boggle point");
    assert_eq!(a, 12, "acme sees its own corpus");
    assert_eq!(b, 5, "boggle sees its own corpus");

    let mut nobody = Client::connect(addr, "nobody").expect("connects");
    let err = nobody.point(DOC, "//book").expect_err("unroutable");
    assert_eq!(err.status(), Some(WireStatus::UnknownTenant));
    handle.shutdown();
}

#[test]
fn the_full_verb_set_round_trips() {
    let handle = two_tenant_server();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr, "acme").expect("connects");

    let titles = client.point(DOC, "//title").expect("point");
    assert_eq!(titles, 12);
    let twig = client.twig(DOC, SPEC, "//title").expect("twig");
    assert_eq!(twig, titles, "virtual view projects every title");
    let flwr = client
        .flwr(
            DOC,
            r#"for $t in virtualDoc("books.xml", "title { author { name } }")//title
               return <t>{$t/text()}</t>"#,
        )
        .expect("flwr");
    assert!(flwr.starts_with("<results>"), "{flwr}");

    // An edit through the wire is durable and visible to later queries.
    let seq = client
        .edit(&Edit::InsertSubtree {
            uri: DOC.into(),
            parent: "1".into(),
            pos: 0,
            xml: "<book><title>Wired</title><author><name>W</name></author></book>".into(),
        })
        .expect("edit applies");
    assert!(seq >= 1, "WAL sequence is 1-based, got {seq}");
    assert_eq!(client.point(DOC, "//title").expect("re-point"), titles + 1);

    // Snapshot reflects the traffic this client just generated.
    let snap = client.snapshot(DOC).expect("snapshot");
    assert!(snap.contains("\"queries\":"), "{snap}");
    assert!(snap.contains("\"edits\":1"), "{snap}");

    // Metrics verb and HTTP scrape agree on the families.
    let wire_metrics = client.metrics().expect("metrics verb");
    assert!(wire_metrics.contains("vh_serve_admitted_total"));
    let scraped = http_metrics(addr).expect("HTTP scrape");
    assert!(scraped.contains("vh_serve_admitted_total"));
    assert!(scraped.contains("vh_serve_stage_ns_bucket"));
    handle.shutdown();
}

#[test]
fn overload_sheds_with_the_distinct_status_and_counts_it() {
    let mut registry = Registry::new();
    // Two-token bucket that never refills: the third query sheds.
    registry
        .add_tenant(
            "tight",
            books_engine(4, 3),
            TenantQuota {
                burst: 2.0,
                per_sec: 0.0,
                max_concurrent: 8,
                edit_cost: 4.0,
            },
        )
        .expect("registers");
    let handle = Server::bind("127.0.0.1:0", registry, config(2))
        .expect("binds")
        .start()
        .expect("starts");
    let mut client = Client::connect(handle.local_addr(), "tight").expect("connects");

    assert!(client.point(DOC, "//book").is_ok());
    assert!(client.point(DOC, "//book").is_ok());
    let err = client.point(DOC, "//book").expect_err("bucket is empty");
    assert_eq!(err.status(), Some(WireStatus::Shed));

    // Shed ≠ dropped: the connection survives, and admin verbs (cost 0)
    // still pass the bucket.
    let snap = client.snapshot(DOC).expect("admin bypasses the bucket");
    assert!(snap.contains("\"queries\":2"), "{snap}");
    assert_eq!(handle.metrics().shed_total(), 1);
    assert_eq!(
        handle
            .metrics()
            .dropped_connections_total
            .load(Ordering::Relaxed),
        0
    );
    handle.shutdown();
}

#[test]
fn engine_limits_surface_as_resource_exhausted_not_shed() {
    let mut engine = books_engine(40, 11);
    engine.set_limits(Limits {
        max_steps: 50, // any real query trips this
        ..Limits::default()
    });
    let mut registry = Registry::new();
    registry
        .add_tenant("acme", engine, TenantQuota::default())
        .expect("registers");
    let handle = Server::bind("127.0.0.1:0", registry, config(2))
        .expect("binds")
        .start()
        .expect("starts");
    let mut client = Client::connect(handle.local_addr(), "acme").expect("connects");

    let err = client.point(DOC, "//book//name").expect_err("limit trips");
    assert_eq!(err.status(), Some(WireStatus::ResourceExhausted));
    assert_eq!(handle.metrics().shed_total(), 0, "limits are not sheds");
    handle.shutdown();
}

#[test]
fn query_errors_keep_the_connection_alive() {
    let handle = two_tenant_server();
    let mut client = Client::connect(handle.local_addr(), "acme").expect("connects");

    let err = client
        .point("no-such.xml", "//a")
        .expect_err("unknown document");
    assert_eq!(err.status(), Some(WireStatus::QueryError));
    let err = client.point(DOC, "//[").expect_err("bad path");
    assert_eq!(err.status(), Some(WireStatus::QueryError));
    // Same connection still answers.
    assert_eq!(client.point(DOC, "//book").expect("recovers"), 12);
    handle.shutdown();
}

#[test]
fn a_client_crash_mid_frame_leaves_the_server_serviceable() {
    let handle = two_tenant_server();
    let addr = handle.local_addr();

    // Write a valid header promising 64 payload bytes, send 10, vanish.
    let payload = Request {
        address: Address::new("acme", DOC, "query"),
        body: RequestBody::Point {
            path: "//title/long/enough/path".into(),
        },
    }
    .encode()
    .expect("encodes");
    let framed = frame(&payload);
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .write_all(&framed[..framed.len() / 2])
            .expect("half a frame leaves");
        // Drop: RST/FIN mid-frame — the "client crashed" case.
    }

    // The worker reclaims itself (stall timeout or EOF) and the pool
    // keeps serving; the drop is visible in the metrics.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let dropped = handle
            .metrics()
            .dropped_connections_total
            .load(Ordering::Relaxed);
        if dropped >= 1 || std::time::Instant::now() > deadline {
            assert!(dropped >= 1, "mid-frame death must be counted as dropped");
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut client = Client::connect(addr, "acme").expect("fresh client connects");
    assert_eq!(client.point(DOC, "//book").expect("still serves"), 12);
    handle.shutdown();
}

#[test]
fn eight_clients_of_mixed_traffic_see_zero_drops_and_zero_sheds() {
    let mut registry = Registry::new();
    registry
        .add_tenant("acme", books_engine(24, 5), TenantQuota::default())
        .expect("registers");
    let handle = Server::bind("127.0.0.1:0", registry, config(10))
        .expect("binds")
        .start()
        .expect("starts");
    let addr = handle.local_addr();

    let mut threads = Vec::new();
    for c in 0..8 {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr, "acme")?;
            let mut answered = 0u64;
            for i in 0..25 {
                match (c + i) % 3 {
                    0 => {
                        client.point(DOC, "//title")?;
                    }
                    1 => {
                        client.twig(DOC, SPEC, "//author")?;
                    }
                    _ => {
                        client.edit(&Edit::InsertSubtree {
                            uri: DOC.into(),
                            parent: "1".into(),
                            pos: 0,
                            xml: format!(
                                "<book><title>T {c}.{i}</title>\
                                 <author><name>N</name></author></book>"
                            ),
                        })?;
                    }
                }
                answered += 1;
            }
            Ok::<u64, vh_serve::ClientError>(answered)
        }));
    }
    let mut total = 0;
    for t in threads {
        total += t
            .join()
            .expect("client thread ran")
            .expect("every request answered");
    }
    assert_eq!(total, 8 * 25);
    let m = handle.metrics();
    assert_eq!(m.shed_total(), 0, "default quota never sheds");
    assert_eq!(m.dropped_connections_total.load(Ordering::Relaxed), 0);
    assert_eq!(m.admitted_total.load(Ordering::Relaxed), 200);
    assert_eq!(m.in_flight.load(Ordering::Relaxed), 0);
    handle.shutdown();
}
