//! Deterministic interleaving stress tests for the concurrent primitives.
//!
//! These are the tests the `ci.sh --tsan` and `--miri` legs (and the
//! matching CI jobs) run under ThreadSanitizer and Miri: barrier-phased
//! rounds give every thread the same phase structure on every run, and
//! per-thread LCG streams make the op sequences deterministic, so a
//! reported race or UB is reproducible rather than a one-in-a-thousand
//! scheduling accident. Under Miri the round/op counts shrink — the
//! interpreter pays ~1000× per instruction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use vh_core::cache::ShardedLru;
use vh_core::exec::{par_count, par_filter, par_sort_by, ExecOptions};

const THREADS: usize = 4;
const ROUNDS: usize = if cfg!(miri) { 2 } else { 8 };
const OPS_PER_ROUND: usize = if cfg!(miri) { 48 } else { 512 };
const CAPACITY: usize = 64;
/// More distinct keys than capacity, so eviction runs constantly.
const KEY_SPACE: u64 = 96;

/// The pure function every cached value must agree with: whatever the
/// interleaving, a `get` may only ever observe `value_of(key)`.
fn value_of(key: u64) -> u64 {
    key.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635
}

/// A tiny LCG (MMIX constants): deterministic per-seed op streams
/// without pulling in `rand`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

#[test]
fn sharded_lru_holds_its_invariants_under_contention() {
    let cache: Arc<ShardedLru<u64, u64>> = Arc::new(ShardedLru::new(CAPACITY));
    let barrier = Arc::new(Barrier::new(THREADS));
    let lookups = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            let lookups = Arc::clone(&lookups);
            s.spawn(move || {
                let mut rng = Lcg(0xC0FF_EE00 + ((t as u64) << 32));
                for round in 0..ROUNDS {
                    barrier.wait();
                    for _ in 0..OPS_PER_ROUND {
                        let r = rng.next();
                        let key = r % KEY_SPACE;
                        match r % 7 {
                            0 | 1 => {
                                if let Some(v) = cache.get(&key) {
                                    assert_eq!(v, value_of(key), "stale or torn value");
                                }
                                lookups.fetch_add(1, Ordering::Relaxed);
                            }
                            2 | 3 => cache.insert(key, value_of(key)),
                            4 => {
                                let got: Result<u64, ()> =
                                    cache.get_or_try_insert(&key, || Ok(value_of(key)));
                                assert_eq!(got, Ok(value_of(key)));
                                lookups.fetch_add(1, Ordering::Relaxed);
                            }
                            5 => {
                                assert!(cache.len() <= CAPACITY, "capacity overrun");
                            }
                            _ => {
                                // Occasional invalidation sweep, so retain
                                // races against get/insert too.
                                if round % 2 == 1 {
                                    cache.retain(|k| k % 11 != t as u64);
                                }
                            }
                        }
                    }
                    // Quiescent point: every thread finished the round, so
                    // the capacity bound must hold exactly here as well.
                    barrier.wait();
                    assert!(cache.len() <= CAPACITY, "capacity overrun at round end");
                }
            });
        }
    });

    // Counter bookkeeping: every observed lookup is exactly one hit or
    // one miss — no lost updates, no double counting.
    let c = cache.counters();
    assert_eq!(
        c.hits + c.misses,
        lookups.load(Ordering::Relaxed),
        "hits + misses must equal the lookups the threads performed"
    );
    assert!(cache.len() <= CAPACITY);

    // Every surviving entry still maps to the pure function of its key.
    for key in 0..KEY_SPACE {
        if let Some(v) = cache.get(&key) {
            assert_eq!(v, value_of(key), "post-run value corruption at {key}");
        }
    }
}

#[test]
fn partition_merge_primitives_are_deterministic_under_concurrency() {
    // Several threads drive the *same* parallel primitives over shared
    // input at once; every result must equal the sequential answer.
    let size: u64 = if cfg!(miri) { 120 } else { 1500 };
    let items: Arc<Vec<u64>> = Arc::new((0..size).map(|i| (i * 2_654_435_761) % 100_003).collect());
    let expect_filter: Vec<u64> = items.iter().copied().filter(|x| x % 3 == 0).collect();
    let expect_count = items.iter().filter(|x| **x % 7 == 0).count();
    let mut expect_sorted: Vec<u64> = items.as_ref().clone();
    expect_sorted.sort_unstable();

    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let items = Arc::clone(&items);
            let barrier = Arc::clone(&barrier);
            let expect_filter = expect_filter.clone();
            let expect_sorted = expect_sorted.clone();
            s.spawn(move || {
                // Each thread picks a different inner thread count, so the
                // scoped-thread fan-out itself is exercised concurrently.
                let opts = ExecOptions {
                    threads: t + 1,
                    cache: true,
                    par_threshold: 1,
                };
                barrier.wait();
                for _ in 0..ROUNDS {
                    assert_eq!(
                        par_filter(&opts, &items, |x| x % 3 == 0),
                        expect_filter,
                        "par_filter diverged (threads={})",
                        t + 1
                    );
                    assert_eq!(par_count(&opts, &items, |x| *x % 7 == 0), expect_count);
                    let mut scratch = items.as_ref().clone();
                    par_sort_by(&opts, &mut scratch, |a, b| a.cmp(b));
                    assert_eq!(scratch, expect_sorted, "par_sort_by diverged");
                }
            });
        }
    });
}
