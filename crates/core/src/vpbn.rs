//! The vPBN number: a physical PBN number coupled with a level array.
//!
//! §5: "Virtual PBN maps each PBN number to a virtual PBN number (vPBN
//! number). A vPBN number is like a PBN number, but adds a level array."
//! The physical number is *never* changed; the level array is shared by all
//! nodes of a virtual type, so the borrowed view [`VPbnRef`] is what query
//! processing actually passes around (the paper: "the level arrays do not
//! have to be stored with the numbers since the level array can be stored
//! with each type").

use crate::levels::LevelArray;
use crate::vdg::VTypeId;
use std::fmt;
use vh_pbn::{Comp, Pbn};

/// An owned vPBN number (number + level array + virtual type).
///
/// Owned values are convenient for tests and APIs that outlive the borrow;
/// hot paths use [`VPbnRef`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VPbn {
    /// The physical PBN number (unchanged from the original document).
    pub pbn: Pbn,
    /// The level array of the node's virtual type.
    pub levels: LevelArray,
    /// The node's virtual type.
    pub vtype: VTypeId,
}

impl VPbn {
    /// Creates an owned vPBN number.
    pub fn new(pbn: Pbn, levels: LevelArray, vtype: VTypeId) -> Self {
        VPbn { pbn, levels, vtype }
    }

    /// Borrowed view for predicate evaluation.
    #[inline]
    pub fn as_ref(&self) -> VPbnRef<'_> {
        VPbnRef {
            n: self.pbn.components(),
            a: self.levels.levels(),
            vtype: self.vtype,
        }
    }

    /// The node's virtual level (`max(xa)`).
    #[inline]
    pub fn level(&self) -> u32 {
        self.levels.max_level()
    }
}

impl fmt::Debug for VPbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.pbn, self.levels)
    }
}

/// A borrowed vPBN number: the components of the physical number, the level
/// array of the node's type, and the virtual type itself.
#[derive(Clone, Copy, Debug)]
pub struct VPbnRef<'a> {
    /// PBN components (`xn` in the paper's notation). Minted components
    /// (renumbering-free inserts) compare like any other: the derived
    /// `Ord`/`Eq` on [`Comp`] is document order.
    pub n: &'a [Comp],
    /// Level array (`xa`). For case-2 types, one longer than `n`.
    pub a: &'a [u32],
    /// The virtual type of the node (for the type-level side conditions).
    pub vtype: VTypeId,
}

impl<'a> VPbnRef<'a> {
    /// Builds a borrowed vPBN from parts.
    #[inline]
    pub fn new(n: &'a Pbn, a: &'a LevelArray, vtype: VTypeId) -> Self {
        VPbnRef {
            n: n.components(),
            a: a.levels(),
            vtype,
        }
    }

    /// Builds a borrowed vPBN directly from component and level slices —
    /// the columnar form, where levels come from the flat level column of
    /// a [`crate::levels::LevelMap`].
    #[inline]
    pub fn from_slices(n: &'a [Comp], a: &'a [u32], vtype: VTypeId) -> Self {
        VPbnRef { n, a, vtype }
    }

    /// `max(xa)`: the virtual level of the node. Level arrays are
    /// non-decreasing, so the last entry is the maximum.
    #[inline]
    pub fn level(&self) -> u32 {
        // Invariant: level arrays come from `LevelMap::build`, which never
        // produces an empty array (see `LevelArray::max_level`).
        match self.a.last() {
            Some(&l) => l,
            None => unreachable!("level arrays are never empty"),
        }
    }

    /// Number of positions safely comparable with another vPBN: positions
    /// must exist in both the number and the array on both sides.
    #[inline]
    pub fn comparable_len(&self, other: &VPbnRef<'_>) -> usize {
        self.n
            .len()
            .min(self.a.len())
            .min(other.n.len())
            .min(other.a.len())
    }

    /// The number-level *compatibility* core shared by every vertical
    /// virtual predicate (§5): at every position present in both numbers,
    /// matching levels imply matching components. Two nodes standing in any
    /// virtual ancestor/descendant relationship are always compatible;
    /// nodes from divergent subtrees are not.
    #[inline]
    pub fn compatible_with(&self, other: &VPbnRef<'_>) -> bool {
        let m = self.comparable_len(other);
        for i in 0..m {
            if self.a[i] == other.a[i] && self.n[i] != other.n[i] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_pbn::pbn;

    #[test]
    fn owned_and_borrowed_views_agree() {
        let v = VPbn::new(
            pbn![1, 1, 2],
            LevelArray::new(vec![1, 1, 2]),
            VTypeId::from_index(3),
        );
        let r = v.as_ref();
        assert_eq!(r.n, pbn![1, 1, 2].components());
        assert_eq!(r.a, &[1, 1, 2]);
        assert_eq!(r.level(), 2);
        assert_eq!(v.level(), 2);
        assert_eq!(r.vtype, VTypeId::from_index(3));
    }

    #[test]
    fn comparable_len_respects_case2_arrays() {
        // Case-2 node: number 1.1.2 with array [1,1,2,3].
        let x = VPbn::new(
            pbn![1, 1, 2],
            LevelArray::new(vec![1, 1, 2, 3]),
            VTypeId::from_index(0),
        );
        let y = VPbn::new(
            pbn![1, 1, 2, 1],
            LevelArray::new(vec![1, 1, 2, 2]),
            VTypeId::from_index(1),
        );
        assert_eq!(x.as_ref().comparable_len(&y.as_ref()), 3);
    }
}
