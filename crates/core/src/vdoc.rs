//! [`VirtualDocument`]: navigating a document *as if* it had been
//! transformed, without moving a single node.
//!
//! This is the runtime counterpart of the `virtualDoc` function the paper
//! adds to XQuery: it bundles the original [`TypedDocument`], the compiled
//! [`VDataGuide`], the level-array map (Algorithm 1), and per-virtual-type
//! indexes (nodes of each virtual type, sorted by PBN number — the stand-in
//! for the DBMS type index of §4.3). All navigation is implemented with the
//! virtual predicates of [`crate::axes`], narrowed by the scan ranges of
//! [`crate::range`].

use crate::axes;
use crate::exec::{self, ExecOptions};
use crate::levels::{LevelArray, LevelMap};
use crate::order::v_cmp;
use crate::range::{related_prefix, PrefixTables};
use crate::vdg::{VDataGuide, VTypeId, VdgError};
use crate::vpbn::VPbnRef;
use std::sync::Arc;
use vh_dataguide::TypedDocument;
use vh_obs::{AxisCounters, RangeChoice};
use vh_pbn::keys;
use vh_xml::NodeId;

/// The per-virtual-type node index of one view: for each virtual type,
/// every node of that type in PBN (document) order — the stand-in for the
/// per-type index of a PBN-based DBMS (§4.3). A pure function of
/// `(document, vDataGuide)`, so engines cache it per view alongside the
/// other compiled artifacts instead of re-walking the document on every
/// query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeIndex {
    /// `by_vtype[vt.index()]` = nodes of virtual type `vt`, PBN-sorted.
    by_vtype: Vec<Vec<NodeId>>,
}

impl TypeIndex {
    /// Builds the index in one pass in document order: PBN assignment
    /// order is document order, so each per-type list comes out PBN-sorted
    /// for free.
    pub fn build(td: &TypedDocument, vdg: &VDataGuide) -> Self {
        let mut by_vtype: Vec<Vec<NodeId>> = vec![Vec::new(); vdg.len()];
        for (_, id) in td.pbn().in_document_order() {
            if let Some(vt) = vdg.vtype_of(td.type_of(*id)) {
                by_vtype[vt.index()].push(*id);
            }
        }
        TypeIndex { by_vtype }
    }

    /// The nodes of one virtual type, in PBN order.
    #[inline]
    pub fn nodes(&self, vt: VTypeId) -> &[NodeId] {
        &self.by_vtype[vt.index()]
    }

    /// Number of virtual types indexed.
    pub fn len(&self) -> usize {
        self.by_vtype.len()
    }

    /// True for the degenerate empty view.
    pub fn is_empty(&self) -> bool {
        self.by_vtype.is_empty()
    }

    /// Total nodes across all types (= visible nodes of the view).
    pub fn total_nodes(&self) -> usize {
        self.by_vtype.iter().map(Vec::len).sum()
    }

    /// Heap bytes of the index (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.by_vtype
            .iter()
            .map(|v| v.len() * std::mem::size_of::<NodeId>())
            .sum::<usize>()
            + self.by_vtype.len() * std::mem::size_of::<Vec<NodeId>>()
    }
}

/// Splice maintenance for the per-type index. Touched nodes are
/// reconciled against their *final* document state — moved nodes make the
/// journaled numbers non-monotone, so positions are recomputed from the
/// live assignment rather than replayed chronologically.
// oracle: rebuild_index_oracle
impl crate::cache::MaintainView for TypeIndex {
    fn maintain(
        &self,
        delta: &crate::cache::ViewDelta,
        ctx: &crate::cache::MaintainCtx<'_>,
    ) -> crate::cache::Maintained<Self> {
        use crate::cache::Maintained;
        if !ctx.vdg.unaffected_by(&delta.new_types, ctx.td.guide()) {
            return Maintained::MustRecompute;
        }
        if delta.touched.is_empty() {
            return Maintained::Unchanged;
        }
        // One entry per touched node: its final state (liveness, number,
        // type) is read from the document below, so it does not matter how
        // many times the batch moved it.
        let mut touched: Vec<usize> = delta.touched.iter().map(|t| t.id.index()).collect();
        touched.sort_unstable();
        touched.dedup();
        // Virtual types whose lists could have changed: every type a
        // touched node ever had in this batch maps to at most one of them.
        let mut affected: Vec<usize> = delta
            .touched
            .iter()
            .filter_map(|t| ctx.vdg.vtype_of(t.ty).map(|vt| vt.index()))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        if affected.is_empty() {
            return Maintained::Unchanged;
        }
        let mut by_vtype = self.by_vtype.clone();
        for &vi in &affected {
            by_vtype[vi].retain(|id| touched.binary_search(&id.index()).is_err());
        }
        let pbn = ctx.td.pbn();
        for &i in &touched {
            let id = NodeId::from_index(i);
            // Dead or detached nodes keep the empty number and stay out.
            let Some(num) = pbn.by_node_checked(id).filter(|p| !p.is_empty()) else {
                continue;
            };
            let Some(vt) = ctx.vdg.vtype_of(ctx.td.type_of(id)) else {
                continue;
            };
            let list = &mut by_vtype[vt.index()];
            let pos = list.partition_point(|&x| pbn.pbn_of(x) < num);
            list.insert(pos, id);
        }
        Maintained::Replaced(TypeIndex { by_vtype })
    }
}

/// A virtual view of a typed document under a vDataGuide.
#[derive(Clone, Debug)]
pub struct VirtualDocument<'a> {
    td: &'a TypedDocument,
    vdg: VDataGuide,
    levels: LevelMap,
    /// Per-type node lists, shared with the engine cache when the view was
    /// opened through one.
    index: Arc<TypeIndex>,
    /// How axis filters and sorts over this view execute.
    exec: ExecOptions,
    /// Precomputed scan-range prefixes; when absent, prefixes are derived
    /// per lookup with [`related_prefix`].
    tables: Option<Arc<PrefixTables>>,
    /// Axis-scan observability sink for traced queries. `None` (the
    /// default) keeps the hot path a single pointer test per scan.
    obs: Option<Arc<AxisCounters>>,
}

impl<'a> VirtualDocument<'a> {
    /// Compiles `spec` against the document's DataGuide and builds the
    /// virtual view. This is `virtualDoc(uri, spec)` minus the URI lookup.
    pub fn open(td: &'a TypedDocument, spec: &str) -> Result<Self, VdgError> {
        let vdg = VDataGuide::compile(spec, td.guide())?;
        Ok(Self::with_vdg(td, vdg))
    }

    /// Builds the virtual view from an already-expanded vDataGuide.
    pub fn with_vdg(td: &'a TypedDocument, vdg: VDataGuide) -> Self {
        let levels = LevelMap::build(&vdg, td.guide());
        Self::with_parts(td, vdg, levels)
    }

    /// Builds the virtual view from pre-compiled parts (used by engines
    /// that cache `(vDataGuide, level map)` pairs across queries), building
    /// the type index fresh.
    pub fn with_parts(td: &'a TypedDocument, vdg: VDataGuide, levels: LevelMap) -> Self {
        let index = Arc::new(TypeIndex::build(td, &vdg));
        Self::with_cached_parts(td, vdg, levels, index)
    }

    /// Builds the virtual view from pre-compiled parts *including* a
    /// cached [`TypeIndex`] — the fully warm open path, which touches no
    /// per-node state at all.
    pub fn with_cached_parts(
        td: &'a TypedDocument,
        vdg: VDataGuide,
        levels: LevelMap,
        index: Arc<TypeIndex>,
    ) -> Self {
        debug_assert_eq!(index.len(), vdg.len(), "index matches this view");
        VirtualDocument {
            td,
            vdg,
            levels,
            index,
            exec: ExecOptions::default(),
            tables: None,
            obs: None,
        }
    }

    /// Sets the execution options for axis filters and sorts over this
    /// view (single-threaded by default).
    pub fn set_exec(&mut self, opts: ExecOptions) {
        self.exec = opts;
    }

    /// The current execution options.
    #[inline]
    pub fn exec(&self) -> ExecOptions {
        self.exec
    }

    /// Installs precomputed scan-range prefix tables (usually served by
    /// [`crate::cache::ExecCache`]); navigation then skips the per-lookup
    /// level-array comparison of [`crate::range::related_prefix`].
    pub fn set_prefix_tables(&mut self, tables: Arc<PrefixTables>) {
        debug_assert_eq!(tables.len(), self.vdg.len(), "tables match this view");
        self.tables = Some(tables);
    }

    /// Builds and installs the prefix tables for this view directly (for
    /// callers without an engine cache).
    pub fn build_prefix_tables(&mut self) {
        let t = PrefixTables::build(&self.vdg, &self.levels, self.td.guide());
        self.tables = Some(Arc::new(t));
    }

    /// Attaches an axis-scan counter sink: every subsequent
    /// `collect_related` records its chosen byte range (type-index and
    /// arena slot brackets) and scan totals into it. Traced queries
    /// attach one; untraced navigation leaves it `None`.
    pub fn set_obs(&mut self, obs: Arc<AxisCounters>) {
        self.obs = Some(obs);
    }

    /// The underlying typed document.
    #[inline]
    pub fn typed(&self) -> &'a TypedDocument {
        self.td
    }

    /// The compiled vDataGuide.
    #[inline]
    pub fn vdg(&self) -> &VDataGuide {
        &self.vdg
    }

    /// The level-array map.
    #[inline]
    pub fn levels(&self) -> &LevelMap {
        &self.levels
    }

    /// The virtual type of a node, or `None` if the node is not part of
    /// the virtual hierarchy.
    #[inline]
    pub fn vtype_of(&self, id: NodeId) -> Option<VTypeId> {
        self.vdg.vtype_of(self.td.type_of(id))
    }

    /// The vPBN number of a node (physical number + type level array).
    /// Both sides are borrowed from columns: components from the PBN
    /// assignment, levels from the flat level column.
    pub fn vpbn_of(&self, id: NodeId) -> Option<VPbnRef<'_>> {
        let vt = self.vtype_of(id)?;
        Some(VPbnRef::from_slices(
            self.td.pbn().pbn_of(id).components(),
            self.levels.levels_of(vt),
            vt,
        ))
    }

    /// Invariant: only called on nodes the view itself produced (visible
    /// candidates of a virtual type), all of which carry a vPBN.
    fn vpbn_visible(&self, id: NodeId) -> VPbnRef<'_> {
        match self.vpbn_of(id) {
            Some(v) => v,
            None => unreachable!("visible node has a vPBN"),
        }
    }

    /// The level array of a virtual type, materialized from the flat level
    /// column (borrow via [`Self::levels`] + `levels_of` on hot paths).
    #[inline]
    pub fn array(&self, vt: VTypeId) -> LevelArray {
        self.levels.array(vt)
    }

    /// The per-type node index of this view.
    #[inline]
    pub fn type_index(&self) -> &Arc<TypeIndex> {
        &self.index
    }

    /// All nodes of a virtual type, in PBN (original document) order.
    #[inline]
    pub fn nodes_of_vtype(&self, vt: VTypeId) -> &[NodeId] {
        self.index.nodes(vt)
    }

    /// Total number of nodes visible in the virtual hierarchy.
    pub fn visible_nodes(&self) -> usize {
        self.index.total_nodes()
    }

    /// The virtual roots: instances of the root virtual types, in virtual
    /// document order.
    pub fn roots(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .vdg
            .roots()
            .iter()
            .flat_map(|&rt| self.index.nodes(rt).iter().copied())
            .collect();
        self.sort_virtual(&mut out);
        out
    }

    /// The virtual children of `x`, in virtual document order.
    pub fn children(&self, x: NodeId) -> Vec<NodeId> {
        let Some(xv) = self.vpbn_of(x) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &ct in self.vdg.children(xv.vtype) {
            self.collect_related(x, &xv, ct, &mut out, |v, cand, ctx| {
                axes::v_child(v, cand, ctx)
            });
        }
        self.sort_virtual(&mut out);
        out
    }

    /// The virtual parent of `x`, if any.
    pub fn parent(&self, x: NodeId) -> Option<NodeId> {
        let xv = self.vpbn_of(x)?;
        let pt = self.vdg.guide().ty(xv.vtype).parent()?;
        let mut out = Vec::new();
        self.collect_related(x, &xv, pt, &mut out, |v, cand, ctx| {
            axes::v_parent(v, cand, ctx)
        });
        // The virtual tree gives every node at most one parent per parent
        // instance match; joins can produce several (a node appearing under
        // multiple parents) — return the first in document order.
        out.into_iter()
            .min_by(|&a, &b| v_cmp(&self.vdg, &self.vpbn_visible(a), &self.vpbn_visible(b)))
    }

    /// The virtual descendants of `x` with virtual type `vt`, in virtual
    /// document order. Uses the type index with a derived scan range.
    pub fn descendants_of_type(&self, x: NodeId, vt: VTypeId) -> Vec<NodeId> {
        let Some(xv) = self.vpbn_of(x) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.collect_related(x, &xv, vt, &mut out, |v, cand, ctx| {
            axes::v_descendant(v, cand, ctx)
        });
        self.sort_virtual(&mut out);
        out
    }

    /// Ablation baseline (experiment A1): like [`Self::descendants_of_type`]
    /// but testing **every** instance of the type instead of deriving a PBN
    /// scan range from the level arrays.
    pub fn descendants_of_type_filter(&self, x: NodeId, vt: VTypeId) -> Vec<NodeId> {
        let Some(xv) = self.vpbn_of(x) else {
            return Vec::new();
        };
        let ta = self.levels.levels_of(vt);
        let mut out = exec::par_filter(&self.exec, self.index.nodes(vt), |&cand| {
            let cv = VPbnRef::from_slices(self.td.pbn().pbn_of(cand).components(), ta, vt);
            axes::v_descendant(&self.vdg, &cv, &xv)
        });
        self.sort_virtual(&mut out);
        out
    }

    /// All virtual descendants of `x` (any type), in virtual document order.
    pub fn descendants(&self, x: NodeId) -> Vec<NodeId> {
        let Some(xv) = self.vpbn_of(x) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for vt in (0..self.vdg.len()).map(VTypeId::from_index) {
            if vh_dataguide::axes::descendant(self.vdg.guide(), vt, xv.vtype) {
                self.collect_related(x, &xv, vt, &mut out, |v, cand, ctx| {
                    axes::v_descendant(v, cand, ctx)
                });
            }
        }
        self.sort_virtual(&mut out);
        out
    }

    /// The virtual ancestors of `x`, nearest first.
    pub fn ancestors(&self, x: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(x);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent(p);
        }
        out
    }

    /// §5.1: the 1-based sibling ordinal of `x` among its virtual siblings,
    /// computed dynamically "by queueing the siblings".
    pub fn sibling_ordinal(&self, x: NodeId) -> Option<usize> {
        let siblings = match self.parent(x) {
            Some(p) => self.children(p),
            None => self.roots(),
        };
        siblings.iter().position(|&s| s == x).map(|i| i + 1)
    }

    /// Checks a virtual axis between two visible nodes.
    pub fn check<F>(&self, pred: F, x: NodeId, y: NodeId) -> bool
    where
        F: Fn(&VDataGuide, &VPbnRef<'_>, &VPbnRef<'_>) -> bool,
    {
        match (self.vpbn_of(x), self.vpbn_of(y)) {
            (Some(xv), Some(yv)) => pred(&self.vdg, &xv, &yv),
            _ => false,
        }
    }

    /// Preorder (virtual document order) traversal of the whole virtual
    /// forest.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.visible_nodes());
        let mut stack: Vec<NodeId> = self.roots();
        stack.reverse();
        while let Some(id) = stack.pop() {
            out.push(id);
            let mut kids = self.children(id);
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    // ----- internals ----------------------------------------------------

    /// Collects nodes of type `vt` related to the context node `x` (whose
    /// vPBN is `xv`) under `pred(candidate, context)`, scanning only the
    /// byte range of the type index pinned by the compatibility prefix:
    /// with `m` pinned components, a candidate's encoded key must extend
    /// the first `m` components of the context's key, so the candidates
    /// form one contiguous slice of the PBN-sorted index, found by two
    /// binary searches on borrowed keys — no numbers are decoded and no
    /// bound numbers allocated (`memcmp` is document order, `starts_with`
    /// is the prefix test).
    ///
    /// When the prefix subsumes every compatibility constraint (`exact`),
    /// the §5 predicate is a *constant* over the slice: every in-range
    /// candidate extends the pinned prefix (hence is compatible with the
    /// context), and the remaining level/guide-type conditions depend only
    /// on the `(context type, target type)` pair. It is therefore evaluated
    /// once and the slice copied wholesale. Otherwise the per-candidate
    /// filter is partitioned across threads when the execution options
    /// allow; chunk results concatenate in index (PBN) order, so the output
    /// is identical to the sequential scan either way.
    fn collect_related<F>(
        &self,
        x: NodeId,
        xv: &VPbnRef<'_>,
        vt: VTypeId,
        out: &mut Vec<NodeId>,
        pred: F,
    ) where
        F: Fn(&VDataGuide, &VPbnRef<'_>, &VPbnRef<'_>) -> bool + Sync,
    {
        let ta = self.levels.levels_of(vt);
        let (m, exact) = match &self.tables {
            Some(t) => t.prefix(xv.vtype, vt),
            None => related_prefix(xv, ta),
        };
        let xkey = self.td.pbn().key_of(x);
        let prefix = &xkey[..keys::component_boundary(xkey, m)];
        let list = self.index.nodes(vt);
        let (start, end) = self.index_range(list, prefix);
        let candidates = &list[start..end];
        if let Some(obs) = &self.obs {
            self.record_scan(obs, xv.vtype, vt, prefix, m, exact, start, end);
        }
        if exact {
            if let Some(&first) = candidates.first() {
                let cv = VPbnRef::from_slices(self.td.pbn().pbn_of(first).components(), ta, vt);
                if pred(&self.vdg, &cv, xv) {
                    out.extend_from_slice(candidates);
                }
            }
            return;
        }
        out.extend(exec::par_filter(&self.exec, candidates, |&cand| {
            let cv = VPbnRef::from_slices(self.td.pbn().pbn_of(cand).components(), ta, vt);
            pred(&self.vdg, &cv, xv)
        }));
    }

    /// Publishes one `collect_related` range selection to the attached
    /// counter sink: aggregate totals always, plus a detail
    /// [`RangeChoice`] (virtual-path names, type-index bracket, global
    /// arena slot bracket) while the sink still wants them. Out of the
    /// hot path — only traced queries reach it.
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn record_scan(
        &self,
        obs: &AxisCounters,
        ctx: VTypeId,
        vt: VTypeId,
        prefix: &[u8],
        pinned: usize,
        exact: bool,
        start: usize,
        end: usize,
    ) {
        let slots = (end - start) as u64;
        // Exact regions evaluate the §5 predicate once for the whole
        // slice; otherwise once per candidate.
        let filters = if exact { slots.min(1) } else { slots };
        obs.record_scan(slots, exact, filters);
        if obs.wants_range() {
            let (arena_start, arena_end) = self.td.pbn().arena().slot_window(prefix);
            obs.push_range(RangeChoice {
                context: self.vdg.guide().path_string(ctx),
                target: self.vdg.guide().path_string(vt),
                pinned: pinned as u32,
                exact,
                index_start: start as u64,
                index_end: end as u64,
                arena_start,
                arena_end,
            });
        }
    }

    /// Binary-searches a PBN-sorted node list for the sub-range of nodes
    /// whose encoded keys extend `prefix`: keys sort in document order
    /// under `memcmp`, so the extensions of a prefix are exactly the
    /// interval `[prefix, prefix_succ(prefix))`. The empty prefix selects
    /// the whole list.
    fn index_range(&self, list: &[NodeId], prefix: &[u8]) -> (usize, usize) {
        let pbn = self.td.pbn();
        let start = exec::partition_point_branchless(list, |&id| pbn.key_of(id) < prefix);
        let end = exec::partition_point_branchless(list, |&id| {
            keys::before_subtree_end(prefix, pbn.key_of(id))
        });
        (start, end)
    }

    /// Sorts node ids into virtual document order. Safe to parallelize:
    /// `v_cmp` never returns `Equal` for distinct nodes (equal numbers of
    /// equal types are the same node), so chunk-sort + merge reproduces
    /// the sequential order exactly.
    fn sort_virtual(&self, ids: &mut [NodeId]) {
        exec::par_sort_by(&self.exec, ids, |&a, &b| {
            v_cmp(&self.vdg, &self.vpbn_visible(a), &self.vpbn_visible(b))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    fn sam() -> TypedDocument {
        TypedDocument::analyze(paper_figure2())
    }

    /// Labels a node for readable assertions: name or text content.
    fn label(td: &TypedDocument, id: NodeId) -> String {
        match td.doc().kind(id) {
            vh_xml::NodeKind::Element { name, .. } => name.clone(),
            vh_xml::NodeKind::Text(t) => format!("'{t}'"),
            other => format!("{other:?}"),
        }
    }

    #[test]
    fn roots_are_the_titles_in_order() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let roots = vd.roots();
        assert_eq!(roots.len(), 2);
        assert_eq!(td.doc().string_value(roots[0]), "X");
        assert_eq!(td.doc().string_value(roots[1]), "Y");
    }

    #[test]
    fn children_of_title_are_text_then_author() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let title1 = vd.roots()[0];
        let kids = vd.children(title1);
        let labels: Vec<String> = kids.iter().map(|&k| label(&td, k)).collect();
        assert_eq!(labels, vec!["'X'", "author"]);
        // The author is book 1's author, not book 2's.
        let author = kids[1];
        assert_eq!(td.doc().string_value(author), "C");
    }

    #[test]
    fn parent_inverts_children() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        for root in vd.roots() {
            assert_eq!(vd.parent(root), None);
            for c in vd.children(root) {
                assert_eq!(vd.parent(c), Some(root), "child {}", label(&td, c));
            }
        }
    }

    #[test]
    fn preorder_is_figure3_order() {
        // Figure 3: title1 (X, author1(name C)), title2 (Y, author2(name D)).
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let order: Vec<String> = vd.preorder().iter().map(|&n| label(&td, n)).collect();
        assert_eq!(
            order,
            vec![
                "title", "'X'", "author", "name", "'C'", //
                "title", "'Y'", "author", "name", "'D'",
            ]
        );
        assert_eq!(vd.visible_nodes(), 10);
    }

    #[test]
    fn descendants_of_type_scans_one_book() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let title1 = vd.roots()[0];
        let names = vd.descendants_of_type(title1, name_vt);
        assert_eq!(names.len(), 1);
        assert_eq!(td.doc().string_value(names[0]), "C");
    }

    #[test]
    fn inversion_navigation() {
        // title { name { author } }: author hangs below name.
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { name { author } }").unwrap();
        let title1 = vd.roots()[0];
        let kids = vd.children(title1);
        // title's children: its text X and name.
        let labels: Vec<String> = kids.iter().map(|&k| label(&td, k)).collect();
        assert_eq!(labels, vec!["'X'", "name"]);
        let name1 = kids[1];
        let name_kids = vd.children(name1);
        let labels: Vec<String> = name_kids.iter().map(|&k| label(&td, k)).collect();
        // name keeps its text and gains author as a virtual child; the
        // prefix-holder author (1.1.2 vs text 1.1.2.1.1) sorts first.
        assert_eq!(labels, vec!["author", "'C'"]);
        let author1 = name_kids[0];
        assert_eq!(vd.parent(author1), Some(name1));
        // author has no children in this virtual hierarchy (its original
        // child, name, is re-rooted above it).
        assert!(vd.children(author1).is_empty());
    }

    #[test]
    fn ancestors_climb_to_the_root() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let name_vt = vd
            .vdg()
            .guide()
            .lookup_path(&["title", "author", "name"])
            .unwrap();
        let title1 = vd.roots()[0];
        let name1 = vd.descendants_of_type(title1, name_vt)[0];
        let anc: Vec<String> = vd.ancestors(name1).iter().map(|&a| label(&td, a)).collect();
        assert_eq!(anc, vec!["author", "title"]);
    }

    #[test]
    fn sibling_ordinals_computed_dynamically() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let roots = vd.roots();
        assert_eq!(vd.sibling_ordinal(roots[0]), Some(1));
        assert_eq!(vd.sibling_ordinal(roots[1]), Some(2));
        let kids = vd.children(roots[0]);
        assert_eq!(vd.sibling_ordinal(kids[0]), Some(1));
        assert_eq!(vd.sibling_ordinal(kids[1]), Some(2));
    }

    #[test]
    fn invisible_nodes_have_no_virtual_presence() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        // publisher is not part of the virtual hierarchy.
        let root = td.doc().root().unwrap();
        let book1 = td.doc().children(root)[0];
        let publisher = td.doc().children(book1)[2];
        assert_eq!(vd.vtype_of(publisher), None);
        assert!(vd.vpbn_of(publisher).is_none());
        assert!(vd.children(publisher).is_empty());
        assert_eq!(vd.parent(publisher), None);
    }

    #[test]
    fn identity_view_mirrors_the_document() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "data { ** }").unwrap();
        assert_eq!(vd.visible_nodes(), td.doc().len());
        let phys: Vec<NodeId> = td.doc().preorder().collect();
        assert_eq!(vd.preorder(), phys);
        for id in td.doc().preorder() {
            assert_eq!(
                vd.parent(id),
                td.doc().parent(id),
                "parent of {}",
                label(&td, id)
            );
            assert_eq!(
                vd.children(id),
                td.doc().children(id).to_vec(),
                "children of {}",
                label(&td, id)
            );
        }
    }

    #[test]
    fn parallel_and_table_paths_match_the_default_exactly() {
        let td = sam();
        for spec in ["title { author { name } }", "title { name { author } }"] {
            let base = VirtualDocument::open(&td, spec).unwrap();
            for threads in [2, 3, 8] {
                let mut vd = VirtualDocument::open(&td, spec).unwrap();
                vd.set_exec(ExecOptions {
                    threads,
                    cache: true,
                    par_threshold: 1, // force parallel paths on this tiny doc
                });
                vd.build_prefix_tables();
                assert_eq!(vd.exec().threads, threads);
                assert_eq!(vd.roots(), base.roots(), "{spec} t={threads}");
                assert_eq!(vd.preorder(), base.preorder(), "{spec} t={threads}");
                for id in base.preorder() {
                    assert_eq!(vd.children(id), base.children(id));
                    assert_eq!(vd.parent(id), base.parent(id));
                    assert_eq!(vd.ancestors(id), base.ancestors(id));
                }
                let name_vt = vd.vdg().guide().type_ids().last().unwrap();
                for id in base.preorder() {
                    assert_eq!(
                        vd.descendants_of_type(id, name_vt),
                        base.descendants_of_type(id, name_vt)
                    );
                    assert_eq!(
                        vd.descendants_of_type_filter(id, name_vt),
                        base.descendants_of_type_filter(id, name_vt)
                    );
                }
            }
        }
    }

    #[test]
    fn axis_check_helper() {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }").unwrap();
        let title1 = vd.roots()[0];
        let author1 = vd.children(title1)[1];
        assert!(vd.check(crate::axes::v_child, author1, title1));
        assert!(vd.check(crate::axes::v_parent, title1, author1));
        assert!(!vd.check(crate::axes::v_child, title1, author1));
    }

    /// Recompute oracle for [`TypeIndex::maintain`]: a from-scratch
    /// rebuild over the final document, which every kept or spliced
    /// verdict must match byte-for-byte.
    fn rebuild_index_oracle(td: &TypedDocument, vdg: &VDataGuide) -> TypeIndex {
        TypeIndex::build(td, vdg)
    }

    /// Drains the document's delta, routes it through `maintain`, and
    /// asserts the survivor equals the rebuild oracle. Returns the next
    /// index plus whether the splice path (not a recompute) was taken.
    fn reconcile(idx: &TypeIndex, td: &mut TypedDocument, vdg: &VDataGuide) -> (TypeIndex, bool) {
        use crate::cache::{MaintainCtx, MaintainView, Maintained, ViewDelta};
        let d = td.take_delta();
        let vd = ViewDelta {
            new_types: d.new_types,
            touched: d.touched,
            ..ViewDelta::default()
        };
        let ctx = MaintainCtx { td, vdg };
        let (next, spliced) = match idx.maintain(&vd, &ctx) {
            Maintained::Unchanged => (idx.clone(), true),
            Maintained::Replaced(n) => (n, true),
            Maintained::MustRecompute => (TypeIndex::build(td, vdg), false),
        };
        assert_eq!(next, rebuild_index_oracle(td, vdg));
        (next, spliced)
    }

    #[test]
    fn maintained_type_indexes_match_the_rebuild_oracle() {
        let mut td = TypedDocument::analyze(paper_figure2());
        let vdg = VDataGuide::compile("title { author { name } }", td.guide()).unwrap();
        let mut idx = TypeIndex::build(&td, &vdg);
        fn of(td: &TypedDocument, path: &[&str]) -> Vec<NodeId> {
            td.nodes_of_type(td.guide().lookup_path(path).unwrap())
        }

        // Insert a whole book of already-interned types: pure splice.
        let data = td.doc().root().unwrap();
        td.insert_fragment(
            data,
            1,
            "<book><title>Z</title><author><name>E</name></author>\
             <publisher><location>L</location></publisher></book>",
        )
        .unwrap();
        let (next, spliced) = reconcile(&idx, &mut td, &vdg);
        assert!(spliced, "existing-type insert must splice");
        idx = next;

        // Move the last book's title into the first book: the journaled
        // numbers are non-monotone, only the final position counts.
        let titles = of(&td, &["data", "book", "title"]);
        let books = of(&td, &["data", "book"]);
        td.move_subtree(*titles.last().unwrap(), books[0], 0)
            .unwrap();
        let (next, spliced) = reconcile(&idx, &mut td, &vdg);
        assert!(spliced, "moves must splice");
        idx = next;

        // Delete an author subtree: retained-out, never re-inserted.
        let authors = of(&td, &["data", "book", "author"]);
        td.delete_subtree(authors[0]).unwrap();
        let (next, spliced) = reconcile(&idx, &mut td, &vdg);
        assert!(spliced, "deletes must splice");
        idx = next;

        // A new type under a visible parent forces the recompute path.
        let titles = of(&td, &["data", "book", "title"]);
        td.insert_fragment(titles[0], 0, "<subtitle>s</subtitle>")
            .unwrap();
        let (next, spliced) = reconcile(&idx, &mut td, &vdg);
        assert!(!spliced, "visible-parent new type must recompute");
        idx = next;
        assert!(idx.total_nodes() > 0);
    }
}
