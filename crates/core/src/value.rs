//! §6: computing transformed (virtual) node values.
//!
//! The value of a node is its serialized subtree. In a PBN-based DBMS the
//! source document is stored "as a long string" and a **value index** maps
//! each number to the byte range of its subtree, so the value of an
//! *untransformed* node is a single contiguous read. After a virtual
//! transformation, a node's value must be *stitched*: constructed start/end
//! tags around the recursively computed values of its **virtual** children
//! — except that any child heading an *identity region* (its subtree is
//! unreshaped, [`crate::vdg::VDataGuide::is_identity_below`]) contributes
//! its stored byte range verbatim, in one copy.
//!
//! The [`RawValueSource`] trait abstracts the store: `vh-storage` implements
//! it with its page-backed value index (counting simulated I/O); the plain
//! [`TypedDocument`] implementation serializes from the in-memory tree and
//! serves as the reference. Stored reads can fail (the storage layer
//! verifies checksums and retries transient faults), so the source is
//! fallible: a failed read aborts the stitch with a [`ValueError`] whose
//! source chain carries the storage fault. Experiment F5 measures stitching
//! against [`virtual_value_constructed`], the element-by-element baseline
//! that a rewritten view query would effectively execute (§2's Figure 5
//! argument).

use crate::vdoc::VirtualDocument;
use std::fmt;
use vh_dataguide::TypedDocument;
use vh_xml::{serialize, NodeId, NodeKind};

/// A node value could not be retrieved from its backing source.
///
/// Wraps the source-specific fault (for `vh-storage`, a `StorageError`) so
/// callers can walk the chain via [`std::error::Error::source`].
#[derive(Debug)]
pub struct ValueError(Box<dyn std::error::Error + Send + Sync>);

impl ValueError {
    /// Wraps a source-specific retrieval fault.
    pub fn new(source: impl std::error::Error + Send + Sync + 'static) -> Self {
        ValueError(Box::new(source))
    }

    /// The wrapped fault.
    pub fn inner(&self) -> &(dyn std::error::Error + Send + Sync + 'static) {
        self.0.as_ref()
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stored value unavailable: {}", self.0)
    }
}

impl std::error::Error for ValueError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.0.as_ref())
    }
}

/// Source of stored (original) node values.
pub trait RawValueSource {
    /// Appends the stored serialized value of `node`'s **original** subtree
    /// to `out`. Fails when the backing store cannot deliver verified bytes.
    fn append_raw_value(&self, node: NodeId, out: &mut String) -> Result<(), ValueError>;
}

/// Reference implementation: serialize from the in-memory tree (infallible).
impl RawValueSource for TypedDocument {
    fn append_raw_value(&self, node: NodeId, out: &mut String) -> Result<(), ValueError> {
        serialize::write_compact_into(self.doc(), node, out);
        Ok(())
    }
}

/// Computes the virtual value of `node`, using the identity-region fast
/// path. Statistics about the stitching are returned for the experiments.
pub fn virtual_value(
    vdoc: &VirtualDocument<'_>,
    source: &impl RawValueSource,
    node: NodeId,
) -> Result<(String, StitchStats), ValueError> {
    let mut out = String::new();
    let mut stats = StitchStats::default();
    append_virtual_value(vdoc, source, node, true, &mut out, &mut stats)?;
    Ok((out, stats))
}

/// Computes the virtual value without the fast path: every element is
/// constructed tag-by-tag (the materializing baseline of Figure 5).
pub fn virtual_value_constructed(
    vdoc: &VirtualDocument<'_>,
    source: &impl RawValueSource,
    node: NodeId,
) -> Result<String, ValueError> {
    let mut out = String::new();
    let mut stats = StitchStats::default();
    append_virtual_value(vdoc, source, node, false, &mut out, &mut stats)?;
    Ok(out)
}

/// Counters describing how a virtual value was assembled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Identity regions emitted as single stored-range copies.
    pub raw_copies: usize,
    /// Elements whose tags had to be constructed.
    pub constructed_elements: usize,
    /// Text nodes emitted individually.
    pub text_nodes: usize,
}

fn append_virtual_value(
    vdoc: &VirtualDocument<'_>,
    source: &impl RawValueSource,
    node: NodeId,
    fast_path: bool,
    out: &mut String,
    stats: &mut StitchStats,
) -> Result<(), ValueError> {
    let doc = vdoc.typed().doc();
    let Some(vt) = vdoc.vtype_of(node) else {
        return Ok(()); // invisible nodes contribute nothing
    };
    if fast_path && vdoc.vdg().is_identity_below(vt) {
        // The whole subtree sits at its original relative positions: its
        // virtual value IS its stored value — one contiguous copy.
        stats.raw_copies += 1;
        return source.append_raw_value(node, out);
    }
    match doc.kind(node) {
        NodeKind::Element { .. } => {
            stats.constructed_elements += 1;
            let children = vdoc.children(node);
            // write_start_tag self-closes based on *physical* children; the
            // virtual child list is what matters here, so patch both ways.
            let closed = serialize::write_start_tag(doc, node, out);
            if children.is_empty() {
                if !closed {
                    // `<x>` was written (the node has physical children,
                    // none virtually visible): canonicalize to `<x/>`.
                    out.truncate(out.len() - 1);
                    out.push_str("/>");
                }
                return Ok(());
            }
            if closed {
                // `<x/>` was written but virtual children exist: reopen.
                out.truncate(out.len() - 2);
                out.push('>');
            }
            for c in children {
                append_virtual_value(vdoc, source, c, fast_path, out, stats)?;
            }
            serialize::write_end_tag(doc, node, out);
        }
        NodeKind::Text(t) => {
            stats.text_nodes += 1;
            vh_xml::escape::escape_text_into(out, t);
        }
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;

    type R = Result<(), Box<dyn std::error::Error>>;

    fn sam() -> TypedDocument {
        TypedDocument::analyze(paper_figure2())
    }

    #[test]
    fn transformed_title_value_matches_figure3() -> R {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }")?;
        let title1 = vd.roots()[0];
        let (v, stats) = virtual_value(&vd, &td, title1)?;
        assert_eq!(v, "<title>X<author><name>C</name></author></title>");
        // name and title's text node head identity regions → two raw
        // copies; title and author are constructed.
        assert_eq!(stats.raw_copies, 2);
        assert_eq!(stats.constructed_elements, 2);
        assert_eq!(stats.text_nodes, 0);
        Ok(())
    }

    #[test]
    fn fast_path_and_constructed_agree() -> R {
        let td = sam();
        for spec in [
            "title { author { name } }",
            "title { name { author } }",
            "data { ** }",
            "book { publisher }",
        ] {
            let vd = VirtualDocument::open(&td, spec)?;
            for root in vd.roots() {
                let (fast, _) = virtual_value(&vd, &td, root)?;
                let slow = virtual_value_constructed(&vd, &td, root)?;
                assert_eq!(fast, slow, "spec {spec}");
            }
        }
        Ok(())
    }

    #[test]
    fn identity_value_is_the_original_value() -> R {
        let td = sam();
        let vd = VirtualDocument::open(&td, "data { ** }")?;
        let root = td.doc().root().ok_or("no root")?;
        let (v, stats) = virtual_value(&vd, &td, root)?;
        assert_eq!(
            v,
            vh_xml::serialize(td.doc(), vh_xml::SerializeOptions::compact())
        );
        // The whole document is one identity region: exactly one raw copy.
        assert_eq!(stats.raw_copies, 1);
        assert_eq!(stats.constructed_elements, 0);
        Ok(())
    }

    #[test]
    fn inverted_value_nests_author_inside_name() -> R {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { name { author } }")?;
        let title2 = vd.roots()[1];
        let (v, _) = virtual_value(&vd, &td, title2)?;
        // Sibling order between `author` (moved below its original
        // descendant) and name's own text is not observable through the
        // paper's axes (their numbers are prefix-related); we canonicalize
        // to PBN order, which puts the prefix-holder `author` first.
        assert_eq!(v, "<title>Y<name><author/>D</name></title>");
        Ok(())
    }

    #[test]
    fn projection_value_excludes_unselected_types() -> R {
        let td = sam();
        let vd = VirtualDocument::open(&td, "book { publisher }")?;
        let book1 = vd.roots()[0];
        let (v, _) = virtual_value(&vd, &td, book1)?;
        assert_eq!(
            v,
            "<book><publisher><location>W</location></publisher></book>"
        );
        Ok(())
    }

    #[test]
    fn value_of_invisible_node_is_empty() -> R {
        let td = sam();
        let vd = VirtualDocument::open(&td, "title { author { name } }")?;
        let root = td.doc().root().ok_or("no root")?;
        let book1 = td.doc().children(root)[0];
        let publisher = td.doc().children(book1)[2];
        let (v, _) = virtual_value(&vd, &td, publisher)?;
        assert!(v.is_empty());
        Ok(())
    }

    #[test]
    fn value_error_chains_its_source() {
        #[derive(Debug)]
        struct Boom;
        impl fmt::Display for Boom {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "boom")
            }
        }
        impl std::error::Error for Boom {}
        let e = ValueError::new(Boom);
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
