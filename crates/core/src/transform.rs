//! Physical materialization of a virtual hierarchy — the baseline vPBN
//! replaces, and the independent correctness oracle for the virtual
//! predicates.
//!
//! §4.3 enumerates what a system without vPBN must do to query transformed
//! data: physically build the transformed instance, assign fresh PBN
//! numbers to every node, and rebuild the indexes. [`materialize`] does
//! exactly that. Deliberately, it does **not** use level arrays or the
//! virtual predicates: node placement follows the instance-level rule the
//! paper states for Sam's query — a node attaches under the parent-type
//! instance it is "related to through a (least common) ancestor", i.e. the
//! two numbers agree on the first `length(lcaTypeOf(parentType, childType))`
//! components. Agreement between this code and `vh_core::axes` is therefore
//! meaningful evidence that the level-array construction is right; the
//! cross-validation lives in `tests/oracle.rs` at the workspace root.

use crate::vdg::{VDataGuide, VTypeId};
use vh_dataguide::TypedDocument;

use vh_xml::{Document, NodeId, NodeKind};

/// Name of the synthetic root wrapping the materialized forest (virtual
/// hierarchies are forests; XML documents need a single root).
pub const MATERIALIZED_ROOT: &str = "vroot";

/// The result of materializing a virtual hierarchy.
#[derive(Debug)]
pub struct Materialized {
    /// The transformed instance, under a synthetic [`MATERIALIZED_ROOT`].
    pub doc: Document,
    /// For each materialized node: the source node it was copied from
    /// (indexed by the new node's id; the synthetic root maps to `None`).
    pub source_of: Vec<Option<NodeId>>,
}

/// Physically applies `vdg` to the document, producing the transformed
/// instance. Nodes may be duplicated (a node matching several parent
/// instances appears under each — join semantics) or dropped (no matching
/// parent instance).
pub fn materialize(td: &TypedDocument, vdg: &VDataGuide) -> Materialized {
    let mut out = Document::new(format!("materialized:{}", td.doc().uri()));
    let root = out.create_root(MATERIALIZED_ROOT);
    let mut source_of: Vec<Option<NodeId>> = vec![None];

    // Per-virtual-type instance lists, PBN-sorted (document order).
    let mut instances: Vec<Vec<NodeId>> = vec![Vec::new(); vdg.len()];
    for (_, id) in td.pbn().in_document_order() {
        if let Some(vt) = vdg.vtype_of(td.type_of(*id)) {
            instances[vt.index()].push(*id);
        }
    }

    // Roots: all instances of root virtual types, in document order.
    let mut top: Vec<(NodeId, VTypeId)> = Vec::new();
    for &rt in vdg.roots() {
        top.extend(instances[rt.index()].iter().map(|&n| (n, rt)));
    }
    top.sort_by(|a, b| td.pbn().pbn_of(a.0).cmp(td.pbn().pbn_of(b.0)));
    for (src, vt) in top {
        place(td, vdg, &instances, src, vt, root, &mut out, &mut source_of);
    }
    Materialized {
        doc: out,
        source_of,
    }
}

/// Copies `src` (shallow) under `parent` in `out`, then recursively places
/// the matching child instances.
#[allow(clippy::too_many_arguments)]
fn place(
    td: &TypedDocument,
    vdg: &VDataGuide,
    instances: &[Vec<NodeId>],
    src: NodeId,
    vt: VTypeId,
    parent: NodeId,
    out: &mut Document,
    source_of: &mut Vec<Option<NodeId>>,
) {
    let new_id = match td.doc().kind(src) {
        NodeKind::Element { name, attributes } => {
            let id = out.append_element(parent, name.clone());
            for a in attributes {
                out.set_attribute(id, a.name.clone(), a.value.clone());
            }
            id
        }
        NodeKind::Text(t) => out.append_text(parent, t.clone()),
        NodeKind::Comment(c) => out.append_comment(parent, c.clone()),
        NodeKind::ProcessingInstruction { target, data } => {
            out.append_pi(parent, target.clone(), data.clone())
        }
    };
    debug_assert_eq!(new_id.index(), source_of.len());
    source_of.push(Some(src));

    // Gather matching instances of every child virtual type, then place
    // them in original document order with ancestors-first on prefix ties
    // (matching `vh_core::order::v_cmp`).
    let xn = td.pbn().pbn_of(src);
    let mut kids: Vec<(NodeId, VTypeId)> = Vec::new();
    for &ct in vdg.children(vt) {
        let k = lca_len(td, vdg, vt, ct);
        let prefix = xn.prefix(k.min(xn.len()));
        // Candidates sharing the prefix form a contiguous run of the
        // PBN-sorted instance list: binary-search instead of scanning.
        let list = &instances[ct.index()];
        let (start, end) = if prefix.is_empty() {
            (0, list.len())
        } else {
            let hi = prefix.sibling_successor();
            (
                crate::exec::partition_point_branchless(list, |&c| td.pbn().pbn_of(c) < &prefix),
                crate::exec::partition_point_branchless(list, |&c| td.pbn().pbn_of(c) < &hi),
            )
        };
        for &cand in &list[start..end] {
            debug_assert!(prefix.is_prefix_of(td.pbn().pbn_of(cand)));
            kids.push((cand, ct));
        }
    }
    kids.sort_by(|a, b| {
        let (pa, pb) = (td.pbn().pbn_of(a.0), td.pbn().pbn_of(b.0));
        pa.cmp(pb).then_with(|| {
            // Prefix ties: the higher virtual node (smaller level) first.
            vdg.level(a.1).cmp(&vdg.level(b.1))
        })
    });
    for (cand, ct) in kids {
        place(td, vdg, instances, cand, ct, new_id, out, source_of);
    }
}

/// `length(lcaTypeOf(orig(parent), orig(child)))` in the original guide.
fn lca_len(td: &TypedDocument, vdg: &VDataGuide, pt: VTypeId, ct: VTypeId) -> usize {
    let g = td.guide();
    // Invariant: both virtual types are bound to types of one original
    // guide, whose type tree always has an LCA for any pair.
    let z = match g.lca(vdg.original_type(pt), vdg.original_type(ct)) {
        Some(z) => z,
        None => unreachable!("virtual parent and child originate from one tree"),
    };
    g.length(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vh_xml::builder::paper_figure2;
    use vh_xml::{serialize, SerializeOptions};

    fn sam() -> TypedDocument {
        TypedDocument::analyze(paper_figure2())
    }

    fn materialize_spec(spec: &str) -> (TypedDocument, Materialized) {
        let td = sam();
        let vdg = VDataGuide::compile(spec, td.guide()).unwrap();
        let m = materialize(&td, &vdg);
        (td, m)
    }

    #[test]
    fn sams_transformation_produces_figure3() {
        let (_td, m) = materialize_spec("title { author { name } }");
        let s = serialize(&m.doc, SerializeOptions::compact());
        assert_eq!(
            s,
            "<vroot>\
             <title>X<author><name>C</name></author></title>\
             <title>Y<author><name>D</name></author></title>\
             </vroot>"
        );
    }

    #[test]
    fn identity_materialization_reproduces_the_document() {
        let (td, m) = materialize_spec("data { ** }");
        let root = m.doc.root().unwrap();
        assert_eq!(m.doc.children(root).len(), 1);
        let data = m.doc.children(root)[0];
        assert_eq!(
            serialize::serialize_node(&m.doc, data, SerializeOptions::compact()),
            serialize(td.doc(), SerializeOptions::compact())
        );
    }

    #[test]
    fn inversion_materializes_case2() {
        let (_td, m) = materialize_spec("title { name { author } }");
        let s = serialize(&m.doc, SerializeOptions::compact());
        // `author` (PBN 1.1.2) sorts before name's text (1.1.2.1.1): the
        // prefix-holder comes first in the canonicalized sibling order.
        assert_eq!(
            s,
            "<vroot>\
             <title>X<name><author/>C</name></title>\
             <title>Y<name><author/>D</name></title>\
             </vroot>"
        );
    }

    #[test]
    fn source_map_tracks_origins() {
        let (td, m) = materialize_spec("title { author { name } }");
        assert_eq!(m.source_of.len(), m.doc.len());
        assert_eq!(m.source_of[0], None, "synthetic root has no source");
        for (new_id, src) in m.source_of.iter().enumerate().skip(1) {
            let src = src.expect("every copied node has a source");
            let new_id = NodeId::from_index(new_id);
            // Kinds match between source and copy.
            match (m.doc.kind(new_id), td.doc().kind(src)) {
                (NodeKind::Element { name: a, .. }, NodeKind::Element { name: b, .. }) => {
                    assert_eq!(a, b)
                }
                (NodeKind::Text(a), NodeKind::Text(b)) => assert_eq!(a, b),
                (x, y) => panic!("kind mismatch: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn unmatched_nodes_are_dropped() {
        // Project to publishers only: titles/authors disappear.
        let (_td, m) = materialize_spec("book { publisher }");
        let s = serialize(&m.doc, SerializeOptions::compact());
        assert_eq!(
            s,
            "<vroot>\
             <book><publisher><location>W</location></publisher></book>\
             <book><publisher><location>M</location></publisher></book>\
             </vroot>"
        );
    }

    #[test]
    fn materialized_matches_virtual_values() -> Result<(), Box<dyn std::error::Error>> {
        // The virtual value of each virtual root equals the serialization
        // of the corresponding materialized subtree.
        use crate::value::virtual_value;
        use crate::vdoc::VirtualDocument;
        let td = sam();
        for spec in ["title { author { name } }", "title { name { author } }"] {
            let vd = VirtualDocument::open(&td, spec)?;
            let vdg = VDataGuide::compile(spec, td.guide())?;
            let m = materialize(&td, &vdg);
            let mroot = m.doc.root().ok_or("materialized doc has a root")?;
            let mat_children = m.doc.children(mroot);
            let vroots = vd.roots();
            assert_eq!(mat_children.len(), vroots.len());
            for (&mat, &virt) in mat_children.iter().zip(&vroots) {
                let physical = serialize::serialize_node(&m.doc, mat, SerializeOptions::compact());
                let (virtual_, _) = virtual_value(&vd, &td, virt)?;
                assert_eq!(physical, virtual_, "spec {spec}");
            }
        }
        Ok(())
    }
}
