//! Virtual DataGuides: grammar, parser, and expansion.
//!
//! §4.1 gives the specification grammar:
//!
//! ```text
//! S ← label P
//! P ← { L } | ε
//! L ← D L | ε
//! D ← * | ** | label P
//! ```
//!
//! `label` is a (possibly dot-qualified) name of a type in the original
//! DataGuide; `*` stands for the children of the label's original type that
//! are not mentioned elsewhere in the vDataGuide (each carried with its
//! original subtree so its value is preserved); `**` stands for all
//! descendants, preserving the original hierarchy. The identity
//! transformation is therefore `data { ** }`.
//!
//! Parsing produces a [`VdgSpec`] syntax tree; [`VdgSpec::expand`] binds it
//! against an original [`vh_dataguide::DataGuide`] to produce a
//! [`VDataGuide`]: a full virtual type forest in which every virtual type
//! remembers its original type (`originalTypeOf`).

mod expand;
mod grammar;
mod parse;

pub use expand::{VDataGuide, VTypeId};
pub use grammar::{VdgChild, VdgNode, VdgSpec};
pub use parse::parse_vdg;

use std::fmt;

/// Maximum nesting depth accepted while parsing or expanding a vDataGuide
/// specification. Real specifications are a handful of levels deep; the
/// limit exists so hostile or runaway input degrades to a structured error
/// instead of exhausting the stack.
pub const MAX_VDG_DEPTH: usize = 64;

/// Errors arising while parsing or expanding a vDataGuide specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VdgError {
    /// Syntax error in the specification string, with byte offset.
    Syntax {
        /// What was wrong.
        message: String,
        /// Byte offset in the specification string.
        offset: usize,
    },
    /// A label did not resolve to any type in the original DataGuide.
    UnknownLabel(String),
    /// A label resolved to more than one type; it must be qualified.
    AmbiguousLabel {
        /// The offending label.
        label: String,
        /// Dotted paths of the candidate types.
        candidates: Vec<String>,
    },
    /// The same original type was bound at two places in the virtual
    /// hierarchy (unsupported: a node must have one virtual location).
    DuplicateBinding(String),
    /// The specification (or its expansion over the original DataGuide)
    /// nests deeper than [`MAX_VDG_DEPTH`].
    DepthExceeded {
        /// The nesting depth that was reached.
        depth: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for VdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VdgError::Syntax { message, offset } => {
                write!(f, "vDataGuide syntax error at byte {offset}: {message}")
            }
            VdgError::UnknownLabel(l) => write!(f, "label '{l}' matches no type in the DataGuide"),
            VdgError::AmbiguousLabel { label, candidates } => write!(
                f,
                "label '{label}' is ambiguous; qualify it (candidates: {})",
                candidates.join(", ")
            ),
            VdgError::DuplicateBinding(p) => {
                write!(f, "type '{p}' is bound at two virtual locations")
            }
            VdgError::DepthExceeded { depth, limit } => write!(
                f,
                "vDataGuide nesting depth {depth} exceeds the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for VdgError {}
