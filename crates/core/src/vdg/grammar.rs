//! Syntax tree of a vDataGuide specification.

use std::fmt;

/// A parsed vDataGuide specification: a forest of labeled nodes.
///
/// The printed grammar derives a single root (`S ← label P`); we accept a
/// sequence of roots because the paper's DataGuide model is a forest and
/// Algorithm 1 iterates `roots(T)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VdgSpec {
    /// Top-level labeled nodes.
    pub roots: Vec<VdgNode>,
}

/// A labeled node with its child list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VdgNode {
    /// The (possibly dot-qualified) label naming an original type.
    pub label: String,
    /// Children in specification order.
    pub children: Vec<VdgChild>,
}

/// One child item: a nested labeled node, `*`, or `**`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VdgChild {
    /// A labeled child with its own children.
    Node(VdgNode),
    /// `*` — the unmentioned children of the parent's original type, each
    /// carried with its original subtree.
    Star,
    /// `**` — all descendants of the parent's original type, preserving the
    /// original hierarchy.
    DoubleStar,
}

impl VdgSpec {
    /// Parses a specification string. See [`crate::vdg::parse_vdg`].
    pub fn parse(input: &str) -> Result<Self, crate::vdg::VdgError> {
        crate::vdg::parse_vdg(input)
    }

    /// Every label mentioned anywhere in the specification, in
    /// specification order (used by delta maintenance to decide whether a
    /// freshly interned type could change label resolution).
    pub fn labels(&self) -> Vec<&str> {
        fn walk<'a>(node: &'a VdgNode, out: &mut Vec<&'a str>) {
            out.push(&node.label);
            for c in &node.children {
                if let VdgChild::Node(n) = c {
                    walk(n, out);
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }
}

impl fmt::Display for VdgSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl fmt::Display for VdgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)?;
        if !self.children.is_empty() {
            f.write_str(" { ")?;
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    f.write_str(" ")?;
                }
                match c {
                    VdgChild::Node(n) => write!(f, "{n}")?,
                    VdgChild::Star => f.write_str("*")?,
                    VdgChild::DoubleStar => f.write_str("**")?,
                }
            }
            f.write_str(" }")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    #[test]
    fn display_round_trips_through_parse() {
        let spec = VdgSpec::parse("title { author { name } }").must();
        assert_eq!(spec.to_string(), "title { author { name } }");
        let again = VdgSpec::parse(&spec.to_string()).must();
        assert_eq!(spec, again);
    }

    #[test]
    fn display_of_stars() {
        let spec = VdgSpec::parse("data { ** } extra { * }").must();
        assert_eq!(spec.to_string(), "data { ** } extra { * }");
    }
}
