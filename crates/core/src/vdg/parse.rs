//! Recursive-descent parser for the vDataGuide grammar.

use crate::vdg::grammar::{VdgChild, VdgNode, VdgSpec};
use crate::vdg::{VdgError, MAX_VDG_DEPTH};

/// Parses a vDataGuide specification string such as
/// `"title { author { name } }"` or `"data { ** }"`.
pub fn parse_vdg(input: &str) -> Result<VdgSpec, VdgError> {
    let mut p = P {
        bytes: input.as_bytes(),
        input,
        pos: 0,
        depth: 0,
    };
    let mut roots = Vec::new();
    p.ws();
    while !p.done() {
        roots.push(p.node()?);
        p.ws();
    }
    if roots.is_empty() {
        return Err(p.err("empty specification"));
    }
    Ok(VdgSpec { roots })
}

struct P<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> VdgError {
        VdgError::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\r' | b'\n' | b',')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// A label: names joined by dots; names may contain `#` (pseudo-types),
    /// alphanumerics, `_`, `-`, `:` and non-ASCII.
    fn label(&mut self) -> Result<String, VdgError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'-' | b'.' | b':' | b'#')
                || b >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a label"));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    /// `node ← label ('{' child* '}')?`
    ///
    /// The parser recurses once per `{`-level, so nesting is capped at
    /// [`MAX_VDG_DEPTH`] to keep malicious input off the stack limit.
    fn node(&mut self) -> Result<VdgNode, VdgError> {
        self.depth += 1;
        if self.depth > MAX_VDG_DEPTH {
            return Err(VdgError::DepthExceeded {
                depth: self.depth,
                limit: MAX_VDG_DEPTH,
            });
        }
        let label = self.label()?;
        self.ws();
        let mut children = Vec::new();
        if self.peek() == Some(b'{') {
            self.pos += 1;
            loop {
                self.ws();
                match self.peek() {
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    Some(b'*') => {
                        self.pos += 1;
                        if self.peek() == Some(b'*') {
                            self.pos += 1;
                            children.push(VdgChild::DoubleStar);
                        } else {
                            children.push(VdgChild::Star);
                        }
                    }
                    Some(_) => children.push(VdgChild::Node(self.node()?)),
                    None => return Err(self.err("unterminated '{'")),
                }
            }
        }
        self.depth -= 1;
        Ok(VdgNode { label, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;

    #[test]
    fn parses_the_paper_specification() {
        // Figure 6 / §2: "title { author { name } }".
        let s = parse_vdg("title { author { name } }").must();
        assert_eq!(s.roots.len(), 1);
        let title = &s.roots[0];
        assert_eq!(title.label, "title");
        assert_eq!(title.children.len(), 1);
        let VdgChild::Node(author) = &title.children[0] else {
            panic!("expected node");
        };
        assert_eq!(author.label, "author");
        assert_eq!(author.children.len(), 1);
    }

    #[test]
    fn parses_the_identity_specifications() {
        // §4.1 gives both the expanded identity guide and "data { ** }".
        let full =
            parse_vdg("data { book { title author { name } publisher { location } } }").must();
        assert_eq!(full.roots[0].label, "data");
        let short = parse_vdg("data { ** }").must();
        assert_eq!(short.roots[0].children, vec![VdgChild::DoubleStar]);
    }

    #[test]
    fn parses_star_and_mixed_children() {
        let s = parse_vdg("book { title * }").must();
        assert_eq!(s.roots[0].children.len(), 2);
        assert_eq!(s.roots[0].children[1], VdgChild::Star);
    }

    #[test]
    fn parses_qualified_labels() {
        let s = parse_vdg("x.z.y { a.b }").must();
        assert_eq!(s.roots[0].label, "x.z.y");
    }

    #[test]
    fn parses_a_forest() {
        let s = parse_vdg("title { author } publisher").must();
        assert_eq!(s.roots.len(), 2);
        assert_eq!(s.roots[1].label, "publisher");
    }

    #[test]
    fn commas_are_optional_separators() {
        let a = parse_vdg("b { x, y, z }").must();
        let b = parse_vdg("b { x y z }").must();
        assert_eq!(a, b);
    }

    #[test]
    fn deeply_nested_specification_is_rejected() {
        let deep = "a { ".repeat(MAX_VDG_DEPTH + 4) + "a" + &" }".repeat(MAX_VDG_DEPTH + 4);
        let e = parse_vdg(&deep).unwrap_err();
        assert!(matches!(e, VdgError::DepthExceeded { .. }), "{e}");
        // Depth right at the limit still parses.
        let ok = "a { ".repeat(MAX_VDG_DEPTH - 1) + "a" + &" }".repeat(MAX_VDG_DEPTH - 1);
        assert!(parse_vdg(&ok).is_ok());
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        let e = parse_vdg("book {").unwrap_err();
        assert!(matches!(e, VdgError::Syntax { .. }), "{e}");
        let e = parse_vdg("").unwrap_err();
        assert!(matches!(e, VdgError::Syntax { .. }));
        let e = parse_vdg("{x}").unwrap_err();
        assert!(matches!(e, VdgError::Syntax { .. }));
    }
}
