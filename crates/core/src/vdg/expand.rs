//! Expansion of a parsed [`VdgSpec`] against the original DataGuide.
//!
//! The result, [`VDataGuide`], is itself a type forest (represented with the
//! same machinery as an ordinary DataGuide, so all type-level axis checks
//! are PBN comparisons), in which every virtual type records its
//! *original* type — the paper's `originalTypeOf`.
//!
//! ## Reconstruction decisions
//!
//! The paper specifies the grammar and the worked example
//! `title { author { name } }` whose virtual instance (Figure 10) retains
//! the text below `title` and below `name`. From this we fix the expansion
//! rules precisely:
//!
//! 1. An explicit label binds one original type (suffix-qualified names
//!    disambiguate, per §4.1); binding the same original type twice is an
//!    error.
//! 2. Every virtual type implicitly keeps the `#text` child of its original
//!    type (Figure 10 shows `X` at level array `[1,1,1,2]` under `title`
//!    even though the specification never mentions text).
//! 3. A label with **no** child list expands its full original subtree
//!    (identity below) — this is what makes the virtual *value* of an
//!    unreshaped region equal its original value (§6).
//! 4. `*` and `**` expand the unmentioned children / descendants of the
//!    parent's original type with identity subtrees. Because an identity
//!    child already carries its whole subtree (rule 3 applied recursively),
//!    the two spellings coincide here; both skip any type explicitly
//!    mentioned elsewhere in the specification ("the children which are not
//!    mentioned elsewhere in the vDataGuide").

use crate::vdg::grammar::{VdgChild, VdgNode, VdgSpec};
use crate::vdg::{VdgError, MAX_VDG_DEPTH};
use std::collections::{HashMap, HashSet};
use vh_dataguide::{DataGuide, TypeId, TEXT_TYPE_NAME};

/// Identifier of a virtual type. Virtual types live in their own guide, so
/// this is a [`TypeId`] *of the virtual guide*, distinct from original
/// type ids.
pub type VTypeId = TypeId;

/// A fully expanded virtual DataGuide.
#[derive(Clone, Debug)]
pub struct VDataGuide {
    /// The virtual type forest (a guide over virtual paths).
    vguide: DataGuide,
    /// `orig[vt.index()]` is the original type bound at virtual type `vt`.
    orig: Vec<TypeId>,
    /// Original type → virtual type. Types absent here are invisible in the
    /// virtual hierarchy.
    vtype_of: HashMap<TypeId, VTypeId>,
    /// Virtual types that head an *identity region*: their whole original
    /// subtree is carried over unreshaped (used by §6 value stitching).
    identity_below: Vec<bool>,
    /// The source specification, kept for diagnostics and `Display`.
    spec: VdgSpec,
}

impl VDataGuide {
    /// Parses and expands a specification string in one step.
    pub fn compile(spec: &str, original: &DataGuide) -> Result<Self, VdgError> {
        VdgSpec::parse(spec)?.expand(original)
    }

    /// The virtual type forest. Names are the local names of the bound
    /// original types; paths are *virtual* paths (e.g. `title.author`).
    #[inline]
    pub fn guide(&self) -> &DataGuide {
        &self.vguide
    }

    /// The source specification.
    #[inline]
    pub fn spec(&self) -> &VdgSpec {
        &self.spec
    }

    /// Number of virtual types.
    #[inline]
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// True if the guide has no virtual types (cannot happen for a
    /// successfully expanded specification).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    /// `originalTypeOf` — the original type bound at `vt`.
    #[inline]
    pub fn original_type(&self, vt: VTypeId) -> TypeId {
        self.orig[vt.index()]
    }

    /// The virtual type an original type appears at, if it is part of the
    /// virtual hierarchy.
    #[inline]
    pub fn vtype_of(&self, original: TypeId) -> Option<VTypeId> {
        self.vtype_of.get(&original).copied()
    }

    /// True if `vt` heads an identity region: every descendant of a node of
    /// this type sits at its original relative position, so the node's
    /// virtual value equals its stored value (§6 fast path).
    #[inline]
    pub fn is_identity_below(&self, vt: VTypeId) -> bool {
        self.identity_below[vt.index()]
    }

    /// Virtual root types.
    #[inline]
    pub fn roots(&self) -> &[VTypeId] {
        self.vguide.roots()
    }

    /// Virtual children of a virtual type, in specification order.
    #[inline]
    pub fn children(&self, vt: VTypeId) -> &[VTypeId] {
        self.vguide.ty(vt).children()
    }

    /// The virtual level of a virtual type (roots are level 1).
    #[inline]
    pub fn level(&self, vt: VTypeId) -> usize {
        self.vguide.length(vt)
    }

    /// True when freshly interned guide types provably cannot change what
    /// `VDataGuide::compile(spec, original)` would produce, so this cached
    /// expansion stays valid under the grown guide.
    ///
    /// A new type `t` is harmless iff **both** hold:
    /// * its parent is invisible in this view (no virtual type) — a
    ///   visible parent could pull `t` in through the implicit `#text`
    ///   rule, an identity region, or a `*`/`**` item, and could flip an
    ///   `is_identity_below` completeness flag;
    /// * its name is not the last segment of any spec label — label
    ///   resolution is path-*suffix* based, so a same-named new type could
    ///   change (or ambiguate) what a label resolves to, and the recompile
    ///   must happen even if only to surface that error.
    ///
    /// Conservative by design: a `false` only costs a recompute.
    pub fn unaffected_by(&self, new_types: &[TypeId], original: &DataGuide) -> bool {
        if new_types.is_empty() {
            return true;
        }
        let tails: Vec<&str> = self
            .spec
            .labels()
            .iter()
            .map(|l| l.rsplit('.').next().unwrap_or(l))
            .collect();
        new_types.iter().all(|&t| {
            let ty = original.ty(t);
            let parent_visible = match ty.parent() {
                Some(p) => self.vtype_of(p).is_some(),
                // A parentless new type would be a new root; mutations
                // never mint one, but recompute if something ever does.
                None => true,
            };
            !parent_visible && !tails.contains(&ty.name())
        })
    }
}

/// An expansion is a pure function of `(spec, original guide)`: it stays
/// valid under an edit batch exactly when the batch's new types cannot
/// change a recompile ([`VDataGuide::unaffected_by`]); any other delta
/// content (node touches) is irrelevant to it.
// oracle: recompile_expansion_oracle
impl crate::cache::MaintainView for VDataGuide {
    fn maintain(
        &self,
        delta: &crate::cache::ViewDelta,
        ctx: &crate::cache::MaintainCtx<'_>,
    ) -> crate::cache::Maintained<Self> {
        if self.unaffected_by(&delta.new_types, ctx.td.guide()) {
            crate::cache::Maintained::Unchanged
        } else {
            crate::cache::Maintained::MustRecompute
        }
    }
}

impl VdgSpec {
    /// Expands this specification against `original`, binding labels and
    /// materializing `*` / `**` / identity regions.
    pub fn expand(&self, original: &DataGuide) -> Result<VDataGuide, VdgError> {
        let mentioned = self.mentioned_types(original)?;
        let mut out = Expansion {
            original,
            mentioned,
            vguide: DataGuide::new(original.uri()),
            orig: Vec::new(),
            vtype_of: HashMap::new(),
            identity_below: Vec::new(),
        };
        for root in &self.roots {
            let ty = out.resolve(&root.label)?;
            let vt = out.vguide.intern_root(original.name(ty));
            out.record(vt, ty)?;
            out.expand_children(vt, ty, &root.children, 1)?;
        }
        Ok(VDataGuide {
            vguide: out.vguide,
            orig: out.orig,
            vtype_of: out.vtype_of,
            identity_below: out.identity_below,
            spec: self.clone(),
        })
    }

    /// Resolves every explicit label in the specification, for the
    /// "not mentioned elsewhere" rule of `*`/`**`.
    fn mentioned_types(&self, original: &DataGuide) -> Result<HashSet<TypeId>, VdgError> {
        fn walk(
            node: &VdgNode,
            original: &DataGuide,
            out: &mut HashSet<TypeId>,
        ) -> Result<(), VdgError> {
            out.insert(resolve_label(original, &node.label)?);
            for c in &node.children {
                if let VdgChild::Node(n) = c {
                    walk(n, original, out)?;
                }
            }
            Ok(())
        }
        let mut set = HashSet::new();
        for r in &self.roots {
            walk(r, original, &mut set)?;
        }
        Ok(set)
    }
}

/// Resolves a (possibly dotted) label to exactly one original type.
fn resolve_label(original: &DataGuide, label: &str) -> Result<TypeId, VdgError> {
    let candidates = original.resolve_label(label);
    match candidates.len() {
        0 => Err(VdgError::UnknownLabel(label.to_owned())),
        1 => Ok(candidates[0]),
        _ => Err(VdgError::AmbiguousLabel {
            label: label.to_owned(),
            candidates: candidates
                .into_iter()
                .map(|t| original.path_string(t))
                .collect(),
        }),
    }
}

struct Expansion<'a> {
    original: &'a DataGuide,
    mentioned: HashSet<TypeId>,
    vguide: DataGuide,
    orig: Vec<TypeId>,
    vtype_of: HashMap<TypeId, VTypeId>,
    identity_below: Vec<bool>,
}

impl<'a> Expansion<'a> {
    fn resolve(&self, label: &str) -> Result<TypeId, VdgError> {
        resolve_label(self.original, label)
    }

    /// Records the binding `vt ↔ ty`, rejecting duplicates in either
    /// direction (an original type has one virtual location; a virtual path
    /// names one original type).
    fn record(&mut self, vt: VTypeId, ty: TypeId) -> Result<(), VdgError> {
        if vt.index() < self.orig.len() {
            // `intern_*` returned an existing virtual type: two siblings
            // with the same local name bound different original types, or
            // the same label was listed twice.
            return Err(VdgError::DuplicateBinding(self.original.path_string(ty)));
        }
        debug_assert_eq!(vt.index(), self.orig.len());
        self.orig.push(ty);
        self.identity_below.push(false);
        if self.vtype_of.insert(ty, vt).is_some() {
            return Err(VdgError::DuplicateBinding(self.original.path_string(ty)));
        }
        Ok(())
    }

    /// Fails with [`VdgError::DepthExceeded`] once the virtual hierarchy
    /// under construction nests past [`MAX_VDG_DEPTH`] — both this walk and
    /// the identity expansion recurse once per level.
    fn check_depth(&self, depth: usize) -> Result<(), VdgError> {
        if depth > MAX_VDG_DEPTH {
            return Err(VdgError::DepthExceeded {
                depth,
                limit: MAX_VDG_DEPTH,
            });
        }
        Ok(())
    }

    fn expand_children(
        &mut self,
        vt: VTypeId,
        ty: TypeId,
        children: &[VdgChild],
        depth: usize,
    ) -> Result<(), VdgError> {
        self.check_depth(depth)?;
        if children.is_empty() {
            // Rule 3: identity below. The fast-path flag is only set when
            // the whole original subtree really is carried over — a
            // descendant type mentioned (and thus re-rooted) elsewhere
            // makes the region value-incomplete.
            let complete = self.expand_identity_children(vt, ty, depth)?;
            self.identity_below[vt.index()] = complete;
            return Ok(());
        }
        let mut any_explicit = false;
        let mut stars_complete = true;
        for c in children {
            match c {
                VdgChild::Node(n) => {
                    any_explicit = true;
                    let cty = self.resolve(&n.label)?;
                    let cvt = self.vguide.intern_child(vt, self.original.name(cty));
                    self.record(cvt, cty)?;
                    self.expand_children(cvt, cty, &n.children, depth + 1)?;
                }
                VdgChild::Star | VdgChild::DoubleStar => {
                    stars_complete &= self.expand_unmentioned(vt, ty, depth)?;
                }
            }
        }
        // A child list of only `*`/`**` that skipped nothing is an identity
        // region too (e.g. `data { ** }` leaves the whole document intact).
        if !any_explicit && stars_complete {
            self.identity_below[vt.index()] = true;
        }
        // Rule 2: implicit #text child.
        if let Some(text_ty) = self.original.text_child(ty) {
            if !self.vtype_of.contains_key(&text_ty) {
                let cvt = self.vguide.intern_child(vt, TEXT_TYPE_NAME);
                self.record(cvt, text_ty)?;
                self.identity_below[cvt.index()] = true;
            }
        }
        Ok(())
    }

    /// Identity expansion: copies the original child types of `ty` under
    /// `vt`, recursively, skipping explicitly mentioned types. Returns
    /// `true` when nothing was skipped anywhere below (the region is
    /// value-complete).
    fn expand_identity_children(
        &mut self,
        vt: VTypeId,
        ty: TypeId,
        depth: usize,
    ) -> Result<bool, VdgError> {
        self.check_depth(depth)?;
        let children: Vec<TypeId> = self.original.ty(ty).children().to_vec();
        let mut complete = true;
        for cty in children {
            if self.mentioned.contains(&cty) || self.vtype_of.contains_key(&cty) {
                complete = false;
                continue;
            }
            let cvt = self.vguide.intern_child(vt, self.original.name(cty));
            self.record(cvt, cty)?;
            let child_complete = self.expand_identity_children(cvt, cty, depth + 1)?;
            self.identity_below[cvt.index()] = child_complete;
            complete &= child_complete;
        }
        Ok(complete)
    }

    /// `*` / `**`: unmentioned children of `ty`, each with an identity
    /// subtree. Returns `true` when nothing below was skipped.
    fn expand_unmentioned(
        &mut self,
        vt: VTypeId,
        ty: TypeId,
        depth: usize,
    ) -> Result<bool, VdgError> {
        self.expand_identity_children(vt, ty, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::Must;
    use vh_dataguide::TypedDocument;
    use vh_xml::builder::paper_figure2;

    fn original() -> DataGuide {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        g
    }

    #[test]
    fn figure7b_expansion() {
        // "title { author { name } }" over the Figure 7(a) guide.
        let g = original();
        let v = VDataGuide::compile("title { author { name } }", &g).must();
        // Virtual types: title, title.#text, author, name, name.#text.
        assert_eq!(v.len(), 5);
        assert_eq!(v.roots().len(), 1);
        let title = v.roots()[0];
        assert_eq!(v.guide().name(title), "title");
        assert_eq!(v.level(title), 1);
        // originalTypeOf(title) = data.book.title.
        assert_eq!(g.path_string(v.original_type(title)), "data.book.title");

        // title's virtual children: author (explicit) + #text (implicit).
        let kids = v.children(title);
        assert_eq!(kids.len(), 2);
        let author = kids[0];
        assert_eq!(v.guide().name(author), "author");
        assert_eq!(v.level(author), 2);
        // §4.1: "the typeOf author in Figure 7(b) is title.author, and it
        // has a length of 2. Its originalTypeOf is data.book.author."
        assert_eq!(v.guide().path_string(author), "title.author");
        assert_eq!(g.path_string(v.original_type(author)), "data.book.author");

        let name = v.children(author)[0];
        assert_eq!(v.guide().name(name), "name");
        assert_eq!(v.level(name), 3);
        assert!(v.is_identity_below(name), "leaf label is identity below");
        // name keeps its text.
        assert_eq!(v.children(name).len(), 1);
    }

    #[test]
    fn identity_specification_covers_everything() {
        let g = original();
        let v = VDataGuide::compile("data { ** }", &g).must();
        // Every original type appears, at its original position.
        assert_eq!(v.len(), g.len());
        for vt in (0..v.len()).map(VTypeId::from_index) {
            let orig = v.original_type(vt);
            assert_eq!(v.level(vt), g.length(orig));
            assert_eq!(v.guide().name(vt), g.name(orig));
        }
    }

    #[test]
    fn explicit_and_compact_identity_agree() {
        let g = original();
        let a = VDataGuide::compile(
            "data { book { title author { name } publisher { location } } }",
            &g,
        )
        .must();
        let b = VDataGuide::compile("data { ** }", &g).must();
        assert_eq!(a.len(), b.len());
        // Same virtual paths either way.
        let paths = |v: &VDataGuide| {
            let mut p: Vec<String> = (0..v.len())
                .map(|i| v.guide().path_string(VTypeId::from_index(i)))
                .collect();
            p.sort();
            p
        };
        assert_eq!(paths(&a), paths(&b));
    }

    #[test]
    fn projection_keeps_subtrees_of_named_leaves() {
        let g = original();
        let v = VDataGuide::compile("book { publisher }", &g).must();
        let book = v.roots()[0];
        let publisher = v.children(book)[0];
        assert!(v.is_identity_below(publisher));
        // publisher's identity subtree: location, location.#text.
        let location = v.children(publisher)[0];
        assert_eq!(v.guide().name(location), "location");
        assert_eq!(v.level(location), 3);
        // title/author are NOT part of the virtual hierarchy.
        let title = g.lookup_path(&["data", "book", "title"]).must();
        assert_eq!(v.vtype_of(title), None);
    }

    #[test]
    fn star_skips_mentioned_types() {
        let g = original();
        let v = VDataGuide::compile("book { title * }", &g).must();
        let book = v.roots()[0];
        let names: Vec<&str> = v
            .children(book)
            .iter()
            .map(|&c| v.guide().name(c))
            .collect();
        // title (explicit) then author, publisher from '*'; no duplicate title.
        assert_eq!(names, vec!["title", "author", "publisher"]);
    }

    #[test]
    fn unknown_and_ambiguous_labels_error() {
        let g = original();
        assert!(matches!(
            VDataGuide::compile("nosuch", &g),
            Err(VdgError::UnknownLabel(_))
        ));
        // '#text' appears under title, name and location: ambiguous.
        assert!(matches!(
            VDataGuide::compile("#text", &g),
            Err(VdgError::AmbiguousLabel { .. })
        ));
        // Qualification fixes it.
        assert!(VDataGuide::compile("title.#text", &g).is_ok());
    }

    #[test]
    fn duplicate_binding_is_rejected() {
        let g = original();
        let e = VDataGuide::compile("title { author } author", &g).unwrap_err();
        assert!(matches!(e, VdgError::DuplicateBinding(_)), "{e}");
    }

    #[test]
    fn same_name_siblings_from_different_types_are_rejected() {
        let td = TypedDocument::parse("u", "<x><y>a</y><z><y>b</y></z></x>").must();
        let e = VDataGuide::compile("x { x.y z.y }", td.guide()).unwrap_err();
        assert!(matches!(e, VdgError::DuplicateBinding(_)), "{e}");
    }

    #[test]
    fn qualified_labels_disambiguate() {
        let td = TypedDocument::parse("u", "<x><y>a</y><z><y>b</y></z></x>").must();
        let v = VDataGuide::compile("z.y", td.guide()).must();
        assert_eq!(
            td.guide().path_string(v.original_type(v.roots()[0])),
            "x.z.y"
        );
    }

    #[test]
    fn expansion_depth_over_a_deep_guide_is_limited() {
        // An identity expansion recurses to the original guide's depth; a
        // document nested past MAX_VDG_DEPTH must fail structurally, not
        // blow the stack.
        let n = MAX_VDG_DEPTH + 8;
        let mut xml = String::new();
        for i in 0..n {
            xml.push_str(&format!("<e{i}>"));
        }
        for i in (0..n).rev() {
            xml.push_str(&format!("</e{i}>"));
        }
        let td = TypedDocument::parse("u", &xml).must();
        let e = VDataGuide::compile("e0", td.guide()).unwrap_err();
        assert!(matches!(e, VdgError::DepthExceeded { .. }), "{e}");
    }

    #[test]
    fn inversion_specification_expands() {
        // §5.2 case 2: invert name and author: title { name { author } }.
        let g = original();
        let v = VDataGuide::compile("title { name { author } }", &g).must();
        let title = v.roots()[0];
        let name = v.children(title)[0];
        let author = v.children(name)[0];
        assert_eq!(v.guide().name(name), "name");
        assert_eq!(v.guide().name(author), "author");
        assert_eq!(v.level(author), 3);
        assert_eq!(g.path_string(v.original_type(author)), "data.book.author");
    }

    /// Recompute-oracle twin for `MaintainView for VDataGuide`: what the
    /// cache would rebuild from scratch against the grown guide.
    fn recompile_expansion_oracle(spec: &str, original: &DataGuide) -> VDataGuide {
        VDataGuide::compile(spec, original).must()
    }

    /// Structural equality of two expansions over (possibly different)
    /// original guides, compared through the public accessors.
    fn assert_same_expansion(a: &VDataGuide, b: &VDataGuide, ga: &DataGuide, gb: &DataGuide) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.roots(), b.roots());
        for i in 0..a.len() {
            let vt = TypeId::from_index(i);
            assert_eq!(a.guide().name(vt), b.guide().name(vt));
            assert_eq!(a.children(vt), b.children(vt));
            assert_eq!(a.is_identity_below(vt), b.is_identity_below(vt));
            assert_eq!(
                ga.path_string(a.original_type(vt)),
                gb.path_string(b.original_type(vt))
            );
        }
    }

    #[test]
    fn unaffected_verdicts_are_sound_against_the_recompile_oracle() {
        let spec = "title { author { name } }";
        let g0 = original();
        let v = VDataGuide::compile(spec, &g0).must();

        // A new type under an invisible parent whose name matches no
        // label: the expansion must survive, and the recompile agrees.
        let mut g = g0.clone();
        let publisher = g.lookup_path(&["data", "book", "publisher"]).must();
        let t = g.intern_child(publisher, "note");
        assert!(v.unaffected_by(&[t], &g));
        assert_same_expansion(&v, &recompile_expansion_oracle(spec, &g), &g0, &g);

        // A new type under a *visible* parent must force a recompute
        // (conservative: the implicit rules could pull it in).
        let mut g = g0.clone();
        let title = g.lookup_path(&["data", "book", "title"]).must();
        let t = g.intern_child(title, "subtitle");
        assert!(!v.unaffected_by(&[t], &g));

        // A new type whose name is a label tail must force a recompute:
        // here the recompile even errors (ambiguous label), which the
        // cache must surface rather than mask with a stale entry.
        let mut g = g0.clone();
        let publisher = g.lookup_path(&["data", "book", "publisher"]).must();
        let t = g.intern_child(publisher, "name");
        assert!(!v.unaffected_by(&[t], &g));
        assert!(matches!(
            VDataGuide::compile(spec, &g),
            Err(VdgError::AmbiguousLabel { .. })
        ));

        // No new types: trivially unaffected.
        assert!(v.unaffected_by(&[], &g0));
    }
}
