#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vh-core — virtual prefix-based numbering (vPBN)
//!
//! The primary contribution of *"Querying Virtual Hierarchies using Virtual
//! Prefix-Based Numbers"* (SIGMOD 2014). A user sketches a **virtual
//! hierarchy** for existing data with a [`vdg`] specification (a virtual
//! DataGuide); nothing is moved, renumbered or re-indexed. Instead every
//! physical PBN number is coupled with a per-*type* **level array**
//! ([`levels`]) that locates each number component in the virtual numbering
//! space, and all ten XPath location relationships are decided by comparing
//! `(number, level array)` pairs ([`axes`]) plus a constant-time type-level
//! check in the virtual guide.
//!
//! Module tour:
//! * [`vdg`] — the vDataGuide grammar (`label { … }`, `*`, `**`), its parser
//!   and its expansion against the original DataGuide.
//! * [`levels`] — Algorithm 1: computing the type → level-array map.
//! * [`vpbn`] — the [`VPbn`] number type (PBN + level array).
//! * [`axes`] — the ten virtual location predicates of §5.
//! * [`order`] — virtual document order and sibling ordinals (§5.1).
//! * [`range`] — deriving PBN index-scan ranges from level arrays.
//! * [`vdoc`] — [`VirtualDocument`]: navigation over the virtual hierarchy.
//! * [`value`] — §6: computing transformed (virtual) node values by
//!   stitching stored byte ranges.
//! * [`transform`] — the *materialization baseline*: physically apply a
//!   vDataGuide and renumber, which is exactly the strategy §4.3 argues is
//!   too expensive; it doubles as the correctness oracle for the virtual
//!   predicates.
//! * [`exec`] — [`ExecOptions`] and the deterministic partition/merge
//!   primitives behind parallel scans, filters and sorts.
//! * [`cache`] — sharded LRU for per-view compiled artifacts (vDataGuide
//!   expansions, level-array maps, prefix tables, per-type node indexes)
//!   with hit/miss counters.

pub mod axes;
pub mod cache;
pub mod exec;
pub mod levels;
pub mod order;
pub mod range;
pub mod transform;
pub mod value;
pub mod vdg;
pub mod vdoc;
pub mod vpbn;

pub use cache::{CacheStats, ExecCache};
pub use exec::ExecOptions;
pub use levels::LevelArray;
pub use vdg::{VDataGuide, VdgError, VdgSpec};
pub use vdoc::{TypeIndex, VirtualDocument};
pub use vpbn::VPbn;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for unit tests.

    /// Unwraps test fixtures that are valid by construction, printing the
    /// `Debug` payload when the assumption is violated.
    pub trait Must<T> {
        /// Returns the success value or fails the test.
        fn must(self) -> T;
    }

    impl<T, E: std::fmt::Debug> Must<T> for Result<T, E> {
        fn must(self) -> T {
            self.unwrap_or_else(|e| unreachable!("test fixture failed: {e:?}"))
        }
    }

    impl<T> Must<T> for Option<T> {
        fn must(self) -> T {
            self.unwrap_or_else(|| unreachable!("test fixture was None"))
        }
    }
}
