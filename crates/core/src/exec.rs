//! The execution knob and deterministic partition/merge primitives.
//!
//! Every parallel stage in the engine follows one discipline: partition
//! the input into **contiguous chunks in document order**, process each
//! chunk independently on its own thread, and concatenate the per-chunk
//! results **in chunk order**. Because chunk boundaries respect the input
//! order and the merge is a plain concatenation, the output is
//! byte-identical to the sequential run for every operator built on these
//! helpers — parallelism changes wall-clock time, never results. The
//! property tests in `tests/properties.rs` pin this for random trees and
//! all thread counts.
//!
//! Parallelism is opt-in: [`ExecOptions::default`] keeps `threads = 1`, so
//! benchmarks and existing callers stay single-threaded unless they ask.

use std::cmp::Ordering;

/// How a query (or bench) run executes: degree of parallelism and whether
/// per-view artifacts (vDataGuide expansions, level maps, prefix tables)
/// are served from the [`crate::cache::ExecCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for partitionable stages. `1` = sequential (the
    /// default); `0` = use all hardware threads.
    pub threads: usize,
    /// Whether compiled-view artifacts are cached across queries.
    pub cache: bool,
    /// Minimum input length before a stage is split across threads;
    /// smaller inputs run sequentially (thread spawn costs more than the
    /// work). Tests lower this to exercise the parallel paths on small
    /// trees.
    pub par_threshold: usize,
}

/// Default minimum input length for going parallel.
pub const DEFAULT_PAR_THRESHOLD: usize = 4096;

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            cache: true,
            par_threshold: DEFAULT_PAR_THRESHOLD,
        }
    }
}

impl ExecOptions {
    /// Sequential execution with caching enabled (the default).
    pub fn sequential() -> Self {
        ExecOptions::default()
    }

    /// Parallel execution with `threads` workers (0 = all hardware
    /// threads), caching enabled.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// The resolved worker count: `0` maps to the hardware thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }

    /// Number of chunks a stage over `len` items should split into:
    /// 1 (sequential) when parallelism is off or the input is below the
    /// threshold, otherwise at most one chunk per worker and per item.
    pub fn plan(&self, len: usize) -> usize {
        let t = self.resolved_threads();
        if t <= 1 || len < self.par_threshold.max(2) {
            1
        } else {
            t.min(len)
        }
    }
}

/// Splits `0..len` into `parts` contiguous, near-equal intervals (the
/// leading `len % parts` chunks are one longer). Empty when `len == 0`.
pub fn chunk_bounds(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Maps each chunk of `items` through `f`, in parallel when `opts` allows,
/// and returns the per-chunk results **in chunk order**.
pub fn par_chunk_map<T, R, F>(opts: &ExecOptions, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let parts = opts.plan(items.len());
    let bounds = chunk_bounds(items.len(), parts);
    if parts <= 1 {
        return bounds.iter().map(|&(lo, hi)| f(&items[lo..hi])).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(bounds.len());
    slots.resize_with(bounds.len(), || None);
    rayon::scope(|s| {
        for (slot, &(lo, hi)) in slots.iter_mut().zip(&bounds) {
            let f = &f;
            s.spawn(move || *slot = Some(f(&items[lo..hi])));
        }
    });
    slots
        .into_iter()
        .map(|r| match r {
            Some(r) => r,
            // Invariant: rayon::scope joins every spawned worker before
            // returning, and each worker fills exactly its own slot.
            None => unreachable!("scope joined all chunk workers"),
        })
        .collect()
}

/// Keeps the items satisfying `pred`, preserving input order. Partitioned
/// filtering: per-chunk sequential filters concatenated in chunk order,
/// so the result is byte-identical to `items.iter().filter(...)`.
pub fn par_filter<T, F>(opts: &ExecOptions, items: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let chunks = par_chunk_map(opts, items, |chunk| {
        chunk
            .iter()
            .copied()
            .filter(|t| pred(t))
            .collect::<Vec<T>>()
    });
    concat(chunks)
}

/// Counts the items satisfying `pred` (partitioned, deterministic).
pub fn par_count<T, F>(opts: &ExecOptions, items: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    par_chunk_map(opts, items, |chunk| {
        chunk.iter().filter(|t| pred(t)).count()
    })
    .into_iter()
    .sum()
}

/// Sorts `items` by `cmp`: chunks are sorted in parallel, then merged in
/// order. With a comparator under which distinct elements never compare
/// `Equal` (true for node sorts keyed by PBN numbers) the result is
/// identical to a sequential `sort_by`.
pub fn par_sort_by<T, F>(opts: &ExecOptions, items: &mut [T], cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let parts = opts.plan(items.len());
    if parts <= 1 {
        items.sort_by(&cmp);
        return;
    }
    let bounds = chunk_bounds(items.len(), parts);
    // Sort each chunk on its own thread (disjoint &mut splits).
    rayon::scope(|s| {
        let mut rest: &mut [T] = items;
        let mut consumed = 0;
        for &(lo, hi) in &bounds {
            let (chunk, tail) = rest.split_at_mut(hi - consumed);
            debug_assert_eq!(consumed, lo);
            consumed = hi;
            rest = tail;
            let cmp = &cmp;
            s.spawn(move || chunk.sort_by(cmp));
        }
    });
    // K-way merge by repeated two-way merges (k is small: ≤ thread count).
    let mut runs: Vec<Vec<T>> = bounds
        .iter()
        .map(|&(lo, hi)| items[lo..hi].to_vec())
        .collect();
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_by(&a, &b, &cmp)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    if let Some(sorted) = runs.into_iter().next() {
        items.copy_from_slice(&sorted);
    }
}

/// Stable two-way merge (ties take from `a` first).
fn merge_by<T: Copy>(a: &[T], b: &[T], cmp: &impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]) == Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Branch-free `slice::partition_point`: the index of the first element
/// for which `pred` is false, assuming `pred` is true on a prefix.
///
/// The halving loop advances `base` by `usize::from(pred) * half`, so the
/// predicate result feeds a multiply instead of a conditional jump — on
/// the random probe keys of the §5 axis scans the branchy form is a coin
/// flip the predictor loses half the time.
///
/// oracle: partition_point_scalar
// vet: hot
#[inline]
pub fn partition_point_branchless<T>(items: &[T], pred: impl Fn(&T) -> bool) -> usize {
    let mut base = 0usize;
    let mut len = items.len();
    while len > 1 {
        let half = len / 2;
        // vet: allow(hot-path) — base + len ≤ items.len() is the loop invariant, so base + half - 1 is in bounds
        base += usize::from(pred(&items[base + half - 1])) * half;
        len -= half;
    }
    // vet: allow(hot-path) — the len == 1 guard short-circuits the probe of items[base]
    base + usize::from(len == 1 && pred(&items[base]))
}

/// Scalar twin of [`partition_point_branchless`]: `std`'s branchy
/// bisection, the oracle the property suite compares against.
#[inline]
pub fn partition_point_scalar<T>(items: &[T], pred: impl Fn(&T) -> bool) -> usize {
    items.partition_point(pred)
}

/// Concatenates per-chunk result vectors in chunk order.
pub fn concat<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Options that force the parallel path even on tiny inputs.
    fn eager(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            cache: true,
            par_threshold: 1,
        }
    }

    #[test]
    fn branchless_partition_point_matches_std_on_every_cut() {
        // Every sorted-prefix shape over lengths straddling powers of two,
        // with the cut at every position including the two ends.
        for len in [0usize, 1, 2, 3, 7, 8, 9, 15, 16, 17, 100] {
            let items: Vec<usize> = (0..len).collect();
            for cut in 0..=len {
                assert_eq!(
                    partition_point_branchless(&items, |&x| x < cut),
                    partition_point_scalar(&items, |&x| x < cut),
                    "len={len} cut={cut}"
                );
            }
        }
    }

    #[test]
    fn chunk_bounds_cover_the_range_contiguously() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let b = chunk_bounds(len, parts);
                let mut pos = 0;
                for &(lo, hi) in &b {
                    assert_eq!(lo, pos);
                    assert!(hi > lo, "no empty chunks");
                    pos = hi;
                }
                assert_eq!(pos, len);
                if len > 0 {
                    assert!(b.len() <= parts.max(1) && b.len() <= len);
                }
            }
        }
    }

    #[test]
    fn default_is_sequential() {
        let opts = ExecOptions::default();
        assert_eq!(opts.threads, 1);
        assert!(opts.cache);
        assert_eq!(opts.plan(1 << 20), 1);
    }

    #[test]
    fn plan_respects_threshold_and_thread_count() {
        let opts = eager(4);
        assert_eq!(opts.plan(100), 4);
        assert_eq!(opts.plan(3), 3, "never more chunks than items");
        let lazy = ExecOptions::with_threads(4);
        assert_eq!(lazy.plan(100), 1, "below DEFAULT_PAR_THRESHOLD");
        assert_eq!(lazy.plan(DEFAULT_PAR_THRESHOLD), 4);
        assert!(ExecOptions::with_threads(0).resolved_threads() >= 1);
    }

    /// Input sizes shrink under Miri, whose interpreter pays ~1000× per
    /// instruction; an odd prime keeps the uneven-chunk coverage.
    const PAR_SIZE: u32 = if cfg!(miri) { 97 } else { 997 };

    #[test]
    fn par_filter_matches_sequential_for_all_thread_counts() {
        let items: Vec<u32> = (0..PAR_SIZE).collect();
        let expect: Vec<u32> = items.iter().copied().filter(|x| x % 3 == 0).collect();
        for t in [1, 2, 3, 8] {
            let got = par_filter(&eager(t), &items, |x| x % 3 == 0);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_count_matches_sequential() {
        let items: Vec<u32> = (0..PAR_SIZE).collect();
        let expect = items.iter().filter(|x| **x % 7 == 0).count();
        for t in [1, 2, 5] {
            assert_eq!(par_count(&eager(t), &items, |x| *x % 7 == 0), expect);
        }
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        // Deterministic pseudo-random permutation with unique keys.
        let items: Vec<u64> = (0..u64::from(PAR_SIZE))
            .map(|i| (i * 2654435761) % 1000003)
            .collect();
        let mut expect = items.clone();
        expect.sort();
        for t in [1, 2, 3, 8] {
            let mut got = items.clone();
            par_sort_by(&eager(t), &mut got, |a, b| a.cmp(b));
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_chunk_map_preserves_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        let sums = par_chunk_map(&eager(4), &items, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<usize>(), 4950);
        // Chunk order: the first chunk holds the smallest indices.
        assert!(sums[0] < sums[3]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_filter(&eager(4), &empty, |_| true).is_empty());
        assert_eq!(par_count(&eager(4), &empty, |_| true), 0);
        let mut e2: Vec<u32> = Vec::new();
        par_sort_by(&eager(4), &mut e2, |a, b| a.cmp(b));
        assert!(e2.is_empty());
    }
}
