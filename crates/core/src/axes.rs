//! The ten virtual location predicates of §5.
//!
//! Every predicate combines a *number-level* condition on the
//! `(PBN, level array)` pairs with a *type-level* condition in the
//! vDataGuide ("the relationship must hold for the types of x and y in the
//! vDataGuide, V"). The type-level checks are PBN comparisons on the
//! virtual guide's internal numbering, so the whole predicate remains a
//! pure number comparison.
//!
//! The shared number-level core is **compatibility**: for every position
//! `i` present in both numbers, if the level arrays agree at `i`
//! (`xa[i] = ya[i]`) then the numbers must agree too (`xn[i] = yn[i]`).
//! Positions whose levels differ carry no constraint — they belong to
//! different virtual ancestors. (The paper's quantifier bounds are typeset
//! ambiguously; this positional reading reproduces every worked example in
//! §5, which the unit tests below verify verbatim.)

use crate::vdg::VDataGuide;
use crate::vpbn::VPbnRef;
use vh_dataguide::axes as ty;

/// Number-level compatibility: level-matching positions have matching
/// number components. See [`VPbnRef::compatible_with`].
#[inline]
fn compatible(x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    x.compatible_with(y)
}

/// vSelf(x, y) — x is the virtual self of y: same number, same array, same
/// virtual type. The level arrays are compared first: they are flat `u32`
/// slices (one `memcmp`), so almost every non-self pair is rejected before
/// the component-wise number comparison runs.
pub fn v_self(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    x.a == y.a && x.n == y.n && ty::self_type(v.guide(), x.vtype, y.vtype)
}

/// vAncestor(x, y) — x is a virtual ancestor of y.
pub fn v_ancestor(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    y.level() > x.level() && compatible(x, y) && ty::ancestor(v.guide(), x.vtype, y.vtype)
}

/// vParent(x, y) — x is the virtual parent of y.
///
/// (The printed predicate swaps the level arithmetic; a parent is one level
/// *above* its child: `max(xa) + 1 = max(ya)`.)
pub fn v_parent(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    x.level() + 1 == y.level() && compatible(x, y) && ty::parent(v.guide(), x.vtype, y.vtype)
}

/// vDescendant(x, y) — x is a virtual descendant of y.
pub fn v_descendant(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    x.level() > y.level() && compatible(x, y) && ty::descendant(v.guide(), x.vtype, y.vtype)
}

/// vChild(x, y) — x is a virtual child of y.
pub fn v_child(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    y.level() + 1 == x.level() && compatible(x, y) && ty::child(v.guide(), x.vtype, y.vtype)
}

/// vDescendant-or-self(x, y).
pub fn v_descendant_or_self(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_descendant(v, x, y) || v_self(v, x, y)
}

/// vAncestor-or-self(x, y).
pub fn v_ancestor_or_self(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_ancestor(v, x, y) || v_self(v, x, y)
}

/// vPreceding(x, y) — x ends before y starts in virtual document order
/// (excludes virtual ancestors of y and virtual descendants of y, per the
/// XPath `preceding` axis).
///
/// The paper's `¬vAncestor(x, y) ∧ ¬vSelf(x, y)` guard is essential and
/// kept in full: under a transformation an ancestor's number can *diverge*
/// from its descendant's (e.g. `title` 1.1.1 is the virtual ancestor of
/// `author` 1.1.2 in Sam's view), so divergence alone does not imply
/// disjoint subtrees. No *positive* type-level condition applies beyond
/// the guard: instances of any two virtual types can stand in a preceding
/// relationship when they come from different subtrees (the first book's
/// `title` precedes the second book's `author` even though `title` is an
/// ancestor *type* of `author`). The materialization oracle pins both
/// properties.
pub fn v_preceding(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    if v_self(v, x, y) || v_ancestor(v, x, y) || v_ancestor(v, y, x) {
        return false;
    }
    // Remaining pairs sit in disjoint virtual subtrees; virtual document
    // order decides. Using the shared comparator keeps the axis consistent
    // with sibling ordering when one number is a component-prefix of the
    // other (possible between an inverted node and the text of its new
    // parent — the numbers alone cannot order them, so the canonical
    // tie-break applies).
    crate::order::v_cmp(v, x, y) == std::cmp::Ordering::Less
}

/// vFollowing(x, y) — x starts after y ends in virtual document order.
pub fn v_following(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_preceding(v, y, x)
}

/// Number-level virtual siblinghood: same virtual level, and all positions
/// belonging to proper-ancestor levels agree (§5's "∀i ≤ max(xa)−1"
/// condition read positionally).
#[inline]
fn v_sibling_numbers(x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    if x.level() != y.level() {
        return false;
    }
    let own = x.level();
    let m = x.comparable_len(y);
    for i in 0..m {
        if x.a[i] == y.a[i] && x.a[i] < own && x.n[i] != y.n[i] {
            return false;
        }
    }
    true
}

/// vPreceding-sibling(x, y) — x is a virtual preceding sibling of y.
pub fn v_preceding_sibling(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_sibling_numbers(x, y) && v_preceding(v, x, y) && !v_self(v, x, y) && sibling_types(v, x, y)
}

/// vFollowing-sibling(x, y) — x is a virtual following sibling of y.
pub fn v_following_sibling(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_sibling_numbers(x, y) && v_following(v, x, y) && !v_self(v, x, y) && sibling_types(v, x, y)
}

/// Type-level siblinghood in the virtual guide (same type counts: two
/// `author` nodes under one `title` are siblings).
#[inline]
fn sibling_types(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    x.vtype == y.vtype || ty::sibling(v.guide(), x.vtype, y.vtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelMap;
    use crate::vdg::{VDataGuide, VTypeId};
    use crate::vpbn::VPbn;
    use vh_dataguide::DataGuide;
    use vh_pbn::Pbn;
    use vh_xml::builder::paper_figure2;

    /// Builds the Figure 10 world: Sam's transformation
    /// `title { author { name } }` with the paper's vPBN numbers.
    struct World {
        v: VDataGuide,
        m: LevelMap,
    }

    impl World {
        fn new(spec: &str) -> Self {
            let (g, _) = DataGuide::from_document(&paper_figure2());
            let v = VDataGuide::compile(spec, &g).unwrap();
            let m = LevelMap::build(&v, &g);
            World { v, m }
        }

        fn node(&self, vpath: &[&str], pbn: &str) -> VPbn {
            let vt = self
                .v
                .guide()
                .lookup_path(vpath)
                .unwrap_or_else(|| panic!("no virtual type {vpath:?}"));
            VPbn::new(pbn.parse::<Pbn>().unwrap(), self.m.array(vt), vt)
        }
    }

    #[test]
    fn figure10_descendant_examples() {
        // "The leftmost <name> is a virtual descendant of the leftmost
        // <title> since its prefix at level 1 is 1.1 ... But <name> is not
        // a virtual descendant of the rightmost <title>."
        let w = World::new("title { author { name } }");
        let title1 = w.node(&["title"], "1.1.1");
        let title2 = w.node(&["title"], "1.2.1");
        let name1 = w.node(&["title", "author", "name"], "1.1.2.1");

        assert!(v_descendant(&w.v, &name1.as_ref(), &title1.as_ref()));
        assert!(!v_descendant(&w.v, &name1.as_ref(), &title2.as_ref()));
        assert!(v_ancestor(&w.v, &title1.as_ref(), &name1.as_ref()));
        assert!(!v_ancestor(&w.v, &title2.as_ref(), &name1.as_ref()));
    }

    #[test]
    fn figure10_preceding_examples() {
        // "Text node C 1.1.2.1.1 virtually precedes <author> 1.2.2 since C
        // is not a virtual ancestor or self of <author>, and at level 1 C
        // has a prefix of 1.1 which is less than <author>'s prefix at level
        // 1 (1.2). Finally C is not a virtual following-sibling of D since
        // though they are at the same level, they do not have the same
        // virtual parent."
        let w = World::new("title { author { name } }");
        let c = w.node(&["title", "author", "name", "#text"], "1.1.2.1.1");
        let d = w.node(&["title", "author", "name", "#text"], "1.2.2.1.1");
        let author2 = w.node(&["title", "author"], "1.2.2");

        assert!(v_preceding(&w.v, &c.as_ref(), &author2.as_ref()));
        assert!(!v_following_sibling(&w.v, &c.as_ref(), &d.as_ref()));
        assert!(!v_following_sibling(&w.v, &d.as_ref(), &c.as_ref()));
        // C does precede D (virtual document order).
        assert!(v_preceding(&w.v, &c.as_ref(), &d.as_ref()));
        assert!(v_following(&w.v, &d.as_ref(), &c.as_ref()));
    }

    #[test]
    fn parent_child_in_the_transformed_space() {
        // §4.3: in the transformed instance, Y (1.2.1) is a parent of D's
        // chain — concretely author 1.2.2 is a virtual child of title 1.2.1
        // even though 1.2.1 is not a prefix of 1.2.2.
        let w = World::new("title { author { name } }");
        let title2 = w.node(&["title"], "1.2.1");
        let author2 = w.node(&["title", "author"], "1.2.2");
        assert!(v_child(&w.v, &author2.as_ref(), &title2.as_ref()));
        assert!(v_parent(&w.v, &title2.as_ref(), &author2.as_ref()));
        // And not across books.
        let title1 = w.node(&["title"], "1.1.1");
        assert!(!v_child(&w.v, &author2.as_ref(), &title1.as_ref()));
    }

    #[test]
    fn self_requires_identical_number_and_type() {
        let w = World::new("title { author { name } }");
        let a = w.node(&["title", "author"], "1.1.2");
        let b = w.node(&["title", "author"], "1.1.2");
        let c = w.node(&["title", "author"], "1.2.2");
        assert!(v_self(&w.v, &a.as_ref(), &b.as_ref()));
        assert!(!v_self(&w.v, &a.as_ref(), &c.as_ref()));
        assert!(v_descendant_or_self(&w.v, &a.as_ref(), &b.as_ref()));
        assert!(v_ancestor_or_self(&w.v, &a.as_ref(), &b.as_ref()));
    }

    #[test]
    fn case2_inversion_parenthood() {
        // title { name { author } }: name (1.1.2.1) is the virtual PARENT
        // of author (1.1.2) although author's number is a prefix of name's.
        let w = World::new("title { name { author } }");
        let name1 = w.node(&["title", "name"], "1.1.2.1");
        let author1 = w.node(&["title", "name", "author"], "1.1.2");
        assert!(v_parent(&w.v, &name1.as_ref(), &author1.as_ref()));
        assert!(v_child(&w.v, &author1.as_ref(), &name1.as_ref()));
        assert!(v_ancestor(&w.v, &name1.as_ref(), &author1.as_ref()));
        // The preceding/following axes exclude the pair entirely.
        assert!(!v_preceding(&w.v, &author1.as_ref(), &name1.as_ref()));
        assert!(!v_following(&w.v, &author1.as_ref(), &name1.as_ref()));
        // Across books nothing relates.
        let name2 = w.node(&["title", "name"], "1.2.2.1");
        assert!(!v_parent(&w.v, &name2.as_ref(), &author1.as_ref()));
        assert!(!v_ancestor(&w.v, &name2.as_ref(), &author1.as_ref()));
    }

    #[test]
    fn title_ancestor_of_inverted_chain() {
        let w = World::new("title { name { author } }");
        let title1 = w.node(&["title"], "1.1.1");
        let author1 = w.node(&["title", "name", "author"], "1.1.2");
        let name1 = w.node(&["title", "name"], "1.1.2.1");
        assert!(v_ancestor(&w.v, &title1.as_ref(), &name1.as_ref()));
        assert!(v_ancestor(&w.v, &title1.as_ref(), &author1.as_ref()));
        assert!(!v_parent(&w.v, &title1.as_ref(), &author1.as_ref()));
    }

    #[test]
    fn siblings_under_the_same_virtual_parent() {
        // Under title 1.1.1, the virtual children are its #text (1.1.1.1)
        // and author (1.1.2): siblings in the virtual space.
        let w = World::new("title { author { name } }");
        let x_text = w.node(&["title", "#text"], "1.1.1.1");
        let author1 = w.node(&["title", "author"], "1.1.2");
        assert!(v_preceding_sibling(
            &w.v,
            &x_text.as_ref(),
            &author1.as_ref()
        ));
        assert!(v_following_sibling(
            &w.v,
            &author1.as_ref(),
            &x_text.as_ref()
        ));
        // Not siblings across books.
        let author2 = w.node(&["title", "author"], "1.2.2");
        assert!(!v_preceding_sibling(
            &w.v,
            &x_text.as_ref(),
            &author2.as_ref()
        ));
        // Two titles are siblings (roots of the virtual forest).
        let title1 = w.node(&["title"], "1.1.1");
        let title2 = w.node(&["title"], "1.2.1");
        assert!(v_preceding_sibling(
            &w.v,
            &title1.as_ref(),
            &title2.as_ref()
        ));
    }

    #[test]
    fn identity_transform_agrees_with_plain_pbn() {
        // Under `data { ** }` the virtual predicates must coincide with the
        // physical PBN axes for every pair of nodes in Figure 2.
        use vh_dataguide::TypedDocument;
        use vh_pbn::axes as phys;
        let td = TypedDocument::analyze(paper_figure2());
        let v = VDataGuide::compile("data { ** }", td.guide()).unwrap();
        let m = LevelMap::build(&v, td.guide());
        let nodes: Vec<_> = td
            .doc()
            .preorder()
            .map(|id| {
                let vt = v.vtype_of(td.type_of(id)).unwrap();
                (td.pbn().pbn_of(id).clone(), m.array(vt), vt)
            })
            .collect();
        for (xn, xa, xt) in &nodes {
            for (yn, ya, yt) in &nodes {
                let x = VPbnRef::new(xn, xa, *xt);
                let y = VPbnRef::new(yn, ya, *yt);
                assert_eq!(v_self(&v, &x, &y), phys::is_self(xn, yn), "self {xn} {yn}");
                assert_eq!(
                    v_ancestor(&v, &x, &y),
                    phys::is_ancestor(xn, yn),
                    "ancestor {xn} {yn}"
                );
                assert_eq!(
                    v_descendant(&v, &x, &y),
                    phys::is_descendant(xn, yn),
                    "descendant {xn} {yn}"
                );
                assert_eq!(
                    v_parent(&v, &x, &y),
                    phys::is_parent(xn, yn),
                    "parent {xn} {yn}"
                );
                assert_eq!(
                    v_child(&v, &x, &y),
                    phys::is_child(xn, yn),
                    "child {xn} {yn}"
                );
                assert_eq!(
                    v_preceding(&v, &x, &y),
                    phys::is_preceding(xn, yn),
                    "preceding {xn} {yn}"
                );
                assert_eq!(
                    v_following(&v, &x, &y),
                    phys::is_following(xn, yn),
                    "following {xn} {yn}"
                );
                assert_eq!(
                    v_preceding_sibling(&v, &x, &y),
                    phys::is_preceding_sibling(xn, yn),
                    "preceding-sibling {xn} {yn}"
                );
                assert_eq!(
                    v_following_sibling(&v, &x, &y),
                    phys::is_following_sibling(xn, yn),
                    "following-sibling {xn} {yn}"
                );
            }
        }
    }

    #[test]
    fn vpbn_ref_helpers() {
        let w = World::new("title { author { name } }");
        let a = w.node(&["title", "author"], "1.1.2");
        assert_eq!(a.level(), 2);
        let _ = VTypeId::from_index(0); // silence unused-import pedantry in some cfgs
    }
}
