//! Virtual document order and dynamically computed sibling ordinals.
//!
//! §5.1: vPBN preserves document order but does **not** store sibling
//! ordinals — "if an ordinal is needed, it must be computed dynamically,
//! e.g., by queueing the siblings". [`v_cmp`] is the total order; ordinal
//! computation lives on [`crate::vdoc::VirtualDocument`].

use crate::axes::v_ancestor;
use crate::vdg::VDataGuide;
use crate::vpbn::VPbnRef;
use std::cmp::Ordering;

/// Total virtual document order over vPBN numbers.
///
/// * A virtual ancestor orders before its descendants (preorder). This
///   cannot be reduced to a prefix test: under inversions an ancestor's
///   number may *extend* or even *diverge from* its descendant's, so the
///   full [`v_ancestor`] predicate (compatibility + levels + type check)
///   decides.
/// * Otherwise the nodes sit in disjoint subtrees and the first divergent
///   component orders them (the paper's "prefix at level 1 of C is 1.1
///   which is less than 1.2" comparison).
/// * When one number is a component-prefix of the other and the nodes are
///   *not* vertically related (an inverted node versus the text of its new
///   parent), the numbers alone cannot order the pair; the canonical
///   tie-break is shorter-number-first, then virtual type id. The
///   materialization oracle pins this choice.
pub fn v_cmp(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> Ordering {
    if x.n == y.n && x.vtype == y.vtype {
        return Ordering::Equal;
    }
    if v_ancestor(v, x, y) {
        return Ordering::Less;
    }
    if v_ancestor(v, y, x) {
        return Ordering::Greater;
    }
    let m = x.n.len().min(y.n.len());
    for i in 0..m {
        match x.n[i].cmp(&y.n[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    match x.n.len().cmp(&y.n.len()) {
        Ordering::Equal => x.vtype.cmp(&y.vtype),
        other => other,
    }
}

/// True if `x` comes strictly before `y` in virtual document order.
#[inline]
pub fn v_before(v: &VDataGuide, x: &VPbnRef<'_>, y: &VPbnRef<'_>) -> bool {
    v_cmp(v, x, y) == Ordering::Less
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelMap;
    use crate::vpbn::VPbn;
    use vh_dataguide::DataGuide;
    use vh_pbn::Pbn;
    use vh_xml::builder::paper_figure2;

    /// Fixture: a compiled scenario over the paper's Figure 2 instance.
    struct World {
        v: VDataGuide,
        m: LevelMap,
    }

    impl World {
        fn new(spec: &str) -> Self {
            let (g, _) = DataGuide::from_document(&paper_figure2());
            let v = VDataGuide::compile(spec, &g).unwrap();
            let m = LevelMap::build(&v, &g);
            World { v, m }
        }

        fn node(&self, vpath: &[&str], pbn: &str) -> VPbn {
            let vt = self
                .v
                .guide()
                .lookup_path(vpath)
                .unwrap_or_else(|| panic!("no virtual type {vpath:?}"));
            VPbn::new(pbn.parse::<Pbn>().unwrap(), self.m.array(vt), vt)
        }
    }

    #[test]
    fn divergence_orders_by_component() {
        // Figure 10: C (1.1.2.1.1) precedes the second author (1.2.2).
        let w = World::new("title { author { name } }");
        let c = w.node(&["title", "author", "name", "#text"], "1.1.2.1.1");
        let author2 = w.node(&["title", "author"], "1.2.2");
        assert!(v_before(&w.v, &c.as_ref(), &author2.as_ref()));
        assert!(!v_before(&w.v, &author2.as_ref(), &c.as_ref()));
    }

    #[test]
    fn ancestors_order_first_even_when_numbers_diverge() {
        // Sam's view: title 1.1.1 is the virtual ancestor of author 1.1.2
        // although the numbers diverge at the last position.
        let w = World::new("title { author { name } }");
        let title = w.node(&["title"], "1.1.1");
        let author = w.node(&["title", "author"], "1.1.2");
        assert!(v_before(&w.v, &title.as_ref(), &author.as_ref()));
        assert!(!v_before(&w.v, &author.as_ref(), &title.as_ref()));
    }

    #[test]
    fn inversion_orders_new_parent_first() {
        // title { name { author } }: name 1.1.2.1 is the virtual parent of
        // author 1.1.2 despite the longer number.
        let w = World::new("title { name { author } }");
        let name = w.node(&["title", "name"], "1.1.2.1");
        let author = w.node(&["title", "name", "author"], "1.1.2");
        assert!(v_before(&w.v, &name.as_ref(), &author.as_ref()));
    }

    #[test]
    fn prefix_ambiguous_siblings_order_shorter_first() {
        // Under the inversion, author (1.1.2) and the text of name
        // (1.1.2.1.1) are virtual siblings whose numbers are
        // prefix-related: canonical order is shorter-number-first.
        let w = World::new("title { name { author } }");
        let author = w.node(&["title", "name", "author"], "1.1.2");
        let c_text = w.node(&["title", "name", "#text"], "1.1.2.1.1");
        assert!(v_before(&w.v, &author.as_ref(), &c_text.as_ref()));
        assert!(!v_before(&w.v, &c_text.as_ref(), &author.as_ref()));
    }

    #[test]
    fn equal_numbers_and_types_are_equal() {
        let w = World::new("title { author { name } }");
        let a = w.node(&["title", "author"], "1.1.2");
        let b = w.node(&["title", "author"], "1.1.2");
        assert_eq!(v_cmp(&w.v, &a.as_ref(), &b.as_ref()), Ordering::Equal);
    }

    #[test]
    fn sorting_reconstructs_figure3_preorder() {
        let w = World::new("title { author { name } }");
        let mut nodes = vec![
            w.node(&["title", "author", "name", "#text"], "1.2.2.1.1"),
            w.node(&["title", "author"], "1.1.2"),
            w.node(&["title"], "1.2.1"),
            w.node(&["title", "#text"], "1.1.1.1"),
            w.node(&["title", "author", "name"], "1.1.2.1"),
            w.node(&["title"], "1.1.1"),
            w.node(&["title", "author", "name", "#text"], "1.1.2.1.1"),
            w.node(&["title", "author", "name"], "1.2.2.1"),
            w.node(&["title", "#text"], "1.2.1.1"),
            w.node(&["title", "author"], "1.2.2"),
        ];
        nodes.sort_by(|a, b| v_cmp(&w.v, &a.as_ref(), &b.as_ref()));
        let order: Vec<String> = nodes.iter().map(|n| n.pbn.to_string()).collect();
        assert_eq!(
            order,
            vec![
                "1.1.1",
                "1.1.1.1",
                "1.1.2",
                "1.1.2.1",
                "1.1.2.1.1", //
                "1.2.1",
                "1.2.1.1",
                "1.2.2",
                "1.2.2.1",
                "1.2.2.1.1",
            ]
        );
    }
}
