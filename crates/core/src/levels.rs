//! Algorithm 1: building the type → level-array map.
//!
//! A **level array** records, for each component of a node's (physical) PBN
//! number, the level of the virtual hierarchy that component belongs to.
//! Crucially the array is the same for every node of a virtual type
//! (§5.2: "it is not necessary to assign a level array to each node
//! individually"), so the map has one entry per virtual type.
//!
//! The printed pseudocode of Algorithm 1 is OCR-garbled in the source; this
//! implementation follows the three narrated cases, validated against every
//! worked example in §5.2 (see the unit tests):
//!
//! * **root `r`** — level array `[1; s]` where `s = length(orig(r))`: every
//!   component of the PBN number sits on level 1.
//! * **child `r` at level `n` under parent `p`** — let
//!   `z = lcaTypeOf(orig(p), orig(r))`, `k = length(z)`,
//!   `s = length(orig(r))`:
//!   * `k < s` (cases 1 and 3 — `r`'s number has components below the lca):
//!     `ra = pa[1..k] • [n; s−k]`.
//!   * `k = s` (case 2 — `r` moved below one of its original descendants,
//!     so its number lacks components for the deepest virtual level):
//!     `ra = pa[1..s] • [n]`; the array is one longer than the number.
//!
//! Complexity: O(cN) time and space for a vDataGuide of `N` types with
//! maximum original depth `c` — each type allocates and fills one array of
//! length ≤ c+1, and the lca is O(c) via the guide's internal PBN numbers.

use crate::vdg::{VDataGuide, VTypeId};
use std::fmt;
use vh_dataguide::DataGuide;

/// The level array of a virtual type (1-based levels; index `i` gives the
/// virtual level of PBN component `i`). For case-2 types the array has one
/// trailing entry with no corresponding PBN component.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LevelArray(Vec<u32>);

impl LevelArray {
    /// Creates a level array from raw levels.
    pub fn new(levels: impl Into<Vec<u32>>) -> Self {
        let levels = levels.into();
        debug_assert!(
            levels.windows(2).all(|w| w[0] <= w[1]),
            "level arrays are non-decreasing: {levels:?}"
        );
        LevelArray(levels)
    }

    /// The raw levels.
    #[inline]
    pub fn levels(&self) -> &[u32] {
        &self.0
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty (only the degenerate array of the empty number).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `max(xa)` in the paper: the virtual level (depth) of nodes carrying
    /// this array. Arrays are non-decreasing, so this is the last entry.
    #[inline]
    pub fn max_level(&self) -> u32 {
        // Invariant: `LevelMap::build` constructs one entry per PBN
        // component and every virtual type has length >= 1.
        match self.0.last() {
            Some(&l) => l,
            None => unreachable!("level array of a type is never empty"),
        }
    }

    /// Entry `i` (0-based position of the PBN component).
    #[inline]
    pub fn level_at(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// Heap bytes used (for the space-overhead experiment).
    pub fn heap_bytes(&self) -> usize {
        self.0.len() * std::mem::size_of::<u32>()
    }
}

impl fmt::Debug for LevelArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for LevelArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{l}")?;
        }
        f.write_str("]")
    }
}

/// The complete type → level-array map for a virtual hierarchy, stored as
/// one flat column: all level entries concatenated in virtual-type order
/// plus an offset table. A type's array is a borrowed slice of the column
/// ([`Self::levels_of`]), so vPBN construction on the hot path allocates
/// nothing and consecutive types share cache lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelMap {
    /// Every type's level entries, concatenated in type-index order.
    column: Vec<u32>,
    /// `column[offsets[i]..offsets[i+1]]` is the array of virtual type `i`;
    /// always `len + 1` entries starting at 0.
    offsets: Vec<u32>,
}

impl LevelMap {
    /// Runs Algorithm 1 over the expanded virtual guide.
    pub fn build(vdg: &VDataGuide, original: &DataGuide) -> Self {
        let mut arrays: Vec<Option<LevelArray>> = vec![None; vdg.len()];
        // Preorder over the virtual forest; parents are computed first.
        let mut stack: Vec<VTypeId> = vdg.roots().iter().rev().copied().collect();
        while let Some(vt) = stack.pop() {
            let orig = vdg.original_type(vt);
            let s = original.length(orig);
            let n = vdg.level(vt) as u32;
            let array = match vdg.guide().ty(vt).parent() {
                None => LevelArray::new(vec![1u32; s]),
                Some(pvt) => {
                    // Invariant: the stack walk is preorder, so a parent's
                    // array is always filled before its children are
                    // visited.
                    let pa = match arrays[pvt.index()].as_ref() {
                        Some(a) => a,
                        None => unreachable!("parent visited before child in preorder"),
                    };
                    let porig = vdg.original_type(pvt);
                    // Invariant: both types come from one original guide,
                    // whose types form a single tree — an LCA always exists.
                    let z = match original.lca(porig, orig) {
                        Some(z) => z,
                        None => unreachable!("virtual parent and child share a tree"),
                    };
                    let k = original.length(z);
                    if k < s {
                        // Cases 1 and 3: prefix of the parent's array up to
                        // the lca, then the child's level for the rest.
                        let mut v = Vec::with_capacity(s);
                        v.extend_from_slice(&pa.levels()[..k]);
                        v.resize(s, n);
                        LevelArray::new(v)
                    } else {
                        // Case 2 (k == s): the child's original type is an
                        // ancestor of its virtual parent's; the array gets
                        // one extra entry for the level its number cannot
                        // express.
                        debug_assert_eq!(k, s, "lca length cannot exceed the child's length");
                        let mut v = Vec::with_capacity(s + 1);
                        v.extend_from_slice(&pa.levels()[..s]);
                        v.push(n);
                        LevelArray::new(v)
                    }
                }
            };
            arrays[vt.index()] = Some(array);
            stack.extend(vdg.children(vt).iter().rev().copied());
        }
        // Flatten into the columnar form: entries first, offsets after.
        let mut column = Vec::new();
        let mut offsets = Vec::with_capacity(arrays.len() + 1);
        offsets.push(0u32);
        for a in arrays {
            // Invariant: the walk above visits every virtual type (the
            // vDataGuide is a forest rooted at `roots()`).
            let a = match a {
                Some(a) => a,
                None => unreachable!("every virtual type is reachable from a root"),
            };
            column.extend_from_slice(a.levels());
            offsets.push(column.len() as u32);
        }
        LevelMap { column, offsets }
    }

    /// The level entries of a virtual type, borrowed from the flat column —
    /// the allocation-free accessor hot paths use.
    #[inline]
    pub fn levels_of(&self, vt: VTypeId) -> &[u32] {
        let i = vt.index();
        &self.column[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The level array of a virtual type, materialized as an owned value —
    /// a convenience for tests and owned [`crate::vpbn::VPbn`] numbers; hot
    /// paths borrow via [`Self::levels_of`].
    pub fn array(&self, vt: VTypeId) -> LevelArray {
        LevelArray::new(self.levels_of(vt).to_vec())
    }

    /// Number of entries (= number of virtual types).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap bytes of all level entries (space-overhead experiment;
    /// this is the *per-type* cost the paper contrasts with storing an
    /// array on every node — the offset table is bookkeeping, not part of
    /// the contrast, and is excluded).
    pub fn heap_bytes(&self) -> usize {
        self.column.len() * std::mem::size_of::<u32>()
    }
}

// oracle: rebuild_levels_oracle
impl crate::cache::MaintainView for LevelMap {
    fn maintain(
        &self,
        delta: &crate::cache::ViewDelta,
        ctx: &crate::cache::MaintainCtx<'_>,
    ) -> crate::cache::Maintained<Self> {
        // A level map is a pure function of (vdg, original guide restricted
        // to the types the vdg mentions); an edit can only change it by
        // changing the expansion itself, so the verdict delegates to the
        // expansion's soundness check.
        if ctx.vdg.unaffected_by(&delta.new_types, ctx.td.guide()) {
            crate::cache::Maintained::Unchanged
        } else {
            crate::cache::Maintained::MustRecompute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vdg::VDataGuide;
    use vh_dataguide::DataGuide;
    use vh_xml::builder::paper_figure2;

    fn setup(spec: &str) -> (DataGuide, VDataGuide, LevelMap) {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        let v = VDataGuide::compile(spec, &g).unwrap();
        let m = LevelMap::build(&v, &g);
        (g, v, m)
    }

    /// Finds the virtual type with the given virtual path.
    fn vt(v: &VDataGuide, path: &[&str]) -> VTypeId {
        v.guide()
            .lookup_path(path)
            .unwrap_or_else(|| panic!("virtual path {path:?} not found"))
    }

    #[test]
    fn figure10_level_arrays() {
        // The complete worked example: every level array in Figure 10.
        let (_g, v, m) = setup("title { author { name } }");
        let title = vt(&v, &["title"]);
        let title_text = vt(&v, &["title", "#text"]);
        let author = vt(&v, &["title", "author"]);
        let name = vt(&v, &["title", "author", "name"]);
        let name_text = vt(&v, &["title", "author", "name", "#text"]);

        assert_eq!(m.array(title).levels(), &[1, 1, 1]);
        assert_eq!(m.array(title_text).levels(), &[1, 1, 1, 2]);
        assert_eq!(m.array(author).levels(), &[1, 1, 2]);
        assert_eq!(m.array(name).levels(), &[1, 1, 2, 3]);
        assert_eq!(m.array(name_text).levels(), &[1, 1, 2, 3, 4]);
    }

    #[test]
    fn case2_inversion_arrays_match_section_5_2() {
        // §5.2: inverting name and author. "The level array for name would
        // then be [1,1] • [2,2]. ... The level array for author, the new
        // child of name would be [1,1] • [2,3]."
        let (_g, v, m) = setup("title { name { author } }");
        let name = vt(&v, &["title", "name"]);
        let author = vt(&v, &["title", "name", "author"]);
        assert_eq!(m.array(name).levels(), &[1, 1, 2, 2]);
        assert_eq!(m.array(author).levels(), &[1, 1, 2, 3]);
        // Case-2 arrays are one longer than the PBN number (length 3 for
        // data.book.author).
        assert_eq!(m.array(author).len(), 4);
        assert_eq!(m.array(author).max_level(), 3);
    }

    #[test]
    fn case3_example_title_author() {
        // §5.2 case 3: "The level array for title would then be [1,1] • [1]
        // ... The level array for author, the new child of title is
        // [1,1] • [2]."
        let (_g, v, m) = setup("title { author }");
        assert_eq!(m.array(vt(&v, &["title"])).levels(), &[1, 1, 1]);
        assert_eq!(m.array(vt(&v, &["title", "author"])).levels(), &[1, 1, 2]);
    }

    #[test]
    fn identity_arrays_equal_depth_runs() {
        // Under the identity transformation every component of a node's
        // number is on its own level: the array is [1,2,3,...,depth].
        let (g, v, m) = setup("data { ** }");
        for i in 0..v.len() {
            let vtid = VTypeId::from_index(i);
            let depth = g.length(v.original_type(vtid));
            let expected: Vec<u32> = (1..=depth as u32).collect();
            assert_eq!(
                m.array(vtid).levels(),
                &expected[..],
                "type {}",
                v.guide().path_string(vtid)
            );
        }
    }

    #[test]
    fn max_level_equals_virtual_depth() {
        let (_g, v, m) = setup("title { name { author } }");
        for i in 0..v.len() {
            let vtid = VTypeId::from_index(i);
            assert_eq!(
                m.array(vtid).max_level() as usize,
                v.level(vtid),
                "type {}",
                v.guide().path_string(vtid)
            );
        }
    }

    #[test]
    fn arrays_are_non_decreasing() {
        for spec in [
            "title { author { name } }",
            "title { name { author } }",
            "data { ** }",
            "book { publisher }",
            "name { author { title } }",
        ] {
            let (_g, v, m) = setup(spec);
            for i in 0..v.len() {
                let a = m.array(VTypeId::from_index(i));
                assert!(
                    a.levels().windows(2).all(|w| w[0] <= w[1]),
                    "spec {spec}: array {a} not monotone"
                );
            }
        }
    }

    /// Recompute oracle for [`LevelMap::maintain`]: a from-scratch rebuild
    /// over the current guide, which an `Unchanged` verdict must match.
    fn rebuild_levels_oracle(vdg: &VDataGuide, original: &DataGuide) -> LevelMap {
        LevelMap::build(vdg, original)
    }

    #[test]
    fn maintained_level_maps_match_the_rebuild_oracle() {
        use crate::cache::{MaintainCtx, MaintainView, Maintained, ViewDelta};
        use vh_dataguide::TypedDocument;

        let mut td = TypedDocument::analyze(paper_figure2());
        let v = VDataGuide::compile("title { author { name } }", td.guide()).unwrap();
        let m = LevelMap::build(&v, td.guide());

        // New type under an invisible parent: the map survives and must
        // equal what a rebuild over the grown guide produces.
        let publisher = td
            .guide()
            .lookup_path(&["data", "book", "publisher"])
            .unwrap();
        let p = td.nodes_of_type(publisher)[0];
        td.insert_fragment(p, 0, "<note>x</note>").unwrap();
        let delta = td.take_delta();
        assert!(!delta.new_types.is_empty());
        let vd = ViewDelta {
            new_types: delta.new_types,
            ..ViewDelta::default()
        };
        let ctx = MaintainCtx { td: &td, vdg: &v };
        match m.maintain(&vd, &ctx) {
            Maintained::Unchanged => {
                assert_eq!(m, rebuild_levels_oracle(&v, td.guide()));
            }
            _ => panic!("invisible-parent insert must keep the level map"),
        }

        // New type under the visible title: conservative recompute.
        let title = td.guide().lookup_path(&["data", "book", "title"]).unwrap();
        let t = td.nodes_of_type(title)[0];
        td.insert_fragment(t, 0, "<subtitle>s</subtitle>").unwrap();
        let delta = td.take_delta();
        let vd = ViewDelta {
            new_types: delta.new_types,
            ..ViewDelta::default()
        };
        let ctx = MaintainCtx { td: &td, vdg: &v };
        assert!(matches!(m.maintain(&vd, &ctx), Maintained::MustRecompute));
    }

    #[test]
    fn heap_bytes_counts_per_type_storage() {
        let (_g, _v, m) = setup("title { author { name } }");
        // Arrays: [1,1,1], [1,1,1,2], [1,1,2], [1,1,2,3], [1,1,2,3,4]
        // → 3+4+3+4+5 = 19 entries × 4 bytes.
        assert_eq!(m.heap_bytes(), 19 * 4);
    }
}
