//! Deriving PBN index-scan ranges from level arrays.
//!
//! §4.3: PBN-based systems keep per-type indexes keyed by number. To find
//! the virtual descendants of a node `x` among the nodes of a target
//! virtual type `t`, one can avoid testing every instance of `t`: the
//! compatibility constraint (`ta[i] = xa[i] ⇒ yn[i] = xn[i]`) pins a prefix
//! of the candidate's number whenever the constrained positions form a
//! contiguous prefix — which turns the predicate into a *range scan* over
//! the type index, exactly like a physical PBN subtree scan.
//!
//! When a constrained position lies beyond the contiguous prefix (possible
//! under exotic reshapings), the scan range stays valid but over-approximate
//! and the caller must re-check the predicate per candidate; [`ScanRange::exact`]
//! reports which situation holds. The A1 ablation benchmark measures the
//! win of range scans over full-type filtering.

use crate::levels::LevelArray;
use crate::vpbn::VPbnRef;
use vh_pbn::Pbn;

/// A document-order scan interval over a type index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanRange {
    /// Inclusive lower bound.
    pub lo: Pbn,
    /// Exclusive upper bound. `None` means "to the end of the index"
    /// (no constrained prefix — the whole type must be scanned).
    pub hi: Option<Pbn>,
    /// True when every compatibility constraint is subsumed by the range,
    /// so candidates inside it need no further number-level check.
    pub exact: bool,
}

impl ScanRange {
    /// The unconstrained range (scan everything, check everything).
    pub fn full() -> Self {
        ScanRange {
            lo: Pbn::empty(),
            hi: None,
            exact: false,
        }
    }

    /// True if `p` lies inside the range.
    pub fn contains(&self, p: &Pbn) -> bool {
        &self.lo <= p && self.hi.as_ref().is_none_or(|hi| p < hi)
    }
}

/// Computes the scan range over the index of a virtual type with level
/// array `ta`, for candidates related to the context node `x` by any
/// vertical virtual axis (ancestor/descendant/parent/child — they share the
/// compatibility core).
pub fn related_scan_range(x: &VPbnRef<'_>, ta: &LevelArray) -> ScanRange {
    let t = ta.levels();
    // Positions that constrain a candidate's number: i < |xn| (the context
    // must have a component there), i < |xa| and i < |ta| (both arrays must
    // cover it), with matching levels.
    let bound = x.n.len().min(x.a.len()).min(t.len());
    // Longest contiguous constrained prefix.
    let mut m = 0;
    while m < bound && t[m] == x.a[m] {
        m += 1;
    }
    // Any constrained position beyond the prefix?
    let exact = (m..bound).all(|i| t[i] != x.a[i]);
    if m == 0 {
        return ScanRange {
            lo: Pbn::empty(),
            hi: None,
            exact,
        };
    }
    let lo = Pbn::new(x.n[..m].to_vec());
    let hi = lo.sibling_successor();
    ScanRange {
        lo,
        hi: Some(hi),
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelMap;
    use crate::vdg::VDataGuide;
    use crate::vpbn::VPbn;
    use vh_dataguide::DataGuide;
    use vh_pbn::pbn;
    use vh_xml::builder::paper_figure2;

    fn world(spec: &str) -> (VDataGuide, LevelMap) {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        let v = VDataGuide::compile(spec, &g).unwrap();
        let m = LevelMap::build(&v, &g);
        (v, m)
    }

    #[test]
    fn descendants_of_a_title_scan_its_book_prefix() {
        let (v, m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let name = v.guide().lookup_path(&["title", "author", "name"]).unwrap();
        // Context: title 1.1.1 ([1,1,1]); target type: name ([1,1,2,3]).
        let x = VPbn::new(pbn![1, 1, 1], m.array(title).clone(), title);
        let r = related_scan_range(&x.as_ref(), m.array(name));
        // Constrained prefix: positions 1-2 (levels 1,1 match) → scan the
        // book-1 subtree [1.1, 1.2).
        assert_eq!(r.lo, pbn![1, 1]);
        assert_eq!(r.hi, Some(pbn![1, 2]));
        assert!(r.exact, "no constrained positions beyond the prefix");
        assert!(r.contains(&pbn![1, 1, 2, 1]));
        assert!(!r.contains(&pbn![1, 2, 2, 1]));
    }

    #[test]
    fn identity_transform_ranges_are_subtree_ranges() {
        let (v, m) = world("data { ** }");
        let book = v.guide().lookup_path(&["data", "book"]).unwrap();
        let name = v
            .guide()
            .lookup_path(&["data", "book", "author", "name"])
            .unwrap();
        let x = VPbn::new(pbn![1, 2], m.array(book).clone(), book);
        let r = related_scan_range(&x.as_ref(), m.array(name));
        // Exactly the physical subtree range of 1.2.
        assert_eq!(r.lo, pbn![1, 2]);
        assert_eq!(r.hi, Some(pbn![1, 3]));
        assert!(r.exact);
    }

    #[test]
    fn parent_lookup_range_from_a_case2_child() {
        // Inversion title { name { author } }: find the virtual parent
        // (name, [1,1,2,2]) of author 1.1.2 ([1,1,2,3]).
        let (v, m) = world("title { name { author } }");
        let name = v.guide().lookup_path(&["title", "name"]).unwrap();
        let author = v.guide().lookup_path(&["title", "name", "author"]).unwrap();
        let x = VPbn::new(pbn![1, 1, 2], m.array(author).clone(), author);
        let r = related_scan_range(&x.as_ref(), m.array(name));
        // Arrays agree on the full author number [1,1,2] vs [1,1,2]:
        // prefix = 1.1.2 → candidates are name nodes inside [1.1.2, 1.1.3).
        assert_eq!(r.lo, pbn![1, 1, 2]);
        assert_eq!(r.hi, Some(pbn![1, 1, 3]));
        assert!(r.exact);
        assert!(r.contains(&pbn![1, 1, 2, 1]));
    }

    #[test]
    fn unconstrained_when_no_shared_levels() {
        // A root-level context vs a root-level target of a different tree:
        // no position pins anything → full scan.
        let (v, m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let x = VPbn::new(pbn![1, 1, 1], m.array(title).clone(), title);
        // Craft a target array that never matches levels with the context.
        let ta = crate::levels::LevelArray::new(vec![2, 2, 2]);
        let r = related_scan_range(&x.as_ref(), &ta);
        assert_eq!(r.lo, Pbn::empty());
        assert_eq!(r.hi, None);
        assert!(r.exact, "no level ever matches, so nothing is constrained");
        assert!(r.contains(&pbn![9, 9]));
    }

    #[test]
    fn non_contiguous_constraints_make_the_range_inexact() {
        // Monotone arrays can still match non-contiguously: context levels
        // [1,2,2] vs target [1,1,2] agree at positions 0 and 2 but not 1.
        // The contiguous constrained prefix is one component long, and the
        // extra constraint beyond it forces per-candidate re-checking.
        let (v, _m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let x = VPbn::new(
            pbn![1, 2, 2],
            crate::levels::LevelArray::new(vec![1, 2, 2]),
            title,
        );
        let ta = crate::levels::LevelArray::new(vec![1, 1, 2]);
        let r = related_scan_range(&x.as_ref(), &ta);
        assert_eq!(r.lo, pbn![1], "contiguous prefix stops at position 1");
        assert_eq!(r.hi, Some(pbn![2]));
        assert!(
            !r.exact,
            "position 2 matches levels outside the prefix — candidates need re-checking"
        );
        // A target whose deeper levels never coincide stays exact.
        let ta2 = crate::levels::LevelArray::new(vec![1, 3, 3]);
        let r2 = related_scan_range(&x.as_ref(), &ta2);
        assert_eq!(r2.lo, pbn![1]);
        assert!(r2.exact);
    }

    #[test]
    fn full_range_contains_everything() {
        let r = ScanRange::full();
        assert!(r.contains(&pbn![1]));
        assert!(r.contains(&pbn![42, 7]));
    }
}
