//! Deriving PBN index-scan ranges from level arrays.
//!
//! §4.3: PBN-based systems keep per-type indexes keyed by number. To find
//! the virtual descendants of a node `x` among the nodes of a target
//! virtual type `t`, one can avoid testing every instance of `t`: the
//! compatibility constraint (`ta[i] = xa[i] ⇒ yn[i] = xn[i]`) pins a prefix
//! of the candidate's number whenever the constrained positions form a
//! contiguous prefix — which turns the predicate into a *range scan* over
//! the type index, exactly like a physical PBN subtree scan.
//!
//! When a constrained position lies beyond the contiguous prefix (possible
//! under exotic reshapings), the scan range stays valid but over-approximate
//! and the caller must re-check the predicate per candidate; [`ScanRange::exact`]
//! reports which situation holds. The A1 ablation benchmark measures the
//! win of range scans over full-type filtering.

use crate::levels::LevelMap;
use crate::vdg::{VDataGuide, VTypeId};
use crate::vpbn::VPbnRef;
use vh_dataguide::DataGuide;
use vh_pbn::Pbn;

/// A document-order scan interval over a type index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanRange {
    /// Inclusive lower bound.
    pub lo: Pbn,
    /// Exclusive upper bound. `None` means "to the end of the index"
    /// (no constrained prefix — the whole type must be scanned).
    pub hi: Option<Pbn>,
    /// True when every compatibility constraint is subsumed by the range,
    /// so candidates inside it need no further number-level check.
    pub exact: bool,
}

impl ScanRange {
    /// The unconstrained range (scan everything, check everything).
    pub fn full() -> Self {
        ScanRange {
            lo: Pbn::empty(),
            hi: None,
            exact: false,
        }
    }

    /// True if `p` lies inside the range.
    pub fn contains(&self, p: &Pbn) -> bool {
        &self.lo <= p && self.hi.as_ref().is_none_or(|hi| p < hi)
    }
}

/// The `(prefix length, exactness)` pair behind a scan range: how many
/// leading components of a related candidate's number are pinned to the
/// context's, and whether that prefix subsumes every compatibility
/// constraint. This is the allocation-free core of [`related_scan_range`],
/// and what byte-key range scans consume directly (the pinned prefix of
/// the context's *encoded* key bounds the candidates without ever decoding
/// a number).
pub fn related_prefix(x: &VPbnRef<'_>, ta: &[u32]) -> (usize, bool) {
    // Positions that constrain a candidate's number: i < |xn| (the context
    // must have a component there), i < |xa| and i < |ta| (both arrays must
    // cover it), with matching levels.
    let bound = x.n.len().min(x.a.len()).min(ta.len());
    // Longest contiguous constrained prefix.
    let mut m = 0;
    while m < bound && ta[m] == x.a[m] {
        m += 1;
    }
    // Any constrained position beyond the prefix?
    let exact = (m..bound).all(|i| ta[i] != x.a[i]);
    (m, exact)
}

/// Computes the scan range over the index of a virtual type with level
/// array `ta`, for candidates related to the context node `x` by any
/// vertical virtual axis (ancestor/descendant/parent/child — they share the
/// compatibility core).
pub fn related_scan_range(x: &VPbnRef<'_>, ta: &[u32]) -> ScanRange {
    let (m, exact) = related_prefix(x, ta);
    if m == 0 {
        return ScanRange {
            lo: Pbn::empty(),
            hi: None,
            exact,
        };
    }
    let lo = Pbn::from_comps(x.n[..m].to_vec());
    let hi = lo.subtree_bound();
    ScanRange {
        lo,
        hi: Some(hi),
        exact,
    }
}

/// Precomputed scan-range prefixes for every (context type, target type)
/// pair of a compiled view.
///
/// [`related_scan_range`] depends on the context node only through the
/// *length* of its number and its level array — and both are constant per
/// virtual type (a node's physical number has exactly `length(orig(vt))`
/// components, and level arrays are per-type by construction). So the
/// contiguous-prefix length `m` and the exactness flag can be computed
/// once per type pair and the per-node work drops to slicing the context
/// number — this is the "decoded vPBN comparisons' per-type prefix table"
/// artifact served by [`crate::cache::ExecCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixTables {
    /// Number of virtual types (the table is `n × n`).
    n: usize,
    /// Row-major `(context, target)` entries.
    entries: Vec<PrefixEntry>,
}

/// One `(context type, target type)` cell: prefix length and exactness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PrefixEntry {
    /// Length of the pinned number prefix (`m` in [`related_scan_range`]).
    m: u32,
    /// Whether candidates inside the range need no further number check.
    exact: bool,
}

impl PrefixTables {
    /// Precomputes all `(context, target)` cells for a compiled view.
    pub fn build(vdg: &VDataGuide, levels: &LevelMap, original: &DataGuide) -> Self {
        let n = vdg.len();
        let mut entries = Vec::with_capacity(n * n);
        for ci in 0..n {
            let ctx = VTypeId::from_index(ci);
            // A node of virtual type `ctx` keeps its physical number, whose
            // length is the depth of the node's *original* type.
            let num_len = original.length(vdg.original_type(ctx));
            let xa = levels.levels_of(ctx);
            for ti in 0..n {
                let t = levels.levels_of(VTypeId::from_index(ti));
                let bound = num_len.min(xa.len()).min(t.len());
                let mut m = 0;
                while m < bound && t[m] == xa[m] {
                    m += 1;
                }
                let exact = (m..bound).all(|i| t[i] != xa[i]);
                entries.push(PrefixEntry { m: m as u32, exact });
            }
        }
        PrefixTables { n, entries }
    }

    /// The scan range for candidates of type `target` related to context
    /// node `x` — identical to [`related_scan_range`] but O(m) instead of
    /// O(m + array comparisons), with the comparisons amortized at build
    /// time.
    pub fn range(&self, x: &VPbnRef<'_>, target: VTypeId) -> ScanRange {
        let e = self.entries[x.vtype.index() * self.n + target.index()];
        let m = e.m as usize;
        debug_assert!(m <= x.n.len(), "prefix never exceeds the context number");
        if m == 0 {
            return ScanRange {
                lo: Pbn::empty(),
                hi: None,
                exact: e.exact,
            };
        }
        let lo = Pbn::from_comps(x.n[..m].to_vec());
        let hi = lo.subtree_bound();
        ScanRange {
            lo,
            hi: Some(hi),
            exact: e.exact,
        }
    }

    /// The raw `(prefix length, exactness)` cell for a type pair — the
    /// allocation-free form of [`Self::range`] consumed by encoded-key
    /// range scans, which slice the context's key instead of building
    /// bound numbers.
    #[inline]
    pub fn prefix(&self, ctx: VTypeId, target: VTypeId) -> (usize, bool) {
        let e = self.entries[ctx.index() * self.n + target.index()];
        (e.m as usize, e.exact)
    }

    /// Number of virtual types covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate empty view.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Heap bytes of the table (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<PrefixEntry>()
    }
}

// oracle: rebuild_tables_oracle
impl crate::cache::MaintainView for PrefixTables {
    fn maintain(
        &self,
        delta: &crate::cache::ViewDelta,
        ctx: &crate::cache::MaintainCtx<'_>,
    ) -> crate::cache::Maintained<Self> {
        // Prefix tables depend only on (vdg, levels, original guide); both
        // inputs are unchanged exactly when the expansion itself is, so the
        // verdict delegates to the expansion's soundness check.
        if ctx.vdg.unaffected_by(&delta.new_types, ctx.td.guide()) {
            crate::cache::Maintained::Unchanged
        } else {
            crate::cache::Maintained::MustRecompute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::LevelMap;
    use crate::vdg::VDataGuide;
    use crate::vpbn::VPbn;
    use vh_dataguide::DataGuide;
    use vh_pbn::pbn;
    use vh_xml::builder::paper_figure2;

    fn world(spec: &str) -> (VDataGuide, LevelMap) {
        let (g, _) = DataGuide::from_document(&paper_figure2());
        let v = VDataGuide::compile(spec, &g).unwrap();
        let m = LevelMap::build(&v, &g);
        (v, m)
    }

    #[test]
    fn descendants_of_a_title_scan_its_book_prefix() {
        let (v, m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let name = v.guide().lookup_path(&["title", "author", "name"]).unwrap();
        // Context: title 1.1.1 ([1,1,1]); target type: name ([1,1,2,3]).
        let x = VPbn::new(pbn![1, 1, 1], m.array(title), title);
        let r = related_scan_range(&x.as_ref(), m.levels_of(name));
        // Constrained prefix: positions 1-2 (levels 1,1 match) → scan the
        // book-1 subtree [1.1, 1.2).
        assert_eq!(r.lo, pbn![1, 1]);
        assert_eq!(r.hi, Some(pbn![1, 1].subtree_bound()));
        assert!(r.exact, "no constrained positions beyond the prefix");
        assert!(r.contains(&pbn![1, 1, 2, 1]));
        assert!(!r.contains(&pbn![1, 2, 2, 1]));
    }

    #[test]
    fn identity_transform_ranges_are_subtree_ranges() {
        let (v, m) = world("data { ** }");
        let book = v.guide().lookup_path(&["data", "book"]).unwrap();
        let name = v
            .guide()
            .lookup_path(&["data", "book", "author", "name"])
            .unwrap();
        let x = VPbn::new(pbn![1, 2], m.array(book), book);
        let r = related_scan_range(&x.as_ref(), m.levels_of(name));
        // Exactly the physical subtree range of 1.2.
        assert_eq!(r.lo, pbn![1, 2]);
        assert_eq!(r.hi, Some(pbn![1, 2].subtree_bound()));
        assert!(r.exact);
    }

    #[test]
    fn parent_lookup_range_from_a_case2_child() {
        // Inversion title { name { author } }: find the virtual parent
        // (name, [1,1,2,2]) of author 1.1.2 ([1,1,2,3]).
        let (v, m) = world("title { name { author } }");
        let name = v.guide().lookup_path(&["title", "name"]).unwrap();
        let author = v.guide().lookup_path(&["title", "name", "author"]).unwrap();
        let x = VPbn::new(pbn![1, 1, 2], m.array(author), author);
        let r = related_scan_range(&x.as_ref(), m.levels_of(name));
        // Arrays agree on the full author number [1,1,2] vs [1,1,2]:
        // prefix = 1.1.2 → candidates are name nodes inside [1.1.2, 1.1.3).
        assert_eq!(r.lo, pbn![1, 1, 2]);
        assert_eq!(r.hi, Some(pbn![1, 1, 2].subtree_bound()));
        assert!(r.exact);
        assert!(r.contains(&pbn![1, 1, 2, 1]));
    }

    #[test]
    fn unconstrained_when_no_shared_levels() {
        // A root-level context vs a root-level target of a different tree:
        // no position pins anything → full scan.
        let (v, m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let x = VPbn::new(pbn![1, 1, 1], m.array(title), title);
        // Craft a target array that never matches levels with the context.
        let r = related_scan_range(&x.as_ref(), &[2, 2, 2]);
        assert_eq!(r.lo, Pbn::empty());
        assert_eq!(r.hi, None);
        assert!(r.exact, "no level ever matches, so nothing is constrained");
        assert!(r.contains(&pbn![9, 9]));
    }

    #[test]
    fn non_contiguous_constraints_make_the_range_inexact() {
        // Monotone arrays can still match non-contiguously: context levels
        // [1,2,2] vs target [1,1,2] agree at positions 0 and 2 but not 1.
        // The contiguous constrained prefix is one component long, and the
        // extra constraint beyond it forces per-candidate re-checking.
        let (v, _m) = world("title { author { name } }");
        let title = v.guide().lookup_path(&["title"]).unwrap();
        let x = VPbn::new(
            pbn![1, 2, 2],
            crate::levels::LevelArray::new(vec![1, 2, 2]),
            title,
        );
        let r = related_scan_range(&x.as_ref(), &[1, 1, 2]);
        assert_eq!(r.lo, pbn![1], "contiguous prefix stops at position 1");
        assert_eq!(r.hi, Some(pbn![1].subtree_bound()));
        assert!(
            !r.exact,
            "position 2 matches levels outside the prefix — candidates need re-checking"
        );
        // A target whose deeper levels never coincide stays exact.
        let r2 = related_scan_range(&x.as_ref(), &[1, 3, 3]);
        assert_eq!(r2.lo, pbn![1]);
        assert!(r2.exact);
    }

    #[test]
    fn full_range_contains_everything() {
        let r = ScanRange::full();
        assert!(r.contains(&pbn![1]));
        assert!(r.contains(&pbn![42, 7]));
    }

    /// Recompute oracle for [`PrefixTables::maintain`]: a from-scratch
    /// rebuild over the current guide, which an `Unchanged` verdict must
    /// match.
    fn rebuild_tables_oracle(
        vdg: &VDataGuide,
        levels: &LevelMap,
        original: &DataGuide,
    ) -> PrefixTables {
        PrefixTables::build(vdg, levels, original)
    }

    #[test]
    fn maintained_prefix_tables_match_the_rebuild_oracle() {
        use crate::cache::{MaintainCtx, MaintainView, Maintained, ViewDelta};
        use vh_dataguide::TypedDocument;

        let mut td = TypedDocument::analyze(paper_figure2());
        let v = VDataGuide::compile("title { author { name } }", td.guide()).unwrap();
        let m = LevelMap::build(&v, td.guide());
        let tables = PrefixTables::build(&v, &m, td.guide());

        // New type under an invisible parent: the tables survive and must
        // equal what a rebuild over the grown guide produces.
        let publisher = td
            .guide()
            .lookup_path(&["data", "book", "publisher"])
            .unwrap();
        let p = td.nodes_of_type(publisher)[0];
        td.insert_fragment(p, 0, "<note>x</note>").unwrap();
        let delta = td.take_delta();
        assert!(!delta.new_types.is_empty());
        let vd = ViewDelta {
            new_types: delta.new_types,
            ..ViewDelta::default()
        };
        let ctx = MaintainCtx { td: &td, vdg: &v };
        match tables.maintain(&vd, &ctx) {
            Maintained::Unchanged => {
                assert_eq!(tables, rebuild_tables_oracle(&v, &m, td.guide()));
            }
            _ => panic!("invisible-parent insert must keep the prefix tables"),
        }

        // New type whose name collides with a spec label tail: recompute.
        let t = td.nodes_of_type(publisher)[0];
        td.insert_fragment(t, 0, "<name>dup</name>").unwrap();
        let delta = td.take_delta();
        let vd = ViewDelta {
            new_types: delta.new_types,
            ..ViewDelta::default()
        };
        let ctx = MaintainCtx { td: &td, vdg: &v };
        assert!(matches!(
            tables.maintain(&vd, &ctx),
            Maintained::MustRecompute
        ));
    }

    #[test]
    fn prefix_tables_agree_with_related_scan_range_on_every_pair() {
        // Table lookups must be indistinguishable from the direct
        // computation for every (context node, target type) pair of the
        // paper document under several reshapings.
        let doc = paper_figure2();
        let typed = vh_dataguide::TypedDocument::analyze(doc);
        for spec in [
            "title { author { name } }",
            "title { name { author } }",
            "data { ** }",
            "book { publisher }",
        ] {
            let v = VDataGuide::compile(spec, typed.guide()).unwrap();
            let m = LevelMap::build(&v, typed.guide());
            let tables = PrefixTables::build(&v, &m, typed.guide());
            assert_eq!(tables.len(), v.len());
            assert!(!tables.is_empty());
            assert!(tables.heap_bytes() > 0);
            for ci in 0..v.len() {
                let ctx = crate::vdg::VTypeId::from_index(ci);
                for node in typed.nodes_of_type(v.original_type(ctx)) {
                    let num = typed.pbn().pbn_of(node);
                    let x = VPbn::new(num.clone(), m.array(ctx), ctx);
                    for ti in 0..v.len() {
                        let tgt = crate::vdg::VTypeId::from_index(ti);
                        let direct = related_scan_range(&x.as_ref(), m.levels_of(tgt));
                        let via_table = tables.range(&x.as_ref(), tgt);
                        assert_eq!(direct, via_table, "spec {spec}: ctx {ci} → tgt {ti}");
                        // The raw cell agrees with the direct computation.
                        assert_eq!(
                            tables.prefix(ctx, tgt),
                            related_prefix(&x.as_ref(), m.levels_of(tgt)),
                            "spec {spec}: prefix cell ctx {ci} → tgt {ti}"
                        );
                    }
                }
            }
        }
    }
}
