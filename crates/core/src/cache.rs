//! Sharded LRU cache for per-view compiled artifacts.
//!
//! Four artifacts are recomputed from scratch on every query in a naive
//! engine: the expanded [`VDataGuide`], the Algorithm-1 [`LevelMap`], the
//! [`PrefixTables`] of precomputed scan-range prefixes (all three pure
//! functions of `(document guide, transform spec)`), and the per-type
//! [`TypeIndex`] of the view, which additionally depends on the document's
//! nodes and is the only per-node-cost artifact — caching it makes warm
//! view opens O(1) in document size. [`ExecCache`] memoizes each behind a
//! [`ShardedLru`] keyed by [`ViewKey`] — the document URI, a fingerprint
//! of its DataGuide, and the transform spec — so re-registering a document
//! (which may change the guide) naturally misses, and
//! [`ExecCache::invalidate_uri`] evicts everything for a URI explicitly
//! (which is what keeps a re-registered same-shaped document from serving
//! a stale node index).
//!
//! The cache is `Sync`: shards are independent mutexes, counters are
//! atomics, and values are handed out as cheap clones (`Arc`s at the call
//! sites), so parallel query stages can share one cache without a global
//! lock. Hit/miss/eviction/invalidation counters are surfaced through
//! [`CacheStats`] alongside the storage layer's `StorageStats`.

use crate::levels::LevelMap;
use crate::range::PrefixTables;
use crate::vdg::VDataGuide;
use crate::vdoc::TypeIndex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use vh_dataguide::DataGuide;

/// Number of independent mutex-protected shards per map.
const SHARDS: usize = 8;

/// Default total entry capacity of each artifact map.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One shard: a key → (last-use tick, value) map.
struct Shard<K, V> {
    entries: HashMap<K, (u64, V)>,
}

/// A thread-safe, sharded, least-recently-used map.
///
/// Keys hash to one of `SHARDS` (8) independent mutexes; recency is a global
/// atomic tick stamped on every hit and insert, and eviction removes the
/// smallest-stamp entry of the full shard. Values must be cheap to clone —
/// callers store `Arc`s.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a map holding at most `capacity` entries (split evenly
    /// across shards, minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        ShardedLru {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            capacity_per_shard,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Locks the shard for `key`, recovering from poisoning (the cache
    /// holds only plain data, so a panicking holder leaves it consistent).
    fn shard_for(&self, key: &K) -> MutexGuard<'_, Shard<K, V>> {
        let mut h = std::hash::DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len();
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        let mut shard = self.shard_for(key);
        match shard.entries.get_mut(key) {
            Some((stamp, v)) => {
                *stamp = tick;
                let v = v.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the shard's least-recently-used
    /// entry if it is full and `key` is not already present.
    pub fn insert(&self, key: K, value: V) {
        let tick = self.next_tick();
        let mut shard = self.shard_for(&key);
        if shard.entries.len() >= self.capacity_per_shard && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, (tick, value));
    }

    /// Returns the cached value for `key`, or computes, stores and returns
    /// it. The computation runs outside the shard lock; two racing threads
    /// may both compute, but both arrive at the same pure-function value.
    pub fn get_or_try_insert<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let v = compute()?;
        self.insert(key.clone(), v.clone());
        Ok(v)
    }

    /// Removes every entry whose key fails `keep`, counting the removals
    /// as invalidations. Returns how many entries were dropped.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let before = shard.entries.len();
            shard.entries.retain(|k, _| keep(k));
            dropped += before - shard.entries.len();
        }
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                match s.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                }
                .entries
                .len()
            })
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry without counting invalidations.
    pub fn clear(&self) {
        for shard in &self.shards {
            match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
            .entries
            .clear();
        }
    }

    /// Counter snapshot plus current entry count.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Counter snapshot of one artifact map.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Live entries right now.
    pub entries: usize,
}

impl CacheCounters {
    /// Hit ratio in `[0, 1]`; `None` before any lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Per-artifact counters for the whole [`ExecCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// vDataGuide expansion cache.
    pub expansions: CacheCounters,
    /// Algorithm-1 level-map cache.
    pub levels: CacheCounters,
    /// Scan-range prefix-table cache.
    pub tables: CacheCounters,
    /// Per-type node-index cache.
    pub indexes: CacheCounters,
}

impl CacheStats {
    /// Total hits across all four artifact maps.
    pub fn total_hits(&self) -> u64 {
        self.expansions.hits + self.levels.hits + self.tables.hits + self.indexes.hits
    }

    /// Total misses across all four artifact maps.
    pub fn total_misses(&self) -> u64 {
        self.expansions.misses + self.levels.misses + self.tables.misses + self.indexes.misses
    }

    /// Total explicit invalidations across all four artifact maps.
    pub fn total_invalidations(&self) -> u64 {
        self.expansions.invalidations
            + self.levels.invalidations
            + self.tables.invalidations
            + self.indexes.invalidations
    }
}

/// Cache key of one compiled view: which document (URI), which shape of
/// that document (guide fingerprint — re-registering changed content
/// changes the fingerprint), and which transform spec.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Document URI.
    pub uri: String,
    /// Fingerprint of the document's DataGuide (see [`guide_fingerprint`]).
    pub guide: u64,
    /// The vDataGuide transform spec, verbatim.
    pub spec: String,
}

impl ViewKey {
    /// Builds a key from its parts.
    pub fn new(uri: impl Into<String>, guide: u64, spec: impl Into<String>) -> Self {
        ViewKey {
            uri: uri.into(),
            guide,
            spec: spec.into(),
        }
    }
}

/// Order-sensitive fingerprint of a DataGuide: hashes every type's path
/// and PBN length, so structural changes to the document schema produce a
/// different [`ViewKey`] even under the same URI.
pub fn guide_fingerprint(guide: &DataGuide) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    guide.len().hash(&mut h);
    for ty in guide.type_ids() {
        guide.path_string(ty).hash(&mut h);
        guide.length(ty).hash(&mut h);
    }
    h.finish()
}

/// The engine-wide artifact cache: one [`ShardedLru`] per compiled-view
/// artifact, shared across queries (and across threads — the whole struct
/// is `Sync`).
pub struct ExecCache {
    /// Expanded virtual guides keyed by view.
    pub expansions: ShardedLru<ViewKey, Arc<VDataGuide>>,
    /// Algorithm-1 level maps keyed by view.
    pub levels: ShardedLru<ViewKey, Arc<LevelMap>>,
    /// Precomputed scan-range prefix tables keyed by view.
    pub tables: ShardedLru<ViewKey, Arc<PrefixTables>>,
    /// Per-type node indexes keyed by view. Unlike the other artifacts this
    /// depends on the document's *nodes*, not just its guide; the
    /// [`ViewKey`] URI plus [`ExecCache::invalidate_uri`] on re-register
    /// keep it from going stale.
    pub indexes: ShardedLru<ViewKey, Arc<TypeIndex>>,
}

impl ExecCache {
    /// Creates a cache where each artifact map holds up to `capacity`
    /// entries.
    pub fn new(capacity: usize) -> Self {
        ExecCache {
            expansions: ShardedLru::new(capacity),
            levels: ShardedLru::new(capacity),
            tables: ShardedLru::new(capacity),
            indexes: ShardedLru::new(capacity),
        }
    }

    /// Evicts every artifact compiled for `uri` (all specs, all guide
    /// fingerprints). Returns the number of entries dropped.
    pub fn invalidate_uri(&self, uri: &str) -> usize {
        self.expansions.retain(|k| k.uri != uri)
            + self.levels.retain(|k| k.uri != uri)
            + self.tables.retain(|k| k.uri != uri)
            + self.indexes.retain(|k| k.uri != uri)
    }

    /// Drops everything, without counting invalidations.
    pub fn clear(&self) {
        self.expansions.clear();
        self.levels.clear();
        self.tables.clear();
        self.indexes.clear();
    }

    /// Counter snapshot across the four artifact maps.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            expansions: self.expansions.counters(),
            levels: self.levels.counters(),
            tables: self.tables.counters(),
            indexes: self.indexes.counters(),
        }
    }
}

impl Default for ExecCache {
    fn default() -> Self {
        ExecCache::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(16);
        assert_eq!(lru.get(&1), None);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), Some(10));
        let c = lru.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        // Capacity 8 over 8 shards → one entry per shard. Two keys in the
        // same shard force an eviction of the older one.
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8);
        let mut in_shard: Vec<u32> = Vec::new();
        let mut k = 0;
        while in_shard.len() < 2 {
            let mut h = std::hash::DefaultHasher::new();
            k.hash(&mut h);
            if (h.finish() as usize) % SHARDS == 0 {
                in_shard.push(k);
            }
            k += 1;
        }
        lru.insert(in_shard[0], 100);
        lru.insert(in_shard[1], 200);
        assert_eq!(lru.counters().evictions, 1);
        assert_eq!(lru.get(&in_shard[0]), None, "older entry evicted");
        assert_eq!(lru.get(&in_shard[1]), Some(200));
    }

    #[test]
    fn get_or_try_insert_computes_once_per_key() {
        let lru: ShardedLru<String, u32> = ShardedLru::new(16);
        let key = "k".to_string();
        let v: Result<u32, ()> = lru.get_or_try_insert(&key, || Ok(7));
        assert_eq!(v, Ok(7));
        let v2: Result<u32, ()> = lru.get_or_try_insert(&key, || panic!("cached"));
        assert_eq!(v2, Ok(7));
        let err: Result<u32, &str> = lru.get_or_try_insert(&"e".to_string(), || Err("boom"));
        assert_eq!(err, Err("boom"));
        assert_eq!(lru.len(), 1, "failed computations are not cached");
    }

    #[test]
    fn retain_counts_invalidations() {
        let cache = ExecCache::new(16);
        let a = ViewKey::new("a.xml", 1, "title { author }");
        let b = ViewKey::new("b.xml", 2, "title { author }");
        let g = Arc::new(LevelMap::build(
            &VDataGuide::compile("data { ** }", &test_guide()).unwrap(),
            &test_guide(),
        ));
        cache.levels.insert(a.clone(), g.clone());
        cache.levels.insert(b.clone(), g);
        assert_eq!(cache.invalidate_uri("a.xml"), 1);
        assert_eq!(cache.levels.len(), 1);
        assert!(cache.levels.get(&a).is_none());
        assert!(cache.levels.get(&b).is_some());
        assert_eq!(cache.stats().levels.invalidations, 1);
        assert_eq!(cache.stats().total_invalidations(), 1);
    }

    #[test]
    fn fingerprint_tracks_guide_shape() {
        let g1 = test_guide();
        let g2 = test_guide();
        assert_eq!(guide_fingerprint(&g1), guide_fingerprint(&g2));
        let (other, _) =
            DataGuide::from_document(&vh_xml::parse("mem://t", "<data><extra/></data>").unwrap());
        assert_ne!(guide_fingerprint(&g1), guide_fingerprint(&other));
    }

    #[test]
    fn hit_ratio_reporting() {
        let c = CacheCounters::default();
        assert_eq!(c.hit_ratio(), None);
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            ..CacheCounters::default()
        };
        assert_eq!(c.hit_ratio(), Some(0.75));
    }

    fn test_guide() -> DataGuide {
        let (g, _) = DataGuide::from_document(&vh_xml::builder::paper_figure2());
        g
    }
}
