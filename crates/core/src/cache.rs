//! Sharded LRU cache for per-view compiled artifacts.
//!
//! Four artifacts are recomputed from scratch on every query in a naive
//! engine: the expanded [`VDataGuide`], the Algorithm-1 [`LevelMap`], the
//! [`PrefixTables`] of precomputed scan-range prefixes (all three pure
//! functions of `(document guide, transform spec)`), and the per-type
//! [`TypeIndex`] of the view, which additionally depends on the document's
//! nodes and is the only per-node-cost artifact — caching it makes warm
//! view opens O(1) in document size. [`ExecCache`] memoizes each behind a
//! [`ShardedLru`] keyed by [`ViewKey`] — the document URI, a fingerprint
//! of its DataGuide, and the transform spec — so re-registering a document
//! (which may change the guide) naturally misses, and
//! [`ExecCache::invalidate_uri`] evicts everything for a URI explicitly
//! (which is what keeps a re-registered same-shaped document from serving
//! a stale node index).
//!
//! The cache is `Sync`: shards are independent mutexes, counters are
//! atomics, and values are handed out as cheap clones (`Arc`s at the call
//! sites), so parallel query stages can share one cache without a global
//! lock. Hit/miss/eviction/invalidation counters are surfaced through
//! [`CacheStats`] alongside the storage layer's `StorageStats`.
//!
//! ## Delta-aware maintenance
//!
//! Since PR 6 documents are mutable, and a cache that evicts a URI's
//! every artifact per edit re-pays the full compile-and-index cost the
//! virtual-hierarchy design exists to avoid. The maintenance layer here
//! keeps warm entries warm: the engine derives a [`ViewDelta`] from each
//! committed edit batch (the dataguide edit journal plus the guide's
//! new-type tail) and [`ExecCache::route_delta`] walks the URI's entries,
//! asking each artifact to [`MaintainView::maintain`] itself. The three
//! guide-shaped artifacts are pure functions of `(spec, guide)` and
//! survive untouched whenever the delta provably cannot change their
//! recompile ([`VDataGuide::unaffected_by`]); the per-node [`TypeIndex`]
//! is spliced in place. A [`MaintenancePolicy`] cost model (delta size
//! vs. entry size vs. the observed rebuild time fed back by the engine)
//! falls back to eviction when maintenance would be slower, and an
//! overflowed journal or an explicit `Engine::compact()` falls back to
//! full eviction — both counted as `fallback_evictions`. Maintained
//! entries are re-keyed to the post-edit guide fingerprint and stamped
//! ([`Stamped`]) with the document generation, so a stale entry can
//! never satisfy a lookup even when an edit leaves the fingerprint
//! unchanged (inserting already-interned types does exactly that).

use crate::levels::LevelMap;
use crate::range::PrefixTables;
use crate::vdg::VDataGuide;
use crate::vdoc::TypeIndex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use vh_dataguide::{DataGuide, TouchedNode, TypeId, TypedDocument};

/// Number of independent mutex-protected shards per map.
const SHARDS: usize = 8;

/// Default total entry capacity of each artifact map.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One shard: a key → (last-use tick, value) map.
struct Shard<K, V> {
    entries: HashMap<K, (u64, V)>,
}

/// A thread-safe, sharded, least-recently-used map.
///
/// Keys hash to one of `SHARDS` (8) independent mutexes; recency is a global
/// atomic tick stamped on every hit and insert, and eviction removes the
/// smallest-stamp entry of the full shard. Values must be cheap to clone —
/// callers store `Arc`s.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    capacity_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a map holding at most `capacity` entries (split evenly
    /// across shards, minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        ShardedLru {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            capacity_per_shard,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Locks the shard for `key`, recovering from poisoning (the cache
    /// holds only plain data, so a panicking holder leaves it consistent).
    fn shard_for(&self, key: &K) -> MutexGuard<'_, Shard<K, V>> {
        let mut h = std::hash::DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len();
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        let mut shard = self.shard_for(key);
        match shard.entries.get_mut(key) {
            Some((stamp, v)) => {
                *stamp = tick;
                let v = v.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value`, evicting the shard's least-recently-used
    /// entry if it is full and `key` is not already present.
    pub fn insert(&self, key: K, value: V) {
        let tick = self.next_tick();
        let mut shard = self.shard_for(&key);
        if shard.entries.len() >= self.capacity_per_shard && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(key, (tick, value));
    }

    /// Returns the cached value for `key`, or computes, stores and returns
    /// it. The computation runs outside the shard lock; two racing threads
    /// may both compute, but both arrive at the same pure-function value.
    pub fn get_or_try_insert<E>(
        &self,
        key: &K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        let v = compute()?;
        self.insert(key.clone(), v.clone());
        Ok(v)
    }

    /// Looks up `key` without touching recency or the hit/miss counters —
    /// the maintenance path inspects entries without skewing the stats
    /// queries see.
    pub fn peek(&self, key: &K) -> Option<V> {
        self.shard_for(key).entries.get(key).map(|(_, v)| v.clone())
    }

    /// Removes `key` without counting an invalidation (used to re-key a
    /// maintained entry, which is a move, not a drop).
    pub fn take(&self, key: &K) -> Option<V> {
        self.shard_for(key).entries.remove(key).map(|(_, v)| v)
    }

    /// Removes `key`, counting an invalidation when it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        let v = self.take(key);
        if v.is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// The keys currently cached that satisfy `f`.
    pub fn keys_matching(&self, f: impl Fn(&K) -> bool) -> Vec<K> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            out.extend(shard.entries.keys().filter(|k| f(k)).cloned());
        }
        out
    }

    /// Removes every entry whose key fails `keep`, counting the removals
    /// as invalidations. Returns how many entries were dropped.
    pub fn retain(&self, keep: impl Fn(&K) -> bool) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let before = shard.entries.len();
            shard.entries.retain(|k, _| keep(k));
            dropped += before - shard.entries.len();
        }
        self.invalidations
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                match s.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                }
                .entries
                .len()
            })
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry without counting invalidations.
    pub fn clear(&self) {
        for shard in &self.shards {
            match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
            .entries
            .clear();
        }
    }

    /// Counter snapshot plus current entry count.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Counter snapshot of one artifact map.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped by LRU capacity pressure.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Live entries right now.
    pub entries: usize,
}

impl CacheCounters {
    /// Hit ratio in `[0, 1]`; `None` before any lookup.
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }
}

/// Per-artifact counters for the whole [`ExecCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// vDataGuide expansion cache.
    pub expansions: CacheCounters,
    /// Algorithm-1 level-map cache.
    pub levels: CacheCounters,
    /// Scan-range prefix-table cache.
    pub tables: CacheCounters,
    /// Per-type node-index cache.
    pub indexes: CacheCounters,
    /// Entries kept alive across edits by delta maintenance.
    pub maintained: u64,
    /// Entries a delta invalidated (recomputed on their next open).
    pub recomputed: u64,
    /// Entries dropped by the maintenance fallback: the cost model chose
    /// recomputation, the journal overflowed, or an explicit compaction
    /// rewrote the arena.
    pub fallback_evictions: u64,
}

impl CacheStats {
    /// Total hits across all four artifact maps.
    pub fn total_hits(&self) -> u64 {
        self.expansions.hits + self.levels.hits + self.tables.hits + self.indexes.hits
    }

    /// Total misses across all four artifact maps.
    pub fn total_misses(&self) -> u64 {
        self.expansions.misses + self.levels.misses + self.tables.misses + self.indexes.misses
    }

    /// Total explicit invalidations across all four artifact maps.
    pub fn total_invalidations(&self) -> u64 {
        self.expansions.invalidations
            + self.levels.invalidations
            + self.tables.invalidations
            + self.indexes.invalidations
    }
}

/// Cache key of one compiled view: which document (URI), which shape of
/// that document (guide fingerprint — re-registering changed content
/// changes the fingerprint), and which transform spec.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Document URI.
    pub uri: String,
    /// Fingerprint of the document's DataGuide (see [`guide_fingerprint`]).
    pub guide: u64,
    /// The vDataGuide transform spec, verbatim.
    pub spec: String,
}

impl ViewKey {
    /// Builds a key from its parts.
    pub fn new(uri: impl Into<String>, guide: u64, spec: impl Into<String>) -> Self {
        ViewKey {
            uri: uri.into(),
            guide,
            spec: spec.into(),
        }
    }
}

/// Order-sensitive fingerprint of a DataGuide: hashes every type's path
/// and PBN length, so structural changes to the document schema produce a
/// different [`ViewKey`] even under the same URI.
pub fn guide_fingerprint(guide: &DataGuide) -> u64 {
    let mut h = std::hash::DefaultHasher::new();
    guide.len().hash(&mut h);
    for ty in guide.type_ids() {
        guide.path_string(ty).hash(&mut h);
        guide.length(ty).hash(&mut h);
    }
    h.finish()
}

// ------------------------------------------------- delta maintenance ---

/// A compact description of what one committed edit batch changed in a
/// document, derived by the engine from the dataguide edit journal and
/// the arena delta segment, and routed to the URI's cached entries by
/// [`ExecCache::route_delta`] instead of evicting them.
#[derive(Clone, Debug, Default)]
pub struct ViewDelta {
    /// The edited document's URI.
    pub uri: String,
    /// Guide fingerprint before the batch — live entries are keyed by it.
    pub old_fp: u64,
    /// Guide fingerprint after the batch — maintained entries are re-keyed
    /// to it (equal to `old_fp` when no new types interned).
    pub new_fp: u64,
    /// Document generation after the batch; maintained entries are
    /// restamped with it.
    pub gen: u64,
    /// Guide types the batch interned (the contiguous tail of the type
    /// table — a strong DataGuide only grows).
    pub new_types: Vec<TypeId>,
    /// Node-level touches in chronological order.
    pub touched: Vec<TouchedNode>,
    /// Encoded byte-key bounds spanning every touched node's number at
    /// touch time (`None` for value-only batches).
    pub key_range: Option<(Vec<u8>, Vec<u8>)>,
    /// Post-drain arena slot bracket of the touched nodes still alive
    /// (`None` when none survive).
    pub slot_range: Option<(usize, usize)>,
    /// The edit journal overflowed: `touched` is incomplete and every
    /// entry for the URI must fall back to eviction.
    pub overflowed: bool,
}

/// A cached value tagged with the document generation it reflects and
/// whether its last producer was delta maintenance (vs. a fresh compute).
/// The stamp is the second staleness guard behind the [`ViewKey`]
/// fingerprint: an edit that only re-interns existing types leaves the
/// fingerprint unchanged while still moving nodes, so lookups compare
/// generations too.
#[derive(Clone, Debug)]
pub struct Stamped<V> {
    /// Document generation this value is valid for.
    pub gen: u64,
    /// True when the value last survived an edit via
    /// [`MaintainView::maintain`] rather than a fresh compute.
    pub maintained: bool,
    /// The artifact itself.
    pub value: V,
}

impl<V> Stamped<V> {
    /// Stamps a freshly computed value for generation `gen`.
    pub fn fresh(gen: u64, value: V) -> Self {
        Stamped {
            gen,
            maintained: false,
            value,
        }
    }
}

/// Verdict of one maintenance attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Maintained<T> {
    /// The delta cannot change the artifact; keep the cached value.
    Unchanged,
    /// The artifact was spliced into an updated value.
    Replaced(T),
    /// The delta invalidates the artifact; recompute on the next open.
    MustRecompute,
}

/// Context handed to [`MaintainView::maintain`]: the document *after* the
/// batch (mutated and drained) and the entry's own compiled expansion.
pub struct MaintainCtx<'a> {
    /// The edited, already-compacted document.
    pub td: &'a TypedDocument,
    /// The compiled expansion of the entry's view.
    pub vdg: &'a VDataGuide,
}

/// Delta maintenance for one cached artifact family: given what an edit
/// batch changed, produce the artifact's post-edit value — or declare
/// that only a recompute can. Every implementation must keep a
/// recompute-oracle test twin in its own file (`// oracle: <name>`,
/// enforced by the vh-vet `oracle-twin` lint): the twin rebuilds the
/// artifact from scratch and proves the maintained value identical.
pub trait MaintainView: Sized {
    /// Maintains `self` under `delta`, or returns
    /// [`Maintained::MustRecompute`].
    fn maintain(&self, delta: &ViewDelta, ctx: &MaintainCtx<'_>) -> Maintained<Self>;
}

/// The cost model deciding whether splicing a delta into a per-node
/// artifact beats recomputing it. Estimated maintenance cost is a clone
/// of the entry plus a binary-search insert per journal op; estimated
/// rebuild cost is the engine-observed rebuild time for the artifact
/// family when available (EWMA, fed by [`ExecCache::note_rebuild`]), or
/// a per-node constant until one is observed.
#[derive(Clone, Copy, Debug)]
pub struct MaintenancePolicy {
    /// Estimated cost of cloning one indexed node during a splice (ns).
    pub clone_node_ns: u64,
    /// Estimated cost of one journal-op splice (ns).
    pub splice_op_ns: u64,
    /// Assumed per-node rebuild cost before any observation (ns).
    pub rebuild_node_ns: u64,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            clone_node_ns: 2,
            splice_op_ns: 200,
            rebuild_node_ns: 20,
        }
    }
}

impl MaintenancePolicy {
    /// True when maintaining an entry of `entry_nodes` nodes under a
    /// delta of `delta_ops` journal ops is estimated cheaper than the
    /// rebuild (`observed_rebuild_ns` = 0 means "never observed").
    pub fn should_maintain(
        &self,
        delta_ops: usize,
        entry_nodes: usize,
        observed_rebuild_ns: u64,
    ) -> bool {
        if delta_ops == 0 {
            return true;
        }
        let maintain =
            entry_nodes as u64 * self.clone_node_ns + delta_ops as u64 * self.splice_op_ns;
        let rebuild = if observed_rebuild_ns > 0 {
            observed_rebuild_ns
        } else {
            entry_nodes as u64 * self.rebuild_node_ns
        };
        maintain <= rebuild
    }
}

/// The four artifact families of the cache, for rebuild-time feedback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Artifact {
    /// vDataGuide expansions.
    Expansions,
    /// Level maps.
    Levels,
    /// Prefix tables.
    Tables,
    /// Per-type node indexes.
    Indexes,
}

/// What routing one [`ViewDelta`] did to its URI's cached entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Entries kept alive (updated in place or proven unchanged).
    pub maintained: u64,
    /// Entries the delta invalidated; recomputed on their next open.
    pub recomputed: u64,
    /// Entries dropped by the cost model or an overflowed journal even
    /// though the delta was routable.
    pub fallback_evictions: u64,
}

/// The engine-wide artifact cache: one [`ShardedLru`] per compiled-view
/// artifact, shared across queries (and across threads — the whole struct
/// is `Sync`).
pub struct ExecCache {
    /// Expanded virtual guides keyed by view.
    pub expansions: ShardedLru<ViewKey, Stamped<Arc<VDataGuide>>>,
    /// Algorithm-1 level maps keyed by view.
    pub levels: ShardedLru<ViewKey, Stamped<Arc<LevelMap>>>,
    /// Precomputed scan-range prefix tables keyed by view.
    pub tables: ShardedLru<ViewKey, Stamped<Arc<PrefixTables>>>,
    /// Per-type node indexes keyed by view. Unlike the other artifacts this
    /// depends on the document's *nodes*, not just its guide; deltas are
    /// spliced into it by [`ExecCache::route_delta`], and
    /// [`ExecCache::invalidate_uri`] on re-register keeps a re-registered
    /// same-shaped document from serving a stale index.
    pub indexes: ShardedLru<ViewKey, Stamped<Arc<TypeIndex>>>,
    /// Maintain-vs-recompute cost model for the per-node index.
    policy: MaintenancePolicy,
    /// EWMA observed rebuild nanoseconds per artifact family
    /// (expansions, levels, tables, indexes).
    rebuild_ns: [AtomicU64; 4],
    maintained: AtomicU64,
    recomputed: AtomicU64,
    fallback_evictions: AtomicU64,
    /// Seqlock-style generation stamp over the maintenance counters: odd
    /// while a delta route or fallback invalidation is mid-flight,
    /// bumped to even when it commits. [`ExecCache::stats`] retries
    /// until it reads the same even epoch on both sides, so a snapshot
    /// can never observe a half-applied batch (entries dropped but the
    /// maintained/recomputed totals not yet accounted).
    epoch: AtomicU64,
}

/// RAII writer section of the [`ExecCache`] epoch seqlock: entering makes
/// the epoch odd, dropping makes it even again (panic-safe — a poisoned
/// route still closes its epoch, leaving readers live).
struct EpochWriter<'a>(&'a AtomicU64);

impl Drop for EpochWriter<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

impl ExecCache {
    /// Creates a cache where each artifact map holds up to `capacity`
    /// entries.
    pub fn new(capacity: usize) -> Self {
        ExecCache {
            expansions: ShardedLru::new(capacity),
            levels: ShardedLru::new(capacity),
            tables: ShardedLru::new(capacity),
            indexes: ShardedLru::new(capacity),
            policy: MaintenancePolicy::default(),
            rebuild_ns: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            maintained: AtomicU64::new(0),
            recomputed: AtomicU64::new(0),
            fallback_evictions: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Opens a maintenance writer section: the epoch goes odd until the
    /// returned guard drops. Sections never nest — `route_delta` and the
    /// public `fallback_invalidate_uri` each open exactly one.
    fn begin_maintenance(&self) -> EpochWriter<'_> {
        self.epoch.fetch_add(1, Ordering::Acquire);
        EpochWriter(&self.epoch)
    }

    /// The current maintenance epoch: even when quiescent, odd while a
    /// delta route or fallback invalidation is in flight. Composite
    /// readers (e.g. `Engine::snapshot`) can bracket multi-field reads
    /// with two calls and retry on a mismatch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Evicts every artifact compiled for `uri` (all specs, all guide
    /// fingerprints). Returns the number of entries dropped.
    pub fn invalidate_uri(&self, uri: &str) -> usize {
        self.expansions.retain(|k| k.uri != uri)
            + self.levels.retain(|k| k.uri != uri)
            + self.tables.retain(|k| k.uri != uri)
            + self.indexes.retain(|k| k.uri != uri)
    }

    /// The maintenance hard fallback: evicts everything for `uri` and
    /// counts the drops as fallback evictions. Used when an explicit
    /// compaction (or a recovery replay the engine cannot model) makes
    /// maintenance claims unsafe.
    pub fn fallback_invalidate_uri(&self, uri: &str) -> usize {
        let _epoch = self.begin_maintenance();
        self.fallback_invalidate_inner(uri)
    }

    /// [`ExecCache::fallback_invalidate_uri`] without the epoch bracket,
    /// for callers (the delta router) already inside a writer section.
    fn fallback_invalidate_inner(&self, uri: &str) -> usize {
        let dropped = self.invalidate_uri(uri);
        self.fallback_evictions
            .fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Feeds one observed from-scratch rebuild time (ns) into the cost
    /// model's per-family EWMA.
    pub fn note_rebuild(&self, artifact: Artifact, ns: u64) {
        let cell = &self.rebuild_ns[artifact as usize];
        let old = cell.load(Ordering::Relaxed);
        let next = if old == 0 { ns } else { (3 * old + ns) / 4 };
        cell.store(next, Ordering::Relaxed);
    }

    /// The EWMA observed rebuild time of one artifact family (0 until
    /// observed).
    pub fn observed_rebuild_ns(&self, artifact: Artifact) -> u64 {
        self.rebuild_ns[artifact as usize].load(Ordering::Relaxed)
    }

    /// The maintain-vs-recompute cost model in force.
    pub fn policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Replaces the maintain-vs-recompute cost model.
    pub fn set_policy(&mut self, policy: MaintenancePolicy) {
        self.policy = policy;
    }

    /// Routes one edit-batch delta to every cached entry of its URI:
    /// maintainable entries are updated (and re-keyed to the post-edit
    /// fingerprint, restamped with the new generation), entries the delta
    /// invalidates are dropped for recomputation, and entries whose
    /// maintenance the cost model rejects are dropped as fallback
    /// evictions. `td` is the document *after* the batch (drained).
    pub fn route_delta(&self, delta: &ViewDelta, td: &TypedDocument) -> RouteOutcome {
        let _epoch = self.begin_maintenance();
        let mut out = RouteOutcome::default();
        if delta.overflowed {
            out.fallback_evictions = self.fallback_invalidate_inner(&delta.uri) as u64;
            return out;
        }
        let of_uri = |k: &ViewKey| k.uri == delta.uri;
        let mut keys: Vec<ViewKey> = Vec::new();
        for k in self
            .expansions
            .keys_matching(of_uri)
            .into_iter()
            .chain(self.levels.keys_matching(of_uri))
            .chain(self.tables.keys_matching(of_uri))
            .chain(self.indexes.keys_matching(of_uri))
        {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        for key in keys {
            if key.guide != delta.old_fp {
                // A leftover keyed under an older guide shape: no future
                // lookup can reach it, so drop it as a plain invalidation.
                self.drop_key(&key);
                continue;
            }
            let Some(exp) = self.expansions.peek(&key) else {
                // The expansion fell out of the LRU; its dependents cannot
                // be re-validated without it.
                out.recomputed += self.drop_key(&key) as u64;
                continue;
            };
            let ctx = MaintainCtx {
                td,
                vdg: &exp.value,
            };
            let new_key = ViewKey::new(key.uri.clone(), delta.new_fp, key.spec.clone());
            route_one(&self.expansions, &key, &new_key, delta, &ctx, &mut out);
            route_one(&self.levels, &key, &new_key, delta, &ctx, &mut out);
            route_one(&self.tables, &key, &new_key, delta, &ctx, &mut out);
            // The per-node index additionally passes the cost model.
            if let Some(idx) = self.indexes.peek(&key) {
                let affordable = self.policy.should_maintain(
                    delta.touched.len(),
                    idx.value.total_nodes(),
                    self.observed_rebuild_ns(Artifact::Indexes),
                );
                if affordable {
                    route_one(&self.indexes, &key, &new_key, delta, &ctx, &mut out);
                } else {
                    self.indexes.remove(&key);
                    out.fallback_evictions += 1;
                }
            }
        }
        self.maintained.fetch_add(out.maintained, Ordering::Relaxed);
        self.recomputed.fetch_add(out.recomputed, Ordering::Relaxed);
        self.fallback_evictions
            .fetch_add(out.fallback_evictions, Ordering::Relaxed);
        out
    }

    /// Drops `key` from all four maps; returns how many entries existed.
    fn drop_key(&self, key: &ViewKey) -> usize {
        usize::from(self.expansions.remove(key).is_some())
            + usize::from(self.levels.remove(key).is_some())
            + usize::from(self.tables.remove(key).is_some())
            + usize::from(self.indexes.remove(key).is_some())
    }

    /// Drops everything, without counting invalidations.
    pub fn clear(&self) {
        self.expansions.clear();
        self.levels.clear();
        self.tables.clear();
        self.indexes.clear();
    }

    /// Counter snapshot across the four artifact maps, taken under a
    /// stable maintenance epoch: if a delta route or fallback
    /// invalidation is in flight (epoch odd) or commits mid-read (epoch
    /// moved), the read retries, so the returned stats never mix
    /// pre-batch entry counts with post-batch maintenance totals.
    pub fn stats(&self) -> CacheStats {
        loop {
            let before = self.epoch();
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let stats = CacheStats {
                expansions: self.expansions.counters(),
                levels: self.levels.counters(),
                tables: self.tables.counters(),
                indexes: self.indexes.counters(),
                maintained: self.maintained.load(Ordering::Relaxed),
                recomputed: self.recomputed.load(Ordering::Relaxed),
                fallback_evictions: self.fallback_evictions.load(Ordering::Relaxed),
            };
            if self.epoch() == before {
                return stats;
            }
        }
    }
}

/// Routes one delta through one artifact map entry: maintained values are
/// re-keyed to `new_key` and restamped, invalidated ones dropped.
fn route_one<T: MaintainView>(
    map: &ShardedLru<ViewKey, Stamped<Arc<T>>>,
    key: &ViewKey,
    new_key: &ViewKey,
    delta: &ViewDelta,
    ctx: &MaintainCtx<'_>,
    out: &mut RouteOutcome,
) {
    let Some(entry) = map.peek(key) else {
        return;
    };
    let kept = match entry.value.maintain(delta, ctx) {
        Maintained::Unchanged => Some(entry.value),
        Maintained::Replaced(v) => Some(Arc::new(v)),
        Maintained::MustRecompute => None,
    };
    match kept {
        Some(value) => {
            if new_key != key {
                map.take(key);
            }
            map.insert(
                new_key.clone(),
                Stamped {
                    gen: delta.gen,
                    maintained: true,
                    value,
                },
            );
            out.maintained += 1;
        }
        None => {
            map.remove(key);
            out.recomputed += 1;
        }
    }
}

impl Default for ExecCache {
    fn default() -> Self {
        ExecCache::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let lru: ShardedLru<u32, u32> = ShardedLru::new(16);
        assert_eq!(lru.get(&1), None);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), Some(10));
        let c = lru.counters();
        assert_eq!((c.hits, c.misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        // Capacity 8 over 8 shards → one entry per shard. Two keys in the
        // same shard force an eviction of the older one.
        let lru: ShardedLru<u32, u32> = ShardedLru::new(8);
        let mut in_shard: Vec<u32> = Vec::new();
        let mut k = 0;
        while in_shard.len() < 2 {
            let mut h = std::hash::DefaultHasher::new();
            k.hash(&mut h);
            if (h.finish() as usize) % SHARDS == 0 {
                in_shard.push(k);
            }
            k += 1;
        }
        lru.insert(in_shard[0], 100);
        lru.insert(in_shard[1], 200);
        assert_eq!(lru.counters().evictions, 1);
        assert_eq!(lru.get(&in_shard[0]), None, "older entry evicted");
        assert_eq!(lru.get(&in_shard[1]), Some(200));
    }

    #[test]
    fn get_or_try_insert_computes_once_per_key() {
        let lru: ShardedLru<String, u32> = ShardedLru::new(16);
        let key = "k".to_string();
        let v: Result<u32, ()> = lru.get_or_try_insert(&key, || Ok(7));
        assert_eq!(v, Ok(7));
        let v2: Result<u32, ()> = lru.get_or_try_insert(&key, || panic!("cached"));
        assert_eq!(v2, Ok(7));
        let err: Result<u32, &str> = lru.get_or_try_insert(&"e".to_string(), || Err("boom"));
        assert_eq!(err, Err("boom"));
        assert_eq!(lru.len(), 1, "failed computations are not cached");
    }

    #[test]
    fn retain_counts_invalidations() {
        let cache = ExecCache::new(16);
        let a = ViewKey::new("a.xml", 1, "title { author }");
        let b = ViewKey::new("b.xml", 2, "title { author }");
        let g = Arc::new(LevelMap::build(
            &VDataGuide::compile("data { ** }", &test_guide()).unwrap(),
            &test_guide(),
        ));
        cache.levels.insert(a.clone(), Stamped::fresh(0, g.clone()));
        cache.levels.insert(b.clone(), Stamped::fresh(0, g));
        assert_eq!(cache.invalidate_uri("a.xml"), 1);
        assert_eq!(cache.levels.len(), 1);
        assert!(cache.levels.get(&a).is_none());
        assert!(cache.levels.get(&b).is_some());
        assert_eq!(cache.stats().levels.invalidations, 1);
        assert_eq!(cache.stats().total_invalidations(), 1);
    }

    #[test]
    fn fingerprint_tracks_guide_shape() {
        let g1 = test_guide();
        let g2 = test_guide();
        assert_eq!(guide_fingerprint(&g1), guide_fingerprint(&g2));
        let (other, _) =
            DataGuide::from_document(&vh_xml::parse("mem://t", "<data><extra/></data>").unwrap());
        assert_ne!(guide_fingerprint(&g1), guide_fingerprint(&other));
    }

    #[test]
    fn stats_waits_for_an_in_flight_maintenance_section() {
        // Regression: a snapshot taken while a delta route was mid-flight
        // used to mix pre-batch entry counts with post-batch totals. Open
        // a writer section, mutate one counter "mid-batch", and prove a
        // concurrent stats() call holds until the section commits — then
        // returns both mutations or neither, never a torn mixture.
        let cache = ExecCache::new(16);
        let guard = cache.begin_maintenance();
        cache.maintained.fetch_add(1, Ordering::Relaxed);
        let done = AtomicU64::new(0);
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let stats = cache.stats();
                done.store(1, Ordering::Release);
                stats
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert_eq!(
                done.load(Ordering::Acquire),
                0,
                "stats() returned inside an open maintenance section"
            );
            cache.recomputed.fetch_add(1, Ordering::Relaxed);
            drop(guard);
            let stats = reader.join().unwrap_or_else(|_| unreachable!("reader"));
            assert_eq!(
                (stats.maintained, stats.recomputed),
                (1, 1),
                "snapshot observed a half-applied batch"
            );
        });
        assert_eq!(cache.epoch() % 2, 0, "section left the epoch odd");
    }

    #[test]
    fn maintenance_entry_points_each_close_their_epoch() {
        let cache = ExecCache::new(16);
        assert_eq!(cache.epoch(), 0);
        cache.fallback_invalidate_uri("a.xml");
        assert_eq!(cache.epoch(), 2, "fallback left the epoch open or nested");
        let delta = ViewDelta {
            uri: "a.xml".into(),
            overflowed: true,
            ..ViewDelta::default()
        };
        let td = TypedDocument::analyze(vh_xml::builder::paper_figure2());
        cache.route_delta(&delta, &td);
        assert_eq!(
            cache.epoch(),
            4,
            "overflow route (which falls back internally) must open exactly one section"
        );
    }

    #[test]
    fn hit_ratio_reporting() {
        let c = CacheCounters::default();
        assert_eq!(c.hit_ratio(), None);
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            ..CacheCounters::default()
        };
        assert_eq!(c.hit_ratio(), Some(0.75));
    }

    fn test_guide() -> DataGuide {
        let (g, _) = DataGuide::from_document(&vh_xml::builder::paper_figure2());
        g
    }
}
